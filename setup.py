"""Setuptools entry point.

A classic ``setup.py`` (rather than a PEP 517 ``[build-system]`` table) is
used deliberately: it lets ``pip install -e .`` work in fully offline
environments, where PEP 517 build isolation would try to download
setuptools/wheel from PyPI.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CITROEN: compilation-statistics-guided Bayesian optimisation for "
        "compiler phase ordering (IPDPS 2025 reproduction)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
