"""Content-addressed, process-shared bytecode artifact cache.

Compiled :class:`~repro.machine.bytecode.BytecodeModule` artifacts are keyed
by an **IR fingerprint** — a digest of the module's
:func:`~repro.compiler.analysis.module_profile` summary plus its printed
text — rather than by compile-config signature.  Distinct pass sequences
frequently lower to byte-identical IR, so fingerprint keying deduplicates
silent recompiles, lets pool workers ship freshly-compiled artifacts back to
the parent with batch results, and lets warm entries travel to workers via
the executor initializer.

The store only ever holds **unfused** artifacts: fused code embeds function
objects and is not picklable.  Fusion is re-applied (and memoized) by the
:class:`~repro.machine.profiler.Profiler` on retrieval.

An optional ``spill_dir`` persists entries under the run directory (atomic
``tmp`` + ``os.replace`` writes, one pickle per fingerprint) so ``--resume``
and daemon sessions start warm.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.compiler.analysis import module_profile
from repro.compiler.ir import Module
from repro.compiler.textual import print_module
from repro.machine.bytecode import BytecodeModule, compile_module

__all__ = [
    "ArtifactStore",
    "ir_fingerprint",
    "seed_worker_store",
    "harvest_compile_result",
    "local_store",
    "set_local_store",
]

_FP_ATTR = "_repro_ir_fp"


def _module_shape(module: Module) -> Tuple[int, int]:
    """Cheap ``(blocks, instrs)`` mutation signal guarding the memo."""
    blocks = 0
    instrs = 0
    for fn in module.functions.values():
        blocks += len(fn.blocks)
        for blk in fn.blocks.values():
            instrs += len(blk.instrs)
    return blocks, instrs


def ir_fingerprint(module: Module) -> str:
    """Stable content digest of a module's final IR.

    Memoized on the module object: compiled modules are immutable by
    contract, and :meth:`Module.clone` rebuilds from constructors so the
    memo never leaks onto a mutable copy.  The contract is not blindly
    trusted — the memo is stored with a ``(blocks, instrs)`` shape guard and
    recomputed if a pass mutated the module in place after fingerprinting
    (a stale fingerprint would silently alias artifact-store and
    execution-memo entries).
    """
    shape = _module_shape(module)
    memo = getattr(module, _FP_ATTR, None)
    if memo is not None and memo[0] == shape:
        return memo[1]
    prof = module_profile(module)
    summary = "{}|{}|{}|{}".format(
        prof["instrs"], prof["blocks"],
        sorted(prof["functions"].items()), sorted(prof["mix"].items()),
    )
    h = hashlib.blake2b(digest_size=20)
    h.update(summary.encode())
    h.update(b"\x00")
    h.update(print_module(module).encode())
    fp = h.hexdigest()
    try:
        setattr(module, _FP_ATTR, (shape, fp))
    except AttributeError:  # slotted/immutable module variants
        pass
    return fp


class ArtifactStore:
    """Thread-safe bounded map ``fingerprint -> unfused BytecodeModule``.

    Counters (``hits``/``misses``/``puts``/``spill_hits``) feed
    ``timing_breakdown()`` and ``repro analyze``.
    """

    def __init__(self, max_entries: int = 512, spill_dir: Optional[str] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.spill_dir = spill_dir
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, BytecodeModule]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.spill_hits = 0
        self.spill_writes = 0
        if spill_dir:
            os.makedirs(spill_dir, exist_ok=True)

    # -- core map -----------------------------------------------------------
    def get(self, fp: str) -> Optional[BytecodeModule]:
        with self._lock:
            bc = self._entries.get(fp)
            if bc is not None:
                self._entries.move_to_end(fp)
                self.hits += 1
                return bc
        bc = self._spill_load(fp)
        with self._lock:
            if bc is not None:
                self.spill_hits += 1
                self._put_locked(fp, bc)
            else:
                self.misses += 1
        return bc

    def put(self, fp: str, bc: BytecodeModule) -> None:
        with self._lock:
            fresh = fp not in self._entries
            self._put_locked(fp, bc)
        if fresh:
            self._spill_write(fp, bc)

    def _put_locked(self, fp: str, bc: BytecodeModule) -> None:
        self._entries[fp] = bc
        self._entries.move_to_end(fp)
        self.puts += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fp: str) -> bool:
        with self._lock:
            return fp in self._entries

    # -- compile-through ----------------------------------------------------
    def bytecode_for(self, module: Module) -> Tuple[str, BytecodeModule, bool]:
        """``(fingerprint, unfused artifact, compiled_here)`` for a module."""
        fp = ir_fingerprint(module)
        bc = self.get(fp)
        if bc is not None:
            return fp, bc, False
        bc = compile_module(module)
        self.put(fp, bc)
        return fp, bc, True

    def harvest(self, modules: Iterable[Module]) -> List[Tuple[str, BytecodeModule]]:
        """Compile any missing artifacts for ``modules``; return fresh ones.

        Used as the engine's ``artifact_fn``: workers precompile bytecode for
        candidate modules and the fresh ``(fingerprint, artifact)`` pairs ride
        back with the batch result so the parent store accretes.
        """
        fresh: List[Tuple[str, BytecodeModule]] = []
        for module in modules:
            fp, bc, compiled = self.bytecode_for(module)
            if compiled:
                fresh.append((fp, bc))
        return fresh

    # -- cross-process plumbing --------------------------------------------
    def warm_entries(self, limit: int = 128) -> List[Tuple[str, BytecodeModule]]:
        """Most-recently-used entries, picklable, for worker warm-seeding."""
        with self._lock:
            items = list(self._entries.items())
        return items[-limit:]

    def absorb(self, entries: Iterable[Tuple[str, BytecodeModule]]) -> int:
        """Merge ``(fingerprint, artifact)`` pairs; returns new-entry count."""
        added = 0
        for fp, bc in entries or ():
            with self._lock:
                fresh = fp not in self._entries
                if fresh:
                    self._put_locked(fp, bc)
            if fresh:
                added += 1
                self._spill_write(fp, bc)
        return added

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "spill_hits": self.spill_hits,
                "spill_writes": self.spill_writes,
            }

    # -- disk spill ---------------------------------------------------------
    def _spill_path(self, fp: str) -> Optional[str]:
        if not self.spill_dir:
            return None
        return os.path.join(self.spill_dir, f"{fp}.bc.pkl")

    def _spill_load(self, fp: str) -> Optional[BytecodeModule]:
        path = self._spill_path(fp)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            return None  # corrupt spill entries are simply recompiled

    def _spill_write(self, fp: str, bc: BytecodeModule) -> None:
        path = self._spill_path(fp)
        if path is None or os.path.exists(path):
            return
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(bc, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            with self._lock:
                self.spill_writes += 1
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# -- per-process store (pool workers and module-level artifact_fn) ----------
_LOCAL_STORE: Optional[ArtifactStore] = None


def set_local_store(store: Optional[ArtifactStore]) -> None:
    global _LOCAL_STORE
    _LOCAL_STORE = store


def local_store(create: bool = True) -> Optional[ArtifactStore]:
    global _LOCAL_STORE
    if _LOCAL_STORE is None and create:
        _LOCAL_STORE = ArtifactStore()
    return _LOCAL_STORE


def seed_worker_store(entries: List[Tuple[str, BytecodeModule]]) -> None:
    """Process-pool initializer: start each worker with a warm store."""
    store = ArtifactStore()
    store.absorb(entries)
    store.hits = store.misses = store.puts = 0
    set_local_store(store)


def harvest_compile_result(value) -> List[Tuple[str, BytecodeModule]]:
    """Module-level (picklable) ``artifact_fn`` for process pools.

    Compile results are ``CompileResult`` or ``(module, ...)`` shaped; any
    object exposing ``.module`` or indexable first element works.
    """
    module = getattr(value, "module", None)
    if module is None and isinstance(value, (tuple, list)) and value:
        module = value[0]
    if not isinstance(module, Module):
        return []
    store = local_store()
    return store.harvest([module])
