"""Noisy runtime measurement and ``perf``-like per-function profiling.

``Profiler.measure`` is the expensive black-box evaluation in every tuner:
it interprets the program once (semantics + exact block counts), converts
counts to cycles with the platform cost model, and perturbs the result with
multiplicative Gaussian noise like a real wall-clock measurement.  The
paper's methodology of averaging several runs per search point (§4.2.2)
is supported through ``repeats``.

``Profiler.function_profile`` reproduces the one-off ``perf`` pass CITROEN
uses to find hot modules (§5.3.1): self-time per function (excluding
callees), aggregated by module.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.ir import Module
from repro.machine.artifacts import ArtifactStore, ir_fingerprint
from repro.machine.bytecode import BytecodeModule, BytecodeVM, compile_module
from repro.machine.cost_model import block_cycles, estimate_cycles
from repro.machine.fuse import fuse_module
from repro.machine.interp import ExecutionResult, InterpError, Interpreter
from repro.machine.platforms import Platform
from repro.utils.rng import SeedLike, as_generator

__all__ = ["Measurement", "FunctionProfile", "Profiler", "MEASURE_ENGINES"]

MEASURE_ENGINES = ("tree", "bytecode")


@dataclass
class Measurement:
    """One (averaged) runtime measurement."""

    seconds: float
    cycles: float
    result: ExecutionResult

    def output_signature(self) -> Tuple:
        """Semantic fingerprint of the measured execution."""
        return self.result.output_signature()


@dataclass
class FunctionProfile:
    """Self-time shares per function and per module (perf-report style)."""

    function_seconds: Dict[Tuple[str, str], float]
    module_seconds: Dict[str, float]
    total_seconds: float

    def hot_modules(self, coverage: float = 0.9) -> List[str]:
        """Smallest set of modules covering ``coverage`` of total time."""
        ranked = sorted(self.module_seconds.items(), key=lambda kv: -kv[1])
        out: List[str] = []
        acc = 0.0
        for name, sec in ranked:
            out.append(name)
            acc += sec
            if self.total_seconds > 0 and acc / self.total_seconds >= coverage:
                break
        return out


class Profiler:
    """Executes linked modules on a simulated platform.

    ``engine`` selects the execution backend: ``"bytecode"`` (default)
    compiles modules once to the flat register VM and caches the compiled
    form; ``"tree"`` keeps the reference tree-walker (the differential
    oracle).  Both produce bit-identical :class:`ExecutionResult`s, so the
    seeded noise stream — and therefore every measurement — is engine
    independent.
    """

    def __init__(
        self,
        platform: Platform,
        seed: SeedLike = None,
        fuel: int = 5_000_000,
        engine: str = "bytecode",
        bytecode_cache_size: int = 256,
        fuse: bool = True,
        execution_memo: bool = True,
        execution_memo_size: int = 1024,
        artifacts: Optional[ArtifactStore] = None,
    ) -> None:
        if engine not in MEASURE_ENGINES:
            raise ValueError(f"unknown measure engine {engine!r}, expected one of {MEASURE_ENGINES}")
        self.platform = platform
        self.rng = as_generator(seed)
        self.fuel = fuel
        self.engine = engine
        self.fuse = fuse
        self.execution_memo = execution_memo
        self.artifacts = artifacts
        # IR fingerprint -> executable (fused when fuse=True) compiled form
        self._bc_cache: "OrderedDict[str, BytecodeModule]" = OrderedDict()
        self._bc_cache_size = bytecode_cache_size
        # compile-config key -> fingerprint: revisited configs skip rehashing
        self._fp_alias: "OrderedDict[object, str]" = OrderedDict()
        self._fp_alias_size = max(4 * bytecode_cache_size, 64)
        # (entry, fuel, fingerprints) -> recorded execution outcome
        self._memo: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._memo_size = execution_memo_size
        self.bytecode_compiles = 0
        self.bytecode_cache_hits = 0
        self.execution_memo_hits = 0
        self.fused_kernels = 0
        self.fused_ops = 0

    # -- bytecode compilation cache -------------------------------------------
    def _fingerprint(self, module: Module, key: object = None) -> str:
        """IR fingerprint of ``module``, via the config alias map if keyed.

        Callers that compile modules per pass-sequence (the autotuning task)
        pass the PR 1 config signature ``(module name, decoded sequence)``;
        revisited configs then skip rehashing while keeping counters exact.
        """
        if key is not None:
            fp = self._fp_alias.get(key)
            if fp is not None:
                self._fp_alias.move_to_end(key)
                return fp
        fp = ir_fingerprint(module)
        if key is not None:
            self._fp_alias[key] = fp
            while len(self._fp_alias) > self._fp_alias_size:
                self._fp_alias.popitem(last=False)
        return fp

    def bytecode_for(self, module: Module, key: object = None) -> BytecodeModule:
        """Executable compiled form of ``module``, content-addressed.

        The local LRU is keyed by IR fingerprint, so distinct configs that
        lower to byte-identical IR share one artifact.  On a local miss the
        process-shared :class:`ArtifactStore` (unfused artifacts) is
        consulted before compiling; fusion is applied on the way into the
        local cache.
        """
        fp = self._fingerprint(module, key)
        bc = self._bc_cache.get(fp)
        if bc is not None:
            self._bc_cache.move_to_end(fp)
            self.bytecode_cache_hits += 1
            return bc
        base = None
        if self.artifacts is not None:
            base = self.artifacts.get(fp)
        if base is None:
            base = compile_module(module)
            self.bytecode_compiles += 1
            if self.artifacts is not None:
                self.artifacts.put(fp, base)
        if self.fuse:
            bc, stats = fuse_module(base)
            self.fused_kernels += stats["kernels"]
            self.fused_ops += stats["fused_ops"]
        else:
            bc = base
        self._bc_cache[fp] = bc
        while len(self._bc_cache) > self._bc_cache_size:
            self._bc_cache.popitem(last=False)
        return bc

    def _execute(
        self,
        modules: List[Module],
        entry: str,
        keys: Optional[Sequence[object]] = None,
    ) -> ExecutionResult:
        if self.engine == "tree":
            return Interpreter(modules, fuel=self.fuel).run(entry)
        bcs = [
            self.bytecode_for(m, keys[i] if keys is not None else None)
            for i, m in enumerate(modules)
        ]
        return BytecodeVM(bcs, fuel=self.fuel).run(entry)

    # -- runtime measurement -------------------------------------------------
    def measure(
        self,
        modules: List[Module],
        repeats: int = 3,
        entry: str = "main",
        keys: Optional[Sequence[object]] = None,
    ) -> Measurement:
        """Run the program and return an averaged noisy runtime.

        With ``execution_memo`` on, byte-identical final IR (same entry and
        fuel) skips re-execution: the recorded cycles/result — or the
        recorded :class:`InterpError` — are replayed.  Noise is still drawn
        exactly as for a live run (a crash raises before any draw, live or
        memoized), so the seeded value stream, and therefore every tuning
        history, is bit-identical with the memo on or off.
        """
        if not self.execution_memo:
            result = self._execute(modules, entry, keys)
            cycles = estimate_cycles(modules, result.block_counts, self.platform)
            return self._noisy(cycles, result, repeats)
        mkey = (entry, self.fuel, tuple(
            self._fingerprint(m, keys[i] if keys is not None else None)
            for i, m in enumerate(modules)
        ))
        hit = self._memo.get(mkey)
        if hit is not None:
            self._memo.move_to_end(mkey)
            self.execution_memo_hits += 1
            if hit[0] == "err":
                raise hit[1](hit[2])
            return self._noisy(hit[1], hit[2], repeats)
        try:
            result = self._execute(modules, entry, keys)
        except InterpError as exc:
            self._memo_put(mkey, ("err", type(exc), str(exc)))
            raise
        cycles = estimate_cycles(modules, result.block_counts, self.platform)
        self._memo_put(mkey, ("ok", cycles, result))
        return self._noisy(cycles, result, repeats)

    def _noisy(self, cycles: float, result: ExecutionResult, repeats: int) -> Measurement:
        base_seconds = cycles / (self.platform.ghz * 1e9)
        samples = base_seconds * (
            1.0 + self.platform.noise * self.rng.standard_normal(max(1, repeats))
        )
        return Measurement(float(np.mean(np.abs(samples))), cycles, result)

    def _memo_put(self, mkey: tuple, entry: tuple) -> None:
        self._memo[mkey] = entry
        while len(self._memo) > self._memo_size:
            self._memo.popitem(last=False)

    def execute(
        self,
        modules: List[Module],
        entry: str = "main",
        keys: Optional[Sequence[object]] = None,
    ) -> ExecutionResult:
        """Noise-free execution (used by differential testing)."""
        return self._execute(modules, entry, keys)

    def deterministic_seconds(
        self,
        modules: List[Module],
        entry: str = "main",
        keys: Optional[Sequence[object]] = None,
    ) -> Tuple[float, ExecutionResult]:
        """Noise-free modeled runtime: cycles through the platform cost
        model, no Gaussian perturbation, no RNG consumed.

        This is the attribution clock ``repro explain`` replays ablated
        pipelines on — two binaries with identical block counts get
        *exactly* equal seconds, so a marginal contribution of 0.0 means
        the pass truly did nothing to the measured program."""
        result = self._execute(modules, entry, keys)
        cycles = estimate_cycles(modules, result.block_counts, self.platform)
        return cycles / (self.platform.ghz * 1e9), result

    # -- perf-like profiling --------------------------------------------------
    def function_profile(self, modules: List[Module], entry: str = "main") -> FunctionProfile:
        """Perf-like self-time profile per function and module."""
        result = self._execute(modules, entry)
        fn_seconds: Dict[Tuple[str, str], float] = {}
        cost_cache: Dict[Tuple[str, str], Dict[str, float]] = {}
        fn_index = {}
        for mod in modules:
            for fn in mod.functions.values():
                fn_index[(mod.name, fn.name)] = fn
        for (mod_name, fn_name, blk_name), count in result.block_counts.items():
            key = (mod_name, fn_name)
            fn = fn_index.get(key)
            if fn is None:
                continue
            costs = cost_cache.get(key)
            if costs is None:
                costs = block_cycles(fn, self.platform)
                cost_cache[key] = costs
            cyc = costs.get(blk_name, 0.0) * count
            fn_seconds[key] = fn_seconds.get(key, 0.0) + cyc / (self.platform.ghz * 1e9)
        mod_seconds: Dict[str, float] = {}
        for (mod_name, _fn), sec in fn_seconds.items():
            mod_seconds[mod_name] = mod_seconds.get(mod_name, 0.0) + sec
        return FunctionProfile(fn_seconds, mod_seconds, sum(fn_seconds.values()))
