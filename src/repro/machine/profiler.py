"""Noisy runtime measurement and ``perf``-like per-function profiling.

``Profiler.measure`` is the expensive black-box evaluation in every tuner:
it interprets the program once (semantics + exact block counts), converts
counts to cycles with the platform cost model, and perturbs the result with
multiplicative Gaussian noise like a real wall-clock measurement.  The
paper's methodology of averaging several runs per search point (§4.2.2)
is supported through ``repeats``.

``Profiler.function_profile`` reproduces the one-off ``perf`` pass CITROEN
uses to find hot modules (§5.3.1): self-time per function (excluding
callees), aggregated by module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compiler.ir import Module
from repro.machine.cost_model import block_cycles, estimate_cycles
from repro.machine.interp import ExecutionResult, Interpreter
from repro.machine.platforms import Platform
from repro.utils.rng import SeedLike, as_generator

__all__ = ["Measurement", "FunctionProfile", "Profiler"]


@dataclass
class Measurement:
    """One (averaged) runtime measurement."""

    seconds: float
    cycles: float
    result: ExecutionResult

    def output_signature(self) -> Tuple:
        """Semantic fingerprint of the measured execution."""
        return self.result.output_signature()


@dataclass
class FunctionProfile:
    """Self-time shares per function and per module (perf-report style)."""

    function_seconds: Dict[Tuple[str, str], float]
    module_seconds: Dict[str, float]
    total_seconds: float

    def hot_modules(self, coverage: float = 0.9) -> List[str]:
        """Smallest set of modules covering ``coverage`` of total time."""
        ranked = sorted(self.module_seconds.items(), key=lambda kv: -kv[1])
        out: List[str] = []
        acc = 0.0
        for name, sec in ranked:
            out.append(name)
            acc += sec
            if self.total_seconds > 0 and acc / self.total_seconds >= coverage:
                break
        return out


class Profiler:
    """Executes linked modules on a simulated platform."""

    def __init__(self, platform: Platform, seed: SeedLike = None, fuel: int = 5_000_000) -> None:
        self.platform = platform
        self.rng = as_generator(seed)
        self.fuel = fuel

    # -- runtime measurement -------------------------------------------------
    def measure(self, modules: List[Module], repeats: int = 3, entry: str = "main") -> Measurement:
        """Run the program and return an averaged noisy runtime."""
        interp = Interpreter(modules, fuel=self.fuel)
        result = interp.run(entry)
        cycles = estimate_cycles(modules, result.block_counts, self.platform)
        base_seconds = cycles / (self.platform.ghz * 1e9)
        samples = base_seconds * (
            1.0 + self.platform.noise * self.rng.standard_normal(max(1, repeats))
        )
        return Measurement(float(np.mean(np.abs(samples))), cycles, result)

    def execute(self, modules: List[Module], entry: str = "main") -> ExecutionResult:
        """Noise-free execution (used by differential testing)."""
        return Interpreter(modules, fuel=self.fuel).run(entry)

    # -- perf-like profiling --------------------------------------------------
    def function_profile(self, modules: List[Module], entry: str = "main") -> FunctionProfile:
        """Perf-like self-time profile per function and module."""
        interp = Interpreter(modules, fuel=self.fuel)
        result = interp.run(entry)
        fn_seconds: Dict[Tuple[str, str], float] = {}
        cost_cache: Dict[Tuple[str, str], Dict[str, float]] = {}
        fn_index = {}
        for mod in modules:
            for fn in mod.functions.values():
                fn_index[(mod.name, fn.name)] = fn
        for (mod_name, fn_name, blk_name), count in result.block_counts.items():
            key = (mod_name, fn_name)
            fn = fn_index.get(key)
            if fn is None:
                continue
            costs = cost_cache.get(key)
            if costs is None:
                costs = block_cycles(fn, self.platform)
                cost_cache[key] = costs
            cyc = costs.get(blk_name, 0.0) * count
            fn_seconds[key] = fn_seconds.get(key, 0.0) + cyc / (self.platform.ghz * 1e9)
        mod_seconds: Dict[str, float] = {}
        for (mod_name, _fn), sec in fn_seconds.items():
            mod_seconds[mod_name] = mod_seconds.get(mod_name, 0.0) + sec
        return FunctionProfile(fn_seconds, mod_seconds, sum(fn_seconds.values()))
