"""Bytecode measurement engine: flat register VM for the mini-IR.

The tree-walking :mod:`repro.machine.interp` stays on as the differential
oracle, but after the PR 5 surrogate overhaul it became the dominant cost of
every measurement.  This module compiles a :class:`~repro.compiler.ir.Module`
once into a flat, register-based bytecode and executes it with a dispatch
loop, producing **bit-identical** :class:`ExecutionResult`s — the same
``output_signature()``, ``block_counts`` and ``steps`` — as the tree-walker,
including :class:`InterpError` / :class:`FuelExhausted` parity.

Compilation strategy
--------------------
* **Register file.**  Every SSA name gets a small-integer register slot;
  constants are pooled into a read-only prefix of the register file (keyed by
  ``(type, python-type, value)`` so ``0`` and ``0.0`` stay distinct), so the
  VM never touches a dict for operands.
* **Pre-decoded operands.**  Each instruction becomes one tuple
  ``(opcode, ...fields)`` with operand registers, wrap parameters (mask /
  sign threshold / period) and element sizes resolved at compile time.
* **Resolved offsets.**  Branch targets are absolute positions in the flat
  code list; ``phi`` nodes are lowered onto the incoming edges as parallel
  copy "trampolines" (read all sources, then write all destinations), so the
  hot loop has no phi scanning and no prev-block bookkeeping.
* **Segment fuel accounting.**  The tree-walker charges one fuel step per
  executed instruction.  The VM charges whole call-free *segments* at the
  block (or post-call) header: the cumulative step count agrees with the
  tree-walker at every segment boundary, and when a header detects that the
  budget would be exceeded *within* the segment it falls back to a "careful"
  replay that executes the remaining ``fuel - steps`` instructions one by one
  and then raises :class:`FuelExhausted` — reproducing exactly which semantic
  error or fuel trap the tree-walker would hit first.

The VM assumes verifier-clean IR (the verifier enforces SSA dominance, so a
register is always written before it is read).  Behaviour on IR that the
verifier would reject — e.g. use of a never-defined value — is undefined;
all error conditions reachable from verified programs (division by zero,
unknown global/function, arity mismatch, call-depth, unreachable, fuel)
raise the same exception types as the tree-walker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler.ir import Const, Function, Module, Type
from repro.machine.interp import (
    ExecutionResult,
    FuelExhausted,
    InterpError,
    _fcmp,
    _float_bin,
    _icmp,
    _int_bin,
)

__all__ = [
    "BytecodeFunction",
    "BytecodeModule",
    "BytecodeVM",
    "READ_FIELDS",
    "TUPLE_READ_FIELDS",
    "compile_module",
    "run_bytecode",
]

# -- opcodes (ordered roughly by dynamic frequency for the dispatch chain) --
OP_LOAD = 0
OP_ADD = 1
OP_STORE = 2
OP_BLOCK = 3
OP_BR = 4
OP_GEP = 5
OP_JMP = 6
OP_SLT = 7
OP_EQ = 8
OP_EDGE1 = 9
OP_SUB = 10
OP_MUL = 11
OP_SEG = 12
OP_AND = 13
OP_OR = 14
OP_XOR = 15
OP_SHL = 16
OP_ASHR = 17
OP_LSHR = 18
OP_SDIV = 19
OP_SREM = 20
OP_UDIV = 21
OP_UREM = 22
OP_FADD = 23
OP_FSUB = 24
OP_FMUL = 25
OP_FDIV = 26
OP_NE = 27
OP_SLE = 28
OP_SGT = 29
OP_SGE = 30
OP_ULT = 31
OP_ULE = 32
OP_UGT = 33
OP_UGE = 34
OP_FEQ = 35
OP_FNE = 36
OP_FLT = 37
OP_FLE = 38
OP_FGT = 39
OP_FGE = 40
OP_SELECT = 41
OP_COPY = 42
OP_WRAP = 43
OP_SITOFP = 44
OP_FPTOSI = 45
OP_OUTPUT = 46
OP_ALLOCA = 47
OP_GADDR = 48
OP_CALL = 49
OP_RET = 50
OP_RET_NONE = 51
OP_EDGE = 52
OP_RAISE = 53
OP_RAISE_KEY = 54
OP_FUEL_TRAP = 55
OP_ICMP_GEN = 56
OP_FCMP_GEN = 57
OP_VBIN_I = 58
OP_VBIN_F = 59
OP_VLOAD = 60
OP_VSTORE = 61
OP_BROADCAST = 62
OP_EXTRACT = 63
OP_INSERT = 64
OP_REDUCE = 65
OP_MEMSET = 66
OP_MEMCPY = 67
OP_FUSED = 68

# -- operand-role tables (used by the superblock fusion pass) ---------------
# READ_FIELDS[op] lists the instruction fields holding *register reads*;
# TUPLE_READ_FIELDS[op] lists fields holding tuples of register reads.
# Mask/sign/period/offset fields are deliberately absent.
READ_FIELDS: Dict[int, tuple] = {
    OP_LOAD: (2,),
    OP_STORE: (1, 2),
    OP_BR: (1,),
    OP_EDGE1: (1,),
    OP_OUTPUT: (1,),
    OP_RET: (1,),
    OP_SELECT: (2, 3, 4),
    OP_COPY: (2,),
    OP_WRAP: (2,),
    OP_SITOFP: (2,),
    OP_FPTOSI: (2,),
    OP_VLOAD: (2,),
    OP_VSTORE: (1, 2),
    OP_BROADCAST: (2,),
    OP_REDUCE: (2,),
    OP_INSERT: (2, 3, 4),
    OP_MEMSET: (1, 2, 3),
    OP_MEMCPY: (1, 2, 3),
}
for _binop in (OP_ADD, OP_SUB, OP_MUL, OP_AND, OP_OR, OP_XOR, OP_SHL, OP_ASHR,
               OP_LSHR, OP_SDIV, OP_SREM, OP_UDIV, OP_UREM, OP_FADD, OP_FSUB,
               OP_FMUL, OP_FDIV, OP_GEP, OP_SLT, OP_EQ, OP_NE, OP_SLE, OP_SGT,
               OP_SGE, OP_ULT, OP_ULE, OP_UGT, OP_UGE, OP_FEQ, OP_FNE, OP_FLT,
               OP_FLE, OP_FGT, OP_FGE, OP_ICMP_GEN, OP_FCMP_GEN, OP_VBIN_I,
               OP_VBIN_F, OP_EXTRACT):
    READ_FIELDS[_binop] = (2, 3)
del _binop
TUPLE_READ_FIELDS: Dict[int, tuple] = {OP_CALL: (4,), OP_EDGE: (1,)}

_INT_BIN_OPS = frozenset(
    {"add", "sub", "mul", "sdiv", "srem", "udiv", "urem", "and", "or", "xor", "shl", "ashr", "lshr"}
)
_FLOAT_BIN_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv"})
_SHIFT_OPS = frozenset({"shl", "ashr", "lshr"})
_UNSIGNED_PREDS = frozenset({"ult", "ule", "ugt", "uge"})

_INT_OPC = {
    "add": OP_ADD,
    "sub": OP_SUB,
    "mul": OP_MUL,
    "and": OP_AND,
    "or": OP_OR,
    "xor": OP_XOR,
    "shl": OP_SHL,
    "ashr": OP_ASHR,
    "lshr": OP_LSHR,
    "sdiv": OP_SDIV,
    "srem": OP_SREM,
    "udiv": OP_UDIV,
    "urem": OP_UREM,
}
_FLOAT_OPC = {"fadd": OP_FADD, "fsub": OP_FSUB, "fmul": OP_FMUL, "fdiv": OP_FDIV}
_SIGNED_CMP_OPC = {
    "eq": OP_EQ,
    "ne": OP_NE,
    "slt": OP_SLT,
    "sle": OP_SLE,
    "sgt": OP_SGT,
    "sge": OP_SGE,
}
_UNSIGNED_CMP_OPC = {"ult": OP_ULT, "ule": OP_ULE, "ugt": OP_UGT, "uge": OP_UGE}
_FCMP_OPC = {
    "eq": OP_FEQ,
    "ne": OP_FNE,
    "slt": OP_FLT,
    "sle": OP_FLE,
    "sgt": OP_FGT,
    "sge": OP_FGE,
}


def _scalar_bits(ty: Optional[Type]) -> int:
    """Element bit width of a value of type ``ty`` (64 when unknown)."""
    if ty is None:
        return 64
    if ty.is_vec:
        return ty.elem.bits or 64
    return ty.bits or 64


class BytecodeFunction:
    """One compiled function: code list + register-file template."""

    __slots__ = ("name", "module_name", "nparams", "param_regs", "reg_init", "code")

    def __init__(self, name, module_name, nparams, param_regs, reg_init, code):
        self.name = name
        self.module_name = module_name
        self.nparams = nparams
        self.param_regs = param_regs
        self.reg_init = reg_init
        self.code = code


class BytecodeModule:
    """A compiled module: functions in definition order plus global specs."""

    __slots__ = ("name", "functions", "globals_spec")

    def __init__(self, name, functions, globals_spec):
        self.name = name
        self.functions = functions
        #: tuple of (name, elem_size, byte_size, init_values)
        self.globals_spec = globals_spec


class _FnCompiler:
    def __init__(self, module: Module, fn: Function) -> None:
        self.module = module
        self.fn = fn
        self.code: List[list] = []
        self.block_pc: Dict[str, int] = {}
        self.leading_phis: Dict[str, list] = {}
        # jump fields awaiting resolution: (instruction-list, field, (pred, succ))
        self.patch: List[Tuple[list, int]] = []
        self.slots: Dict[tuple, int] = {}
        self.reg_init: List[object] = []
        self.tymap: Dict[str, Type] = {}
        for pname, pty in fn.params:
            self.tymap[pname] = pty
        for inst in fn.instructions():
            if inst.res is not None:
                self.tymap[inst.res] = inst.ty

    # -- register allocation ------------------------------------------------
    def _reg(self, name: str) -> int:
        key = ("n", name)
        idx = self.slots.get(key)
        if idx is None:
            idx = len(self.reg_init)
            self.slots[key] = idx
            self.reg_init.append(None)
        return idx

    def _R(self, operand) -> int:
        if isinstance(operand, Const):
            key = ("c", operand.ty, type(operand.value).__name__, operand.value)
            idx = self.slots.get(key)
            if idx is None:
                idx = len(self.reg_init)
                self.slots[key] = idx
                self.reg_init.append(operand.value)
            return idx
        return self._reg(operand)

    def _operand_bits(self, operand) -> int:
        if isinstance(operand, Const):
            return _scalar_bits(operand.ty)
        return _scalar_bits(self.tymap.get(operand))

    def _operand_ty(self, operand) -> Optional[Type]:
        if isinstance(operand, Const):
            return operand.ty
        return self.tymap.get(operand)

    # -- compilation --------------------------------------------------------
    def compile(self) -> BytecodeFunction:
        fn = self.fn
        blocks = list(fn.blocks.values())
        if not blocks:
            self.code.append([OP_RAISE, f"function @{fn.name} has no blocks"])
        else:
            entry = blocks[0]
            if entry.instrs and entry.instrs[0].op == "phi":
                # entering the function gives prev_block None: the tree-walker
                # counts the block, then fails to find a matching incoming
                key = (self.module.name, fn.name, entry.name)
                self.code.append([OP_BLOCK, key, 0, fn.name])
                first = entry.instrs[0]
                self.code.append(
                    [
                        OP_RAISE,
                        f"phi {first.res} in @{fn.name}:{entry.name} has no incoming from None",
                    ]
                )
            for blk in blocks:
                self._emit_block(blk)
            self._resolve()
        code = tuple(tuple(ins) for ins in self.code)
        param_regs = tuple(self._reg(pname) for pname, _ty in fn.params)
        return BytecodeFunction(
            fn.name,
            self.module.name,
            len(fn.params),
            param_regs,
            tuple(self.reg_init),
            code,
        )

    def _emit_block(self, blk) -> None:
        fname = self.fn.name
        code = self.code
        self.block_pc[blk.name] = len(code)
        key = (self.module.name, fname, blk.name)
        header = [OP_BLOCK, key, 0, fname]
        cost_idx = 2
        code.append(header)
        instrs = blk.instrs
        i, n = 0, len(instrs)
        phis = []
        while i < n and instrs[i].op == "phi":
            phis.append(instrs[i])
            i += 1
        self.leading_phis[blk.name] = phis
        seg_cost = 0
        terminated = False
        while i < n:
            inst = instrs[i]
            op = inst.op
            if op == "br":
                seg_cost += 1
                ins = [OP_BR, self._R(inst.args[0]), (blk.name, inst.attrs["targets"][0]),
                       (blk.name, inst.attrs["targets"][1])]
                code.append(ins)
                self.patch.append((ins, 2))
                self.patch.append((ins, 3))
                terminated = True
                break
            if op == "jmp":
                seg_cost += 1
                ins = [OP_JMP, (blk.name, inst.attrs["target"])]
                code.append(ins)
                self.patch.append((ins, 1))
                terminated = True
                break
            if op == "ret":
                seg_cost += 1
                if inst.args:
                    code.append([OP_RET, self._R(inst.args[0])])
                else:
                    code.append([OP_RET_NONE])
                terminated = True
                break
            if op == "call":
                header[cost_idx] = seg_cost
                dst = self._reg(inst.res) if inst.res is not None else -1
                code.append(
                    [OP_CALL, dst, fname, inst.attrs["callee"],
                     tuple(self._R(a) for a in inst.args)]
                )
                header = [OP_SEG, 0, fname]
                cost_idx = 1
                code.append(header)
                seg_cost = 0
                i += 1
                continue
            seg_cost += 1
            self._emit_simple(inst)
            i += 1
        header[cost_idx] = seg_cost
        if not terminated:
            code.append([OP_RAISE, f"block {blk.name} in @{fname} fell through"])

    def _emit_simple(self, inst) -> None:
        op = inst.op
        ty = inst.ty
        code = self.code
        if op in _INT_BIN_OPS or op in _FLOAT_BIN_OPS:
            a = self._R(inst.args[0])
            b = self._R(inst.args[1])
            d = self._reg(inst.res)
            if ty.is_vec:
                if ty.elem.is_int:
                    code.append([OP_VBIN_I, d, a, b, op, ty.elem.bits])
                else:
                    code.append([OP_VBIN_F, d, a, b, op])
            elif ty.is_int:
                bits = ty.bits or 64
                mask = (1 << bits) - 1
                sign = 1 << (bits - 1)
                period = 1 << bits
                if op in _SHIFT_OPS:
                    code.append([_INT_OPC[op], d, a, b, bits, mask, sign, period])
                else:
                    code.append([_INT_OPC[op], d, a, b, mask, sign, period])
            else:
                code.append([_FLOAT_OPC[op], d, a, b])
        elif op == "load":
            code.append([OP_LOAD, self._reg(inst.res), self._R(inst.args[0])])
        elif op == "store":
            code.append([OP_STORE, self._R(inst.args[0]), self._R(inst.args[1])])
        elif op == "alloca":
            elem_ty: Type = inst.attrs["elem_ty"]
            count: int = inst.attrs.get("count", 1)
            code.append([OP_ALLOCA, self._reg(inst.res), elem_ty.byte_size() * count])
        elif op == "gep":
            code.append(
                [OP_GEP, self._reg(inst.res), self._R(inst.args[0]), self._R(inst.args[1]),
                 inst.attrs["elem_ty"].byte_size()]
            )
        elif op == "gaddr":
            name = inst.attrs["name"]
            code.append([OP_GADDR, self._reg(inst.res), (self.module.name, name), name])
        elif op == "icmp":
            pred = inst.attrs["pred"]
            aty = self._operand_ty(inst.args[0])
            a = self._R(inst.args[0])
            b = self._R(inst.args[1])
            d = self._reg(inst.res)
            if aty is not None and aty.is_vec:
                code.append([OP_ICMP_GEN, d, a, b, pred, _scalar_bits(aty)])
            elif pred in _UNSIGNED_PREDS:
                code.append(
                    [_UNSIGNED_CMP_OPC[pred], d, a, b, (1 << _scalar_bits(aty)) - 1]
                )
            elif pred in _SIGNED_CMP_OPC:
                code.append([_SIGNED_CMP_OPC[pred], d, a, b])
            else:
                code.append([OP_RAISE, f"unknown predicate {pred!r}"])
        elif op == "fcmp":
            pred = inst.attrs["pred"]
            aty = self._operand_ty(inst.args[0])
            if pred in _UNSIGNED_PREDS:
                code.append([OP_RAISE, f"fcmp does not support predicate {pred!r}"])
            elif pred not in _FCMP_OPC:
                code.append([OP_RAISE, f"unknown predicate {pred!r}"])
            elif aty is not None and aty.is_vec:
                # tuple comparisons are lexicographic, which disagrees with
                # the NaN guard — route vectors through the oracle's _fcmp
                code.append(
                    [OP_FCMP_GEN, self._reg(inst.res), self._R(inst.args[0]),
                     self._R(inst.args[1]), pred]
                )
            else:
                code.append(
                    [_FCMP_OPC[pred], self._reg(inst.res), self._R(inst.args[0]),
                     self._R(inst.args[1])]
                )
        elif op == "select":
            code.append(
                [OP_SELECT, self._reg(inst.res), self._R(inst.args[0]),
                 self._R(inst.args[1]), self._R(inst.args[2])]
            )
        elif op == "sext" or op == "fpext" or op == "fptrunc" or op == "bitcast":
            code.append([OP_COPY, self._reg(inst.res), self._R(inst.args[0])])
        elif op == "zext":
            sb = self._operand_bits(inst.args[0])
            db = ty.bits or 64
            mask = ((1 << sb) - 1) & ((1 << db) - 1)
            code.append(
                [OP_WRAP, self._reg(inst.res), self._R(inst.args[0]), mask,
                 1 << (db - 1), 1 << db]
            )
        elif op == "trunc":
            db = ty.bits or 64
            code.append(
                [OP_WRAP, self._reg(inst.res), self._R(inst.args[0]), (1 << db) - 1,
                 1 << (db - 1), 1 << db]
            )
        elif op == "sitofp":
            code.append([OP_SITOFP, self._reg(inst.res), self._R(inst.args[0])])
        elif op == "fptosi":
            db = ty.bits or 64
            code.append(
                [OP_FPTOSI, self._reg(inst.res), self._R(inst.args[0]), (1 << db) - 1,
                 1 << (db - 1), 1 << db]
            )
        elif op == "output":
            code.append([OP_OUTPUT, self._R(inst.args[0])])
        elif op == "vload":
            code.append(
                [OP_VLOAD, self._reg(inst.res), self._R(inst.args[0]),
                 ty.elem.byte_size(), ty.lanes]
            )
        elif op == "vstore":
            code.append(
                [OP_VSTORE, self._R(inst.args[0]), self._R(inst.args[1]),
                 inst.attrs["elem_ty"].byte_size()]
            )
        elif op == "broadcast":
            code.append([OP_BROADCAST, self._reg(inst.res), self._R(inst.args[0]), ty.lanes])
        elif op == "extract":
            code.append(
                [OP_EXTRACT, self._reg(inst.res), self._R(inst.args[0]), self._R(inst.args[1])]
            )
        elif op == "insert":
            code.append(
                [OP_INSERT, self._reg(inst.res), self._R(inst.args[0]),
                 self._R(inst.args[1]), self._R(inst.args[2])]
            )
        elif op == "reduce":
            rop = inst.attrs.get("rop", "add")
            if ty.is_int:
                code.append(
                    [OP_REDUCE, self._reg(inst.res), self._R(inst.args[0]), rop, 1,
                     ty.bits or 64]
                )
            else:
                ropf = rop if rop.startswith("f") else "f" + rop
                code.append(
                    [OP_REDUCE, self._reg(inst.res), self._R(inst.args[0]), ropf, 0, 0]
                )
        elif op == "memset":
            code.append(
                [OP_MEMSET, self._R(inst.args[0]), self._R(inst.args[1]),
                 self._R(inst.args[2]), inst.attrs["elem_ty"].byte_size()]
            )
        elif op == "memcpy":
            code.append(
                [OP_MEMCPY, self._R(inst.args[0]), self._R(inst.args[1]),
                 self._R(inst.args[2]), inst.attrs["elem_ty"].byte_size()]
            )
        elif op == "unreachable":
            code.append([OP_RAISE, f"executed unreachable in @{self.fn.name}"])
        else:
            code.append([OP_RAISE, f"unknown opcode {op!r}"])

    def _resolve(self) -> None:
        tramp_pc: Dict[Tuple[str, str], int] = {}
        stub_pc: Dict[str, int] = {}
        for ins, fi in self.patch:
            pred, succ = ins[fi]
            tgt = self.block_pc.get(succ)
            if tgt is None:
                # the tree-walker hits a plain KeyError on fn.blocks[succ]
                pc = stub_pc.get(succ)
                if pc is None:
                    pc = len(self.code)
                    self.code.append([OP_RAISE_KEY, succ])
                    stub_pc[succ] = pc
                ins[fi] = pc
                continue
            phis = self.leading_phis.get(succ)
            if not phis:
                ins[fi] = tgt
                continue
            key = (pred, succ)
            pc = tramp_pc.get(key)
            if pc is None:
                pc = self._emit_trampoline(pred, succ, phis, tgt)
                tramp_pc[key] = pc
            ins[fi] = pc

    def _emit_trampoline(self, pred: str, succ: str, phis, tgt: int) -> int:
        pc = len(self.code)
        srcs: List[int] = []
        dsts: List[int] = []
        for ph in phis:
            for src_blk, val in ph.attrs["incoming"]:
                if src_blk == pred:
                    srcs.append(self._R(val))
                    dsts.append(self._reg(ph.res))
                    break
            else:
                # the tree-walker counts the block before discovering the hole
                key = (self.module.name, self.fn.name, succ)
                self.code.append([OP_BLOCK, key, 0, self.fn.name])
                self.code.append(
                    [
                        OP_RAISE,
                        f"phi {ph.res} in @{self.fn.name}:{succ} has no incoming "
                        f"from {pred!r}",
                    ]
                )
                return pc
        if len(srcs) == 1:
            self.code.append([OP_EDGE1, srcs[0], dsts[0], tgt])
        else:
            self.code.append([OP_EDGE, tuple(srcs), tuple(dsts), tgt])
        return pc


def compile_module(module: Module) -> BytecodeModule:
    """Compile every function of ``module`` to bytecode."""
    fns = tuple(_FnCompiler(module, fn).compile() for fn in module.functions.values())
    gspec = []
    for gv in module.globals.values():
        esz = gv.elem_ty.byte_size()
        gspec.append((gv.name, esz, esz * max(1, gv.count), tuple(gv.init)))
    return BytecodeModule(module.name, fns, tuple(gspec))


class BytecodeVM:
    """Executes compiled modules with the tree-walker's observable semantics.

    Mirrors :class:`~repro.machine.interp.Interpreter`: functions resolve by
    name across modules (first match wins), memory is a flat dict with a bump
    allocator, and every ``run()`` starts from freshly materialised globals.
    """

    def __init__(self, bc_modules: List[BytecodeModule], fuel: int = 2_000_000,
                 max_depth: int = 200) -> None:
        self.bc_modules = list(bc_modules)
        self.fuel = fuel
        self.max_depth = max_depth
        self.fn_index: Dict[str, BytecodeFunction] = {}
        for bm in self.bc_modules:
            for bf in bm.functions:
                self.fn_index.setdefault(bf.name, bf)
        self.mem: Dict[int, object] = {}
        self._brk = 0x1000
        self._global_addr: Dict[object, int] = {}
        self.outputs: List[object] = []
        self.counts: Dict[Tuple[str, str, str], int] = {}

    def _alloc(self, nbytes: int) -> int:
        addr = self._brk
        self._brk += (nbytes + 63) & ~63 or 64
        return addr

    def run(self, entry: str = "main", args: Tuple = ()) -> ExecutionResult:
        """Execute ``entry``; each call is an independent execution."""
        self.mem = {}
        self._brk = 0x1000
        self._global_addr = {}
        mem = self.mem
        for bm in self.bc_modules:
            for name, esz, size, init in bm.globals_spec:
                addr = self._alloc(size)
                self._global_addr[(bm.name, name)] = addr
                self._global_addr.setdefault(name, addr)
                for i, v in enumerate(init):
                    mem[addr + i * esz] = v
        self.outputs = []
        self.counts = {}
        if 0 > self.max_depth:
            raise InterpError(f"call depth exceeded at @{entry}")
        fnobj = self.fn_index.get(entry)
        if fnobj is None:
            raise InterpError(f"call to unknown function @{entry}")
        if len(args) != fnobj.nparams:
            raise InterpError(
                f"@{entry} called with {len(args)} args, expects {fnobj.nparams}"
            )
        ret, steps = self._execfn(fnobj, list(args), 0, 0)
        return ExecutionResult(ret, self.outputs, self.counts, steps)

    def _execfn(self, fnobj: BytecodeFunction, args: List[object], depth: int,
                steps: int) -> Tuple[object, int]:
        regs = list(fnobj.reg_init)
        i = 0
        for r in fnobj.param_regs:
            regs[r] = args[i]
            i += 1
        return self._run(fnobj.code, regs, depth, steps)

    def _careful(self, code, start: int, trip: int, regs, depth: int, fname: str) -> None:
        """Replay the last ``trip`` affordable instructions, then trap.

        Segments are call-free straight-line code, so a plain slice re-enters
        the same dispatch loop; whichever of a semantic error or the fuel trap
        the tree-walker would hit first, this hits too.
        """
        # expand fused kernels back to per-op dispatch: the head carries its
        # original instruction at ins[3]; padding positions are original code
        snippet = [ins[3] if ins[0] == OP_FUSED else ins
                   for ins in code[start:start + trip]]
        snippet.append((OP_FUEL_TRAP, fname))
        self._run(snippet, regs, depth, 0)
        raise FuelExhausted(f"fuel exhausted in @{fname}")

    def _run(self, code, regs, depth: int, steps: int) -> Tuple[object, int]:
        mem = self.mem
        mem_get = mem.get
        counts = self.counts
        fuel = self.fuel
        pc = 0
        while True:
            ins = code[pc]
            op = ins[0]
            if op == OP_LOAD:
                regs[ins[1]] = mem_get(regs[ins[2]], 0)
                pc += 1
            elif op == OP_FUSED:
                # (OP_FUSED, kernel, span, original_first_ins): the kernel
                # covers this and the next span-1 (padding) positions
                ins[1](regs)
                pc += ins[2]
            elif op == OP_ADD:
                v = (regs[ins[2]] + regs[ins[3]]) & ins[4]
                regs[ins[1]] = v - ins[6] if v >= ins[5] else v
                pc += 1
            elif op == OP_STORE:
                mem[regs[ins[2]]] = regs[ins[1]]
                pc += 1
            elif op == OP_BLOCK:
                key = ins[1]
                counts[key] = counts.get(key, 0) + 1
                cost = ins[2]
                steps += cost
                if steps > fuel:
                    self._careful(code, pc + 1, fuel - (steps - cost), regs, depth, ins[3])
                pc += 1
            elif op == OP_BR:
                pc = ins[2] if regs[ins[1]] else ins[3]
            elif op == OP_GEP:
                regs[ins[1]] = regs[ins[2]] + regs[ins[3]] * ins[4]
                pc += 1
            elif op == OP_JMP:
                pc = ins[1]
            elif op == OP_SLT:
                regs[ins[1]] = 1 if regs[ins[2]] < regs[ins[3]] else 0
                pc += 1
            elif op == OP_EQ:
                regs[ins[1]] = 1 if regs[ins[2]] == regs[ins[3]] else 0
                pc += 1
            elif op == OP_EDGE1:
                regs[ins[2]] = regs[ins[1]]
                pc = ins[3]
            elif op == OP_SUB:
                v = (regs[ins[2]] - regs[ins[3]]) & ins[4]
                regs[ins[1]] = v - ins[6] if v >= ins[5] else v
                pc += 1
            elif op == OP_MUL:
                v = (regs[ins[2]] * regs[ins[3]]) & ins[4]
                regs[ins[1]] = v - ins[6] if v >= ins[5] else v
                pc += 1
            elif op == OP_SEG:
                cost = ins[1]
                steps += cost
                if steps > fuel:
                    self._careful(code, pc + 1, fuel - (steps - cost), regs, depth, ins[2])
                pc += 1
            elif op == OP_AND:
                v = (regs[ins[2]] & regs[ins[3]]) & ins[4]
                regs[ins[1]] = v - ins[6] if v >= ins[5] else v
                pc += 1
            elif op == OP_OR:
                v = (regs[ins[2]] | regs[ins[3]]) & ins[4]
                regs[ins[1]] = v - ins[6] if v >= ins[5] else v
                pc += 1
            elif op == OP_XOR:
                v = (regs[ins[2]] ^ regs[ins[3]]) & ins[4]
                regs[ins[1]] = v - ins[6] if v >= ins[5] else v
                pc += 1
            elif op == OP_SHL:
                v = (regs[ins[2]] << (regs[ins[3]] % ins[4])) & ins[5]
                regs[ins[1]] = v - ins[7] if v >= ins[6] else v
                pc += 1
            elif op == OP_ASHR:
                v = (regs[ins[2]] >> (regs[ins[3]] % ins[4])) & ins[5]
                regs[ins[1]] = v - ins[7] if v >= ins[6] else v
                pc += 1
            elif op == OP_LSHR:
                v = ((regs[ins[2]] & ins[5]) >> (regs[ins[3]] % ins[4])) & ins[5]
                regs[ins[1]] = v - ins[7] if v >= ins[6] else v
                pc += 1
            elif op == OP_SDIV:
                a = regs[ins[2]]
                b = regs[ins[3]]
                if b == 0:
                    raise InterpError("sdiv by zero")
                q = abs(a) // abs(b)
                v = (-q if (a < 0) != (b < 0) else q) & ins[4]
                regs[ins[1]] = v - ins[6] if v >= ins[5] else v
                pc += 1
            elif op == OP_SREM:
                a = regs[ins[2]]
                b = regs[ins[3]]
                if b == 0:
                    raise InterpError("srem by zero")
                q = abs(a) // abs(b)
                q = -q if (a < 0) != (b < 0) else q
                v = (a - q * b) & ins[4]
                regs[ins[1]] = v - ins[6] if v >= ins[5] else v
                pc += 1
            elif op == OP_UDIV:
                b = regs[ins[3]]
                if b == 0:
                    raise InterpError("udiv by zero")
                m = ins[4]
                v = (regs[ins[2]] & m) // (b & m)
                regs[ins[1]] = v - ins[6] if v >= ins[5] else v
                pc += 1
            elif op == OP_UREM:
                b = regs[ins[3]]
                if b == 0:
                    raise InterpError("urem by zero")
                m = ins[4]
                v = (regs[ins[2]] & m) % (b & m)
                regs[ins[1]] = v - ins[6] if v >= ins[5] else v
                pc += 1
            elif op == OP_FADD:
                regs[ins[1]] = regs[ins[2]] + regs[ins[3]]
                pc += 1
            elif op == OP_FSUB:
                regs[ins[1]] = regs[ins[2]] - regs[ins[3]]
                pc += 1
            elif op == OP_FMUL:
                regs[ins[1]] = regs[ins[2]] * regs[ins[3]]
                pc += 1
            elif op == OP_FDIV:
                b = regs[ins[3]]
                if b == 0:
                    raise InterpError("fdiv by zero")
                regs[ins[1]] = regs[ins[2]] / b
                pc += 1
            elif op == OP_NE:
                regs[ins[1]] = 1 if regs[ins[2]] != regs[ins[3]] else 0
                pc += 1
            elif op == OP_SLE:
                regs[ins[1]] = 1 if regs[ins[2]] <= regs[ins[3]] else 0
                pc += 1
            elif op == OP_SGT:
                regs[ins[1]] = 1 if regs[ins[2]] > regs[ins[3]] else 0
                pc += 1
            elif op == OP_SGE:
                regs[ins[1]] = 1 if regs[ins[2]] >= regs[ins[3]] else 0
                pc += 1
            elif op == OP_ULT:
                m = ins[4]
                regs[ins[1]] = 1 if (regs[ins[2]] & m) < (regs[ins[3]] & m) else 0
                pc += 1
            elif op == OP_ULE:
                m = ins[4]
                regs[ins[1]] = 1 if (regs[ins[2]] & m) <= (regs[ins[3]] & m) else 0
                pc += 1
            elif op == OP_UGT:
                m = ins[4]
                regs[ins[1]] = 1 if (regs[ins[2]] & m) > (regs[ins[3]] & m) else 0
                pc += 1
            elif op == OP_UGE:
                m = ins[4]
                regs[ins[1]] = 1 if (regs[ins[2]] & m) >= (regs[ins[3]] & m) else 0
                pc += 1
            elif op == OP_FEQ:
                regs[ins[1]] = 1 if regs[ins[2]] == regs[ins[3]] else 0
                pc += 1
            elif op == OP_FNE:
                a = regs[ins[2]]
                b = regs[ins[3]]
                regs[ins[1]] = 1 if (a == a and b == b and a != b) else 0
                pc += 1
            elif op == OP_FLT:
                regs[ins[1]] = 1 if regs[ins[2]] < regs[ins[3]] else 0
                pc += 1
            elif op == OP_FLE:
                regs[ins[1]] = 1 if regs[ins[2]] <= regs[ins[3]] else 0
                pc += 1
            elif op == OP_FGT:
                regs[ins[1]] = 1 if regs[ins[2]] > regs[ins[3]] else 0
                pc += 1
            elif op == OP_FGE:
                regs[ins[1]] = 1 if regs[ins[2]] >= regs[ins[3]] else 0
                pc += 1
            elif op == OP_SELECT:
                regs[ins[1]] = regs[ins[3]] if regs[ins[2]] else regs[ins[4]]
                pc += 1
            elif op == OP_COPY:
                regs[ins[1]] = regs[ins[2]]
                pc += 1
            elif op == OP_WRAP:
                v = regs[ins[2]] & ins[3]
                regs[ins[1]] = v - ins[5] if v >= ins[4] else v
                pc += 1
            elif op == OP_SITOFP:
                regs[ins[1]] = float(regs[ins[2]])
                pc += 1
            elif op == OP_FPTOSI:
                v = int(regs[ins[2]]) & ins[3]
                regs[ins[1]] = v - ins[5] if v >= ins[4] else v
                pc += 1
            elif op == OP_OUTPUT:
                self.outputs.append(regs[ins[1]])
                pc += 1
            elif op == OP_ALLOCA:
                addr = self._brk
                self._brk += (ins[2] + 63) & ~63 or 64
                regs[ins[1]] = addr
                pc += 1
            elif op == OP_GADDR:
                addr = self._global_addr.get(ins[2])
                if addr is None:
                    addr = self._global_addr.get(ins[3])
                    if addr is None:
                        raise InterpError(f"unknown global @{ins[3]}")
                regs[ins[1]] = addr
                pc += 1
            elif op == OP_CALL:
                steps += 1
                if steps > fuel:
                    raise FuelExhausted(f"fuel exhausted in @{ins[2]}")
                if depth + 1 > self.max_depth:
                    raise InterpError(f"call depth exceeded at @{ins[3]}")
                callee = self.fn_index.get(ins[3])
                if callee is None:
                    raise InterpError(f"call to unknown function @{ins[3]}")
                argregs = ins[4]
                if len(argregs) != callee.nparams:
                    raise InterpError(
                        f"@{ins[3]} called with {len(argregs)} args, "
                        f"expects {callee.nparams}"
                    )
                ret, steps = self._execfn(callee, [regs[r] for r in argregs],
                                          depth + 1, steps)
                if ins[1] >= 0:
                    regs[ins[1]] = ret
                pc += 1
            elif op == OP_RET:
                return regs[ins[1]], steps
            elif op == OP_RET_NONE:
                return None, steps
            elif op == OP_EDGE:
                vals = [regs[r] for r in ins[1]]
                i = 0
                for d in ins[2]:
                    regs[d] = vals[i]
                    i += 1
                pc = ins[3]
            elif op == OP_RAISE:
                raise InterpError(ins[1])
            elif op == OP_RAISE_KEY:
                raise KeyError(ins[1])
            elif op == OP_FUEL_TRAP:
                raise FuelExhausted(f"fuel exhausted in @{ins[1]}")
            elif op == OP_ICMP_GEN:
                regs[ins[1]] = 1 if _icmp(ins[4], regs[ins[2]], regs[ins[3]], ins[5]) else 0
                pc += 1
            elif op == OP_FCMP_GEN:
                regs[ins[1]] = 1 if _fcmp(ins[4], regs[ins[2]], regs[ins[3]]) else 0
                pc += 1
            elif op == OP_VBIN_I:
                vop = ins[4]
                ebits = ins[5]
                regs[ins[1]] = tuple(
                    _int_bin(vop, x, y, ebits) for x, y in zip(regs[ins[2]], regs[ins[3]])
                )
                pc += 1
            elif op == OP_VBIN_F:
                vop = ins[4]
                regs[ins[1]] = tuple(
                    _float_bin(vop, x, y) for x, y in zip(regs[ins[2]], regs[ins[3]])
                )
                pc += 1
            elif op == OP_VLOAD:
                addr = regs[ins[2]]
                esz = ins[3]
                regs[ins[1]] = tuple(
                    mem_get(addr + k * esz, 0) for k in range(ins[4])
                )
                pc += 1
            elif op == OP_VSTORE:
                vals = regs[ins[1]]
                addr = regs[ins[2]]
                esz = ins[3]
                for k, v in enumerate(vals):
                    mem[addr + k * esz] = v
                pc += 1
            elif op == OP_BROADCAST:
                regs[ins[1]] = (regs[ins[2]],) * ins[3]
                pc += 1
            elif op == OP_EXTRACT:
                regs[ins[1]] = regs[ins[2]][regs[ins[3]]]
                pc += 1
            elif op == OP_INSERT:
                vals = list(regs[ins[2]])
                vals[regs[ins[4]]] = regs[ins[3]]
                regs[ins[1]] = tuple(vals)
                pc += 1
            elif op == OP_REDUCE:
                vals = regs[ins[2]]
                rop = ins[3]
                acc = vals[0]
                if ins[4]:
                    bits = ins[5]
                    for v in vals[1:]:
                        acc = _int_bin(rop, acc, v, bits)
                else:
                    for v in vals[1:]:
                        acc = _float_bin(rop, acc, v)
                regs[ins[1]] = acc
                pc += 1
            elif op == OP_MEMSET:
                addr = regs[ins[1]]
                val = regs[ins[2]]
                esz = ins[4]
                for k in range(regs[ins[3]]):
                    mem[addr + k * esz] = val
                pc += 1
            elif op == OP_MEMCPY:
                dst = regs[ins[1]]
                src = regs[ins[2]]
                esz = ins[4]
                vals = [mem_get(src + k * esz, 0) for k in range(regs[ins[3]])]
                for k, v in enumerate(vals):
                    mem[dst + k * esz] = v
                pc += 1
            else:
                raise InterpError(f"bytecode VM: bad opcode {op!r}")


def run_bytecode(
    modules: List[Module], entry: str = "main", fuel: int = 2_000_000,
    fuse: bool = False,
) -> ExecutionResult:
    """Convenience wrapper: compile ``modules`` and run ``entry`` once."""
    bms = [compile_module(m) for m in modules]
    if fuse:
        from repro.machine.fuse import fuse_module

        bms = [fuse_module(bm)[0] for bm in bms]
    return BytecodeVM(bms, fuel=fuel).run(entry)
