"""Fused superblock kernels for the bytecode VM.

A post-compile pass over :class:`~repro.machine.bytecode.BytecodeModule` that
finds maximal straight-line runs of side-effect-free int/float ALU
instructions (no loads/stores/calls/control flow, nothing that can raise
except ``fptosi`` whose program order is preserved) and lowers each run to a
single ``OP_FUSED`` instruction carrying a precompiled Python kernel.

Lowering rules
--------------
* A fused instruction ``(OP_FUSED, kernel, span, original_first_ins)`` sits
  at the run's first position; the remaining ``span - 1`` positions *keep*
  their original instructions as padding.  Code offsets, branch targets and
  segment costs are therefore unchanged, so segment fuel accounting stays
  exact, and careful-mode replay restores per-op dispatch by substituting
  ``ins[3]`` for the head — ``FuelExhausted`` parity is bit-exact.
* Kernels are generated source compiled once and cached process-wide by
  source text: operand registers are gathered once into locals, constants
  are inlined as literals, results are scattered once at the end.
* Masks are applied once per dependence chain instead of once per
  instruction: an int result consumed only by in-run ``add/sub/mul/and/or/
  xor`` at the same width, and dead outside the run, is kept in raw
  (uncanonicalised) form — raw values are congruent to canonical values
  mod 2**bits, which is all those consumers observe.
* Wide dependence levels batch through numpy: groups of at least
  ``NP_MIN_GROUP`` independent same-shape int (``add/sub/mul/and/or/xor``)
  or float (``fadd/fsub/fmul``) ops at one level execute as a single int64 /
  float64 vector op (int64 two's-complement wrap matches the VM's
  mask/sign/period canonicalisation; sub-64-bit widths re-mask the vector).
  Batched ops never raise, but a batch executes at its *anchor* — the last
  member's program position — so cohorts are refined to a fixpoint first:
  any member with an in-run consumer emitted before the anchor, or an
  in-run operand producer emitted after it, is demoted to scalar emission
  (program order can interleave levels arbitrarily, so neither holds by
  construction).

Fused code holds function objects and is **not picklable**; the shared
artifact store ships unfused modules and fusion is re-applied on retrieval.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.machine.bytecode import (
    OP_ADD,
    OP_AND,
    OP_ASHR,
    OP_COPY,
    OP_EQ,
    OP_FADD,
    OP_FEQ,
    OP_FGE,
    OP_FGT,
    OP_FLE,
    OP_FLT,
    OP_FMUL,
    OP_FNE,
    OP_FPTOSI,
    OP_FSUB,
    OP_FUSED,
    OP_GEP,
    OP_LSHR,
    OP_MUL,
    OP_NE,
    OP_OR,
    OP_SELECT,
    OP_SGE,
    OP_SGT,
    OP_SHL,
    OP_SITOFP,
    OP_SLE,
    OP_SLT,
    OP_SUB,
    OP_UGE,
    OP_UGT,
    OP_ULE,
    OP_ULT,
    OP_WRAP,
    OP_XOR,
    READ_FIELDS,
    TUPLE_READ_FIELDS,
    BytecodeFunction,
    BytecodeModule,
)

__all__ = ["fuse_module", "fuse_function", "fused_stats", "MIN_RUN", "NP_MIN_GROUP"]

#: minimum run length worth a kernel call
MIN_RUN = 3
#: maximum ops folded into one kernel (long runs are chunked)
MAX_RUN = 256
#: minimum independent same-shape ops per dependence level to use numpy.
#: Measured crossover: generated scalar kernels (operands in locals, masks
#: deferred per chain) beat int64/float64 vector ops up to ~50-wide levels
#: because scalar<->array boxing dominates; keep the vector path for the
#: genuinely wide tail.
NP_MIN_GROUP = 48

_M64 = (1 << 64) - 1

# int binary ops with layout (op, d, a, b, mask, sign, period)
_INT_BIN_SYM = {OP_ADD: "+", OP_SUB: "-", OP_MUL: "*", OP_AND: "&", OP_OR: "|", OP_XOR: "^"}
# shifts with layout (op, d, a, b, bits, mask, sign, period)
_SHIFT_OPS = frozenset({OP_SHL, OP_ASHR, OP_LSHR})
# float binary ops (op, d, a, b)
_FLT_BIN_SYM = {OP_FADD: "+", OP_FSUB: "-", OP_FMUL: "*"}
# plain compares (op, d, a, b) — int signed and float share Python operators
_CMP_SYM = {
    OP_SLT: "<", OP_SLE: "<=", OP_SGT: ">", OP_SGE: ">=", OP_EQ: "==", OP_NE: "!=",
    OP_FLT: "<", OP_FLE: "<=", OP_FGT: ">", OP_FGE: ">=", OP_FEQ: "==",
}
# unsigned compares (op, d, a, b, mask)
_UCMP_SYM = {OP_ULT: "<", OP_ULE: "<=", OP_UGT: ">", OP_UGE: ">="}

#: ops a fused run may contain (pure; only fptosi can raise, order preserved)
FUSIBLE = frozenset(
    set(_INT_BIN_SYM) | _SHIFT_OPS | set(_FLT_BIN_SYM) | set(_CMP_SYM) | set(_UCMP_SYM)
    | {OP_SELECT, OP_COPY, OP_WRAP, OP_SITOFP, OP_FPTOSI, OP_GEP}
)

# mask deferral: raw values are valid mod 2**bits for these producers and
# are only observed mod 2**bits by these consumers (at equal mask)
_DEFER_PRODUCERS = frozenset(_INT_BIN_SYM)
_DEFER_CONSUMERS = frozenset(_INT_BIN_SYM)

# numpy-batchable shapes
_NP_INT = frozenset(_INT_BIN_SYM)
_NP_FLT = frozenset(_FLT_BIN_SYM)

#: process-wide kernel cache: generated source -> compiled callable
_KERNEL_CACHE: "OrderedDict[str, object]" = OrderedDict()
_KERNEL_CACHE_MAX = 4096


def _reads_of(ins) -> List[int]:
    """Register read fields of one decoded instruction."""
    op = ins[0]
    regs = [ins[f] for f in READ_FIELDS.get(op, ())]
    for f in TUPLE_READ_FIELDS.get(op, ()):
        regs.extend(ins[f])
    return regs


def _dest_of(ins) -> Optional[int]:
    # every fusible op writes field 1
    return ins[1]


def _lit(value) -> Optional[str]:
    """Source literal for an inlinable constant, or None if not inlinable."""
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return str(value) if value >= 0 else f"({value})"
    if isinstance(value, float):
        if not math.isfinite(value):
            return None  # repr(inf/nan) is not a literal
        return f"({value!r})"
    return None


def _gen_source(run: Tuple[tuple, ...], const_lits: Dict[int, str],
                total_reads: Dict[int, int]) -> str:
    """Generate kernel source for one fused run.

    ``const_lits`` maps constant-pool registers to source literals;
    ``total_reads`` counts register reads across the *whole* function, used
    to decide which results are live outside the run (must be scattered
    canonically) vs dead in-run temporaries (eligible for mask deferral).
    """
    k = len(run)
    # -- def/use analysis (runs are SSA: each dest is written exactly once) --
    producer_of: Dict[int, int] = {}
    consumers: List[List[int]] = [[] for _ in range(k)]
    in_run_reads: Dict[int, int] = {}
    for j, ins in enumerate(run):
        for r in _reads_of(ins):
            in_run_reads[r] = in_run_reads.get(r, 0) + 1
            p = producer_of.get(r)
            if p is not None:
                consumers[p].append(j)
        producer_of[_dest_of(ins)] = j

    def live_out(reg: int) -> bool:
        return total_reads.get(reg, 0) - in_run_reads.get(reg, 0) > 0

    # -- dependence levels (for numpy grouping) -----------------------------
    level = [1] * k
    for j, ins in enumerate(run):
        lv = 0
        for r in _reads_of(ins):
            p = producer_of.get(r)
            if p is not None and p < j and level[p] > lv:
                lv = level[p]
        level[j] = lv + 1

    # -- numpy batch cohorts (before deferral: batch members and anything
    # they read must stay canonical — raw values may exceed int64) ----------
    groups: Dict[tuple, List[int]] = {}
    for i, ins in enumerate(run):
        op = ins[0]
        if op in _NP_INT or op in _NP_FLT:
            key = (level[i], op, ins[4] if op in _NP_INT else None)
            groups.setdefault(key, []).append(i)
    groups = {key: members for key, members in groups.items()
              if len(members) >= NP_MIN_GROUP}

    # A batch is emitted at its anchor (last member's program position), so
    # emission order matches data dependences only if every member's in-run
    # consumers emit strictly after the anchor and every in-run operand
    # producer emits strictly before it.  Neither holds by construction —
    # program order can interleave a level-2 consumer between level-1 batch
    # members, and a lower-level group's anchor can trail a higher-level
    # member that reads its output.  Demote violating members to scalar
    # emission until a fixpoint (demotions move anchors, which can expose
    # further violations and disband sub-threshold groups).
    batch_of: Dict[int, tuple] = {}
    while True:
        batch_of = {i: key for key, members in groups.items() for i in members}
        anchor_pos = {key: members[-1] for key, members in groups.items()}

        def emit_pos(j: int) -> int:
            gk = batch_of.get(j)
            return j if gk is None else anchor_pos[gk]

        demoted = False
        for key, members in list(groups.items()):
            anchor = members[-1]
            keep = [
                i for i in members
                if all(emit_pos(j) > anchor for j in consumers[i])
                and all(
                    producer_of.get(r) is None or emit_pos(producer_of[r]) < anchor
                    for r in _reads_of(run[i])
                )
            ]
            if len(keep) == len(members):
                continue
            demoted = True
            if len(keep) >= NP_MIN_GROUP:
                groups[key] = keep
            else:
                del groups[key]
        if not demoted:
            break
    anchors: Dict[int, tuple] = {members[-1]: key for key, members in groups.items()}

    # -- mask deferral ------------------------------------------------------
    deferred = [False] * k
    for i, ins in enumerate(run):
        if ins[0] not in _DEFER_PRODUCERS or live_out(ins[1]) or i in batch_of:
            continue
        mask = ins[4]
        ok = True
        for j in consumers[i]:
            cj = run[j]
            if cj[0] not in _DEFER_CONSUMERS or cj[4] != mask or j in batch_of:
                ok = False
                break
        deferred[i] = ok

    # -- emission -----------------------------------------------------------
    gathers: Dict[int, str] = {}
    defs: Dict[int, str] = {}
    body: List[str] = []

    def use(reg: int) -> str:
        got = defs.get(reg)
        if got is not None:
            return got
        lit = const_lits.get(reg)
        if lit is not None:
            return lit
        p = producer_of.get(reg)
        if p is not None and p in batch_of:
            # The in-run producer is batched but not yet emitted; gathering
            # R[reg] here would read the stale pre-kernel value.  Cohort
            # refinement above must make this unreachable — fail loudly
            # rather than miscompile.
            raise AssertionError(
                f"fuse: operand r{reg} read before its batched producer emits"
            )
        got = gathers.get(reg)
        if got is None:
            got = f"g{reg}"
            gathers[reg] = got
        return got

    def canon(d: str, mask: int, sign: int, period: int) -> None:
        body.append(f"    {d} = {d} - {period} if {d} >= {sign} else {d}")

    def emit_scalar(i: int, ins) -> None:
        op = ins[0]
        d = f"v{i}"
        if op in _INT_BIN_SYM:
            a, b = use(ins[2]), use(ins[3])
            expr = f"{a} {_INT_BIN_SYM[op]} {b}"
            if deferred[i]:
                body.append(f"    {d} = {expr}")
            else:
                body.append(f"    {d} = ({expr}) & {ins[4]}")
                canon(d, ins[4], ins[5], ins[6])
        elif op in _SHIFT_OPS:
            a, b = use(ins[2]), use(ins[3])
            if op == OP_SHL:
                body.append(f"    {d} = ({a} << ({b} % {ins[4]})) & {ins[5]}")
            elif op == OP_ASHR:
                body.append(f"    {d} = ({a} >> ({b} % {ins[4]})) & {ins[5]}")
            else:  # OP_LSHR
                body.append(f"    {d} = (({a} & {ins[5]}) >> ({b} % {ins[4]})) & {ins[5]}")
            canon(d, ins[5], ins[6], ins[7])
        elif op in _FLT_BIN_SYM:
            body.append(f"    {d} = {use(ins[2])} {_FLT_BIN_SYM[op]} {use(ins[3])}")
        elif op == OP_FNE:
            a, b = use(ins[2]), use(ins[3])
            body.append(f"    {d} = 1 if ({a} == {a} and {b} == {b} and {a} != {b}) else 0")
        elif op in _CMP_SYM:
            body.append(f"    {d} = 1 if {use(ins[2])} {_CMP_SYM[op]} {use(ins[3])} else 0")
        elif op in _UCMP_SYM:
            a, b, m = use(ins[2]), use(ins[3]), ins[4]
            body.append(f"    {d} = 1 if ({a} & {m}) {_UCMP_SYM[op]} ({b} & {m}) else 0")
        elif op == OP_SELECT:
            body.append(f"    {d} = {use(ins[3])} if {use(ins[2])} else {use(ins[4])}")
        elif op == OP_COPY:
            body.append(f"    {d} = {use(ins[2])}")
        elif op == OP_WRAP:
            body.append(f"    {d} = {use(ins[2])} & {ins[3]}")
            canon(d, ins[3], ins[4], ins[5])
        elif op == OP_SITOFP:
            body.append(f"    {d} = float({use(ins[2])})")
        elif op == OP_FPTOSI:
            body.append(f"    {d} = int({use(ins[2])}) & {ins[3]}")
            canon(d, ins[3], ins[4], ins[5])
        elif op == OP_GEP:
            body.append(f"    {d} = {use(ins[2])} + {use(ins[3])} * {ins[4]}")
        else:  # pragma: no cover - FUSIBLE and emit_scalar must stay in sync
            raise AssertionError(f"unfusible opcode {op}")
        defs[ins[1]] = d

    n_batches = 0

    def emit_batch(key: tuple) -> None:
        nonlocal n_batches
        members = groups[key]
        _lv, op, mask = key
        xa = ", ".join(use(run[i][2]) for i in members)
        xb = ", ".join(use(run[i][3]) for i in members)
        arr = f"_b{n_batches}"
        n_batches += 1
        if op in _NP_INT:
            sym = _INT_BIN_SYM[op]
            body.append(f"    {arr} = _np.array(({xa},), _i8) {sym} _np.array(({xb},), _i8)")
            if mask != _M64:
                sign, period = run[members[0]][5], run[members[0]][6]
                body.append(f"    {arr} &= {mask}")
                body.append(f"    {arr} = _np.where({arr} >= {sign}, {arr} - {period}, {arr})")
        else:
            sym = _FLT_BIN_SYM[op]
            body.append(f"    {arr} = _np.array(({xa},), _f8) {sym} _np.array(({xb},), _f8)")
        targets = ", ".join(f"v{i}" for i in members)
        body.append(f"    {targets} = {arr}.tolist()")
        for i in members:
            defs[run[i][1]] = f"v{i}"

    for i, ins in enumerate(run):
        key = batch_of.get(i)
        if key is None:
            emit_scalar(i, ins)
        elif anchors.get(i) == key:
            emit_batch(key)
        # non-anchor batch members emit nothing at their own position

    scatter = [f"    R[{reg}] = {defs[reg]}" for reg in sorted(producer_of)
               if live_out(reg)]

    lines = ["def _k(R):"]
    lines.extend(f"    g{reg} = R[{reg}]" for reg in sorted(gathers))
    lines.extend(body)
    lines.extend(scatter)
    if not (body or scatter):
        lines.append("    pass")
    return "\n".join(lines)


def _kernel_for(source: str):
    """Compile (or fetch) the kernel callable for generated ``source``."""
    fn = _KERNEL_CACHE.get(source)
    if fn is not None:
        _KERNEL_CACHE.move_to_end(source)
        return fn
    ns: Dict[str, object] = {}
    exec(compile(source, "<repro-fused-kernel>", "exec"),
         {"_np": np, "_i8": np.int64, "_f8": np.float64}, ns)
    fn = ns["_k"]
    _KERNEL_CACHE[source] = fn
    while len(_KERNEL_CACHE) > _KERNEL_CACHE_MAX:
        _KERNEL_CACHE.popitem(last=False)
    return fn


def fuse_function(bf: BytecodeFunction) -> Tuple[BytecodeFunction, int, int]:
    """Fuse one function; returns ``(fused_fn, n_kernels, n_fused_ops)``."""
    code = list(bf.code)
    n = len(code)
    # whole-function register read counts (for run-local liveness)
    total_reads: Dict[int, int] = {}
    for ins in code:
        for r in _reads_of(ins):
            total_reads[r] = total_reads.get(r, 0) + 1
    # constant-pool registers carry their value in reg_init; name registers
    # are initialised to None and always written before read (SSA)
    const_lits: Dict[int, str] = {}
    for reg, val in enumerate(bf.reg_init):
        if val is not None:
            lit = _lit(val)
            if lit is not None:
                const_lits[reg] = lit

    kernels = 0
    fused_ops = 0
    i = 0
    while i < n:
        if code[i][0] not in FUSIBLE:
            i += 1
            continue
        j = i
        while j < n and code[j][0] in FUSIBLE:
            j += 1
        start = i
        while j - start >= MIN_RUN:
            span = min(j - start, MAX_RUN)
            run = tuple(code[start:start + span])
            src = _gen_source(run, const_lits, total_reads)
            kern = _kernel_for(src)
            code[start] = (OP_FUSED, kern, span, code[start])
            kernels += 1
            fused_ops += span
            start += span
        i = j
    if not kernels:
        return bf, 0, 0
    fused = BytecodeFunction(bf.name, bf.module_name, bf.nparams, bf.param_regs,
                             bf.reg_init, tuple(code))
    return fused, kernels, fused_ops


def fuse_module(bm: BytecodeModule) -> Tuple[BytecodeModule, Dict[str, int]]:
    """Fuse every function of a compiled module.

    Returns ``(fused_module, stats)`` with ``stats = {"kernels": ...,
    "fused_ops": ...}``.  The input module is left untouched (functions
    without fusible runs are shared).
    """
    fns = []
    kernels = 0
    fused_ops = 0
    for bf in bm.functions:
        ffn, nk, nops = fuse_function(bf)
        fns.append(ffn)
        kernels += nk
        fused_ops += nops
    if not kernels:
        return bm, {"kernels": 0, "fused_ops": 0}
    out = BytecodeModule(bm.name, tuple(fns), bm.globals_spec)
    return out, {"kernels": kernels, "fused_ops": fused_ops}


def fused_stats(bm: BytecodeModule) -> Dict[str, int]:
    """Count fused kernels/ops present in ``bm`` (0/0 for unfused modules)."""
    kernels = 0
    fused_ops = 0
    for bf in bm.functions:
        for ins in bf.code:
            if ins[0] == OP_FUSED:
                kernels += 1
                fused_ops += ins[2]
    return {"kernels": kernels, "fused_ops": fused_ops}
