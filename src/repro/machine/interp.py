"""Reference interpreter for the mini-IR.

Executes a linked set of modules, producing the program's observable output
stream (for differential testing, §1.1/§5.4 of the paper) and per-block
execution counts (the "profile" that the platform cost model converts into a
simulated runtime — our stand-in for running the binary under ``perf``).

Integer arithmetic wraps at the operand's declared bit width, exactly like
LLVM, so width-changing transformations (e.g. ``instcombine`` sign-extension
widening, Fig 5.1c) are observable in semantics only when genuinely illegal —
a property the differential tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler.ir import Const, Function, Instr, Module, Type

__all__ = ["ExecutionResult", "Interpreter", "run_program", "InterpError", "FuelExhausted"]


class InterpError(RuntimeError):
    """Raised on semantic errors (bad opcode, missing value, div by zero)."""


class FuelExhausted(InterpError):
    """Raised when the execution step budget is exceeded (runaway loop guard)."""


def _wrap(value: int, bits: int) -> int:
    """Two's-complement wrap of ``value`` to a signed ``bits``-wide integer."""
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _to_unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


@dataclass
class ExecutionResult:
    """Outcome of one program execution."""

    ret: Union[int, float, None]
    outputs: List[Union[int, float]]
    block_counts: Dict[Tuple[str, str, str], int]  # (module, function, block) -> times entered
    steps: int

    def output_signature(self) -> Tuple:
        """Hashable semantic fingerprint used by differential testing."""
        return (self.ret, tuple(self.outputs))


class _Frame:
    __slots__ = ("module", "fn", "env", "block", "prev_block", "idx", "ret_to")

    def __init__(self, module: Module, fn: Function) -> None:
        self.module = module
        self.fn = fn
        self.env: Dict[str, object] = {}
        self.block = fn.entry.name
        self.prev_block: Optional[str] = None
        self.idx = 0
        self.ret_to: Optional[Instr] = None


class Interpreter:
    """Executes ``main`` across a list of linked modules.

    Functions are resolved by name across all modules (first match wins,
    mirroring a linker).  Memory is a flat byte-addressed dictionary with a
    bump allocator; allocas are never freed, which is harmless at the
    program sizes used here and keeps address identity stable.
    """

    def __init__(self, modules: List[Module], fuel: int = 2_000_000, max_depth: int = 200) -> None:
        self.modules = modules
        self.fuel = fuel
        self.max_depth = max_depth
        self._fn_index: Dict[str, Tuple[Module, Function]] = {}
        for mod in modules:
            for fn in mod.functions.values():
                self._fn_index.setdefault(fn.name, (mod, fn))
        self.mem: Dict[int, Union[int, float]] = {}
        self._brk = 0x1000
        self._global_addr: Dict[str, int] = {}
        # keyed by (module name, function name): id(fn) can alias a stale
        # entry if a Function is garbage-collected and its id reused
        self._bits_cache: Dict[Tuple[str, str], Dict[str, int]] = {}
        self._materialise_globals()

    def _operand_bits(self, frame: "_Frame", operand) -> int:
        """Bit width of an operand's (element) type, cached per function."""
        if isinstance(operand, Const):
            return _scalar_bits(operand.ty)
        key = (frame.module.name, frame.fn.name)
        cache = self._bits_cache.get(key)
        if cache is None:
            cache = _build_bits_map(frame.fn)
            self._bits_cache[key] = cache
        return cache.get(operand, 64)

    def _src_bits(self, frame: "_Frame", inst: Instr) -> int:
        """Bit width of a cast's source operand."""
        return self._operand_bits(frame, inst.args[0])

    # -- memory ------------------------------------------------------------
    def _alloc(self, nbytes: int) -> int:
        addr = self._brk
        self._brk += (nbytes + 63) & ~63 or 64
        return addr

    def _materialise_globals(self) -> None:
        for mod in self.modules:
            for gv in mod.globals.values():
                size = gv.elem_ty.byte_size() * max(1, gv.count)
                addr = self._alloc(size)
                # globals are module-scoped; a flat fallback handles the rare
                # cross-module reference (resolved like a weak symbol)
                self._global_addr[(mod.name, gv.name)] = addr
                self._global_addr.setdefault(gv.name, addr)
                esz = gv.elem_ty.byte_size()
                for i, v in enumerate(gv.init):
                    self.mem[addr + i * esz] = v

    def global_address(self, name: str, module_name: Optional[str] = None) -> int:
        """Simulated address of a global (module-scoped lookup)."""
        if module_name is not None:
            addr = self._global_addr.get((module_name, name))
            if addr is not None:
                return addr
        try:
            return self._global_addr[name]
        except KeyError:
            raise InterpError(f"unknown global @{name}") from None

    # -- entry point ---------------------------------------------------------
    def run(self, entry: str = "main", args: Tuple = ()) -> ExecutionResult:
        """Execute ``entry`` and return outputs, counts and step total.

        Each call is an independent execution: simulated memory, the bump
        allocator and global initialisation are reset, so repeated runs of
        the same interpreter are bit-identical.
        """
        self.mem = {}
        self._brk = 0x1000
        self._global_addr = {}
        self._materialise_globals()
        self.outputs: List[Union[int, float]] = []
        self.block_counts: Dict[Tuple[str, str, str], int] = {}
        self._steps = 0
        ret = self._call(entry, list(args), depth=0)
        return ExecutionResult(ret, self.outputs, self.block_counts, self._steps)

    # -- evaluation ------------------------------------------------------------
    def _value(self, frame: _Frame, operand) -> object:
        if isinstance(operand, Const):
            return operand.value
        try:
            return frame.env[operand]
        except KeyError:
            raise InterpError(
                f"use of undefined value {operand!r} in @{frame.fn.name}:{frame.block}"
            ) from None

    def _call(self, name: str, args: List[object], depth: int) -> object:
        if depth > self.max_depth:
            raise InterpError(f"call depth exceeded at @{name}")
        try:
            module, fn = self._fn_index[name]
        except KeyError:
            raise InterpError(f"call to unknown function @{name}") from None
        if len(args) != len(fn.params):
            raise InterpError(
                f"@{name} called with {len(args)} args, expects {len(fn.params)}"
            )
        frame = _Frame(module, fn)
        for (pname, _ty), val in zip(fn.params, args):
            frame.env[pname] = val

        while True:
            blk = fn.blocks[frame.block]
            key = (module.name, fn.name, frame.block)
            self.block_counts[key] = self.block_counts.get(key, 0) + 1
            # phi nodes: evaluate all in parallel against prev_block
            phi_vals: List[Tuple[str, object]] = []
            i = 0
            instrs = blk.instrs
            n = len(instrs)
            while i < n and instrs[i].op == "phi":
                inst = instrs[i]
                for src_blk, val in inst.attrs["incoming"]:
                    if src_blk == frame.prev_block:
                        phi_vals.append((inst.res, self._value(frame, val)))
                        break
                else:
                    raise InterpError(
                        f"phi {inst.res} in @{fn.name}:{frame.block} has no incoming "
                        f"from {frame.prev_block!r}"
                    )
                i += 1
            for res, val in phi_vals:
                frame.env[res] = val

            jumped = False
            while i < n:
                inst = instrs[i]
                self._steps += 1
                if self._steps > self.fuel:
                    raise FuelExhausted(f"fuel exhausted in @{fn.name}")
                op = inst.op
                if op == "br":
                    cond = self._value(frame, inst.args[0])
                    target = inst.attrs["targets"][0 if cond else 1]
                    frame.prev_block, frame.block = frame.block, target
                    jumped = True
                    break
                if op == "jmp":
                    frame.prev_block, frame.block = frame.block, inst.attrs["target"]
                    jumped = True
                    break
                if op == "ret":
                    return self._value(frame, inst.args[0]) if inst.args else None
                if op == "unreachable":
                    raise InterpError(f"executed unreachable in @{fn.name}")
                self._exec(frame, inst, depth)
                i += 1
            if not jumped:
                raise InterpError(f"block {frame.block} in @{fn.name} fell through")

    def _exec(self, frame: _Frame, inst: Instr, depth: int) -> None:
        op = inst.op
        ty = inst.ty
        if op in _INT_BIN or op in _FLOAT_BIN:
            a = self._value(frame, inst.args[0])
            b = self._value(frame, inst.args[1])
            if ty.is_vec:
                ebits = ty.elem.bits
                if ty.elem.is_int:
                    frame.env[inst.res] = tuple(
                        _int_bin(op, x, y, ebits) for x, y in zip(a, b)
                    )
                else:
                    frame.env[inst.res] = tuple(_float_bin(op, x, y) for x, y in zip(a, b))
            elif ty.is_int:
                frame.env[inst.res] = _int_bin(op, a, b, ty.bits)
            else:
                frame.env[inst.res] = _float_bin(op, a, b)
        elif op == "load":
            addr = self._value(frame, inst.args[0])
            frame.env[inst.res] = self.mem.get(addr, 0)
        elif op == "store":
            val = self._value(frame, inst.args[0])
            addr = self._value(frame, inst.args[1])
            self.mem[addr] = val
        elif op == "alloca":
            elem_ty: Type = inst.attrs["elem_ty"]
            count: int = inst.attrs.get("count", 1)
            frame.env[inst.res] = self._alloc(elem_ty.byte_size() * count)
        elif op == "gep":
            base = self._value(frame, inst.args[0])
            idx = self._value(frame, inst.args[1])
            frame.env[inst.res] = base + idx * inst.attrs["elem_ty"].byte_size()
        elif op == "gaddr":
            frame.env[inst.res] = self.global_address(inst.attrs["name"], frame.module.name)
        elif op == "icmp":
            a = self._value(frame, inst.args[0])
            b = self._value(frame, inst.args[1])
            pred = inst.attrs["pred"]
            if pred in _UNSIGNED_PREDS:
                bits = self._operand_bits(frame, inst.args[0])
                frame.env[inst.res] = 1 if _icmp(pred, a, b, bits) else 0
            else:
                frame.env[inst.res] = 1 if _icmp(pred, a, b) else 0
        elif op == "fcmp":
            a = self._value(frame, inst.args[0])
            b = self._value(frame, inst.args[1])
            frame.env[inst.res] = 1 if _fcmp(inst.attrs["pred"], a, b) else 0
        elif op == "select":
            cond = self._value(frame, inst.args[0])
            frame.env[inst.res] = self._value(frame, inst.args[1 if cond else 2])
        elif op == "sext":
            # values are stored in signed form at their width, so widening
            # sign-extension is the identity on the Python integer
            frame.env[inst.res] = self._value(frame, inst.args[0])
        elif op == "zext":
            v = self._value(frame, inst.args[0])
            frame.env[inst.res] = _wrap(_to_unsigned(v, self._src_bits(frame, inst)), ty.bits)
        elif op == "trunc":
            v = self._value(frame, inst.args[0])
            frame.env[inst.res] = _wrap(v, ty.bits)
        elif op == "sitofp":
            frame.env[inst.res] = float(self._value(frame, inst.args[0]))
        elif op == "fptosi":
            frame.env[inst.res] = _wrap(int(self._value(frame, inst.args[0])), ty.bits)
        elif op == "fpext" or op == "fptrunc" or op == "bitcast":
            frame.env[inst.res] = self._value(frame, inst.args[0])
        elif op == "call":
            args = [self._value(frame, a) for a in inst.args]
            ret = self._call(inst.attrs["callee"], args, depth + 1)
            if inst.res is not None:
                frame.env[inst.res] = ret
        elif op == "output":
            self.outputs.append(self._value(frame, inst.args[0]))
        elif op == "vload":
            addr = self._value(frame, inst.args[0])
            esz = ty.elem.byte_size()
            frame.env[inst.res] = tuple(
                self.mem.get(addr + k * esz, 0) for k in range(ty.lanes)
            )
        elif op == "vstore":
            vals = self._value(frame, inst.args[0])
            addr = self._value(frame, inst.args[1])
            elem_ty = inst.attrs["elem_ty"]
            esz = elem_ty.byte_size()
            for k, v in enumerate(vals):
                self.mem[addr + k * esz] = v
        elif op == "broadcast":
            v = self._value(frame, inst.args[0])
            frame.env[inst.res] = (v,) * ty.lanes
        elif op == "extract":
            vec_val = self._value(frame, inst.args[0])
            idx = self._value(frame, inst.args[1])
            frame.env[inst.res] = vec_val[idx]
        elif op == "insert":
            vec_val = list(self._value(frame, inst.args[0]))
            scalar = self._value(frame, inst.args[1])
            idx = self._value(frame, inst.args[2])
            vec_val[idx] = scalar
            frame.env[inst.res] = tuple(vec_val)
        elif op == "reduce":
            vec_val = self._value(frame, inst.args[0])
            rop = inst.attrs.get("rop", "add")
            acc = vec_val[0]
            for v in vec_val[1:]:
                if ty.is_int:
                    acc = _int_bin(rop, acc, v, ty.bits)
                else:
                    acc = _float_bin("f" + rop if not rop.startswith("f") else rop, acc, v)
            frame.env[inst.res] = acc
        elif op == "memset":
            addr = self._value(frame, inst.args[0])
            val = self._value(frame, inst.args[1])
            count = self._value(frame, inst.args[2])
            esz = inst.attrs["elem_ty"].byte_size()
            for k in range(count):
                self.mem[addr + k * esz] = val
        elif op == "memcpy":
            dst = self._value(frame, inst.args[0])
            src = self._value(frame, inst.args[1])
            count = self._value(frame, inst.args[2])
            esz = inst.attrs["elem_ty"].byte_size()
            vals = [self.mem.get(src + k * esz, 0) for k in range(count)]
            for k, v in enumerate(vals):
                self.mem[dst + k * esz] = v
        else:
            raise InterpError(f"unknown opcode {op!r}")


_INT_BIN = frozenset(
    {"add", "sub", "mul", "sdiv", "srem", "udiv", "urem", "and", "or", "xor", "shl", "ashr", "lshr"}
)
_FLOAT_BIN = frozenset({"fadd", "fsub", "fmul", "fdiv"})


def _int_bin(op: str, a: int, b: int, bits: int) -> int:
    if op == "add":
        return _wrap(a + b, bits)
    if op == "sub":
        return _wrap(a - b, bits)
    if op == "mul":
        return _wrap(a * b, bits)
    if op == "sdiv":
        if b == 0:
            raise InterpError("sdiv by zero")
        q = abs(a) // abs(b)
        return _wrap(-q if (a < 0) != (b < 0) else q, bits)
    if op == "srem":
        if b == 0:
            raise InterpError("srem by zero")
        q = abs(a) // abs(b)
        q = -q if (a < 0) != (b < 0) else q
        return _wrap(a - q * b, bits)
    if op == "udiv":
        if b == 0:
            raise InterpError("udiv by zero")
        return _wrap(_to_unsigned(a, bits) // _to_unsigned(b, bits), bits)
    if op == "urem":
        if b == 0:
            raise InterpError("urem by zero")
        return _wrap(_to_unsigned(a, bits) % _to_unsigned(b, bits), bits)
    if op == "and":
        return _wrap(a & b, bits)
    if op == "or":
        return _wrap(a | b, bits)
    if op == "xor":
        return _wrap(a ^ b, bits)
    if op == "shl":
        return _wrap(a << (b % bits), bits)
    if op == "ashr":
        return _wrap(a >> (b % bits), bits)
    if op == "lshr":
        return _wrap(_to_unsigned(a, bits) >> (b % bits), bits)
    raise InterpError(f"unknown int op {op!r}")


def _float_bin(op: str, a: float, b: float) -> float:
    if op == "fadd":
        return a + b
    if op == "fsub":
        return a - b
    if op == "fmul":
        return a * b
    if op == "fdiv":
        if b == 0:
            raise InterpError("fdiv by zero")
        return a / b
    raise InterpError(f"unknown float op {op!r}")


_UNSIGNED_PREDS = frozenset({"ult", "ule", "ugt", "uge"})


def _icmp(pred: str, a, b, bits: int = 64) -> bool:
    if pred == "eq":
        return a == b
    if pred == "ne":
        return a != b
    if pred == "slt":
        return a < b
    if pred == "sle":
        return a <= b
    if pred == "sgt":
        return a > b
    if pred == "sge":
        return a >= b
    if pred in _UNSIGNED_PREDS:
        # values are stored signed at their declared width; unsigned
        # predicates compare the two's-complement reinterpretation
        if isinstance(a, tuple):
            a = tuple(_to_unsigned(x, bits) for x in a)
            b = tuple(_to_unsigned(x, bits) for x in b)
        else:
            a = _to_unsigned(a, bits)
            b = _to_unsigned(b, bits)
        if pred == "ult":
            return a < b
        if pred == "ule":
            return a <= b
        if pred == "ugt":
            return a > b
        return a >= b
    raise InterpError(f"unknown predicate {pred!r}")


_FCMP_PREDS = frozenset({"eq", "ne", "slt", "sle", "sgt", "sge"})


def _fcmp(pred: str, a, b) -> bool:
    """Float compare with ordered semantics: any NaN operand compares false."""
    if pred not in _FCMP_PREDS:
        if pred in _UNSIGNED_PREDS:
            raise InterpError(f"fcmp does not support predicate {pred!r}")
        raise InterpError(f"unknown predicate {pred!r}")
    if a != a or b != b:  # unordered: at least one NaN
        return False
    if pred == "eq":
        return a == b
    if pred == "ne":
        return a != b
    if pred == "slt":
        return a < b
    if pred == "sle":
        return a <= b
    if pred == "sgt":
        return a > b
    return a >= b


def _scalar_bits(ty: Optional[Type]) -> int:
    """Element bit width of a value of type ``ty`` (64 when unknown)."""
    if ty is None:
        return 64
    if ty.is_vec:
        return ty.elem.bits or 64
    return ty.bits or 64


def _build_bits_map(fn: Function) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for pname, pty in fn.params:
        out[pname] = _scalar_bits(pty)
    for inst in fn.instructions():
        if inst.res is not None:
            out[inst.res] = _scalar_bits(inst.ty)
    return out


def run_program(
    modules: List[Module], entry: str = "main", fuel: int = 2_000_000
) -> ExecutionResult:
    """Convenience wrapper: build an interpreter and run ``entry``."""
    return Interpreter(modules, fuel=fuel).run(entry)
