"""Execution substrate: IR interpreter, bytecode VM, cost models, profiler."""

from repro.machine.interp import ExecutionResult, Interpreter, run_program
from repro.machine.bytecode import BytecodeVM, compile_module, run_bytecode
from repro.machine.platforms import PLATFORMS, Platform, get_platform
from repro.machine.cost_model import estimate_cycles
from repro.machine.profiler import MEASURE_ENGINES, Profiler, FunctionProfile

__all__ = [
    "ExecutionResult",
    "Interpreter",
    "run_program",
    "BytecodeVM",
    "compile_module",
    "run_bytecode",
    "Platform",
    "PLATFORMS",
    "get_platform",
    "estimate_cycles",
    "MEASURE_ENGINES",
    "Profiler",
    "FunctionProfile",
]
