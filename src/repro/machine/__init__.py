"""Execution substrate: IR interpreter, platform cost models, noisy profiler."""

from repro.machine.interp import ExecutionResult, Interpreter, run_program
from repro.machine.platforms import PLATFORMS, Platform, get_platform
from repro.machine.cost_model import estimate_cycles
from repro.machine.profiler import Profiler, FunctionProfile

__all__ = [
    "ExecutionResult",
    "Interpreter",
    "run_program",
    "Platform",
    "PLATFORMS",
    "get_platform",
    "estimate_cycles",
    "Profiler",
    "FunctionProfile",
]
