"""Cycle-level cost model: (IR, execution profile, platform) -> cycles.

The interpreter supplies exact block execution counts; this module converts
them into simulated cycles using the platform's cost tables.  Vector
instructions wider than the platform's registers are charged per required
register split, so "legal but unprofitable" vectorisation (e.g. i64 lanes on
128-bit NEON) genuinely costs more — the mechanism behind the paper's
Fig 5.1 slowdown.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.compiler.ir import Const, Function, Instr, Module
from repro.machine.platforms import Platform

__all__ = ["instr_cycles", "block_cycles", "estimate_cycles", "static_code_size"]


def instr_cycles(inst: Instr, platform: Platform) -> float:
    """Cycles for one dynamic execution of ``inst``."""
    op = inst.op
    base = platform.op_cycles.get(op, 1.0)
    ty = inst.ty
    if op in ("memset", "memcpy"):
        count = inst.args[2]
        n = count.value if isinstance(count, Const) else 8
        # bulk ops amortise: per-element cost plus a fixed setup charge
        return 4.0 + base * n
    if op == "call":
        return platform.call_cost
    if op in ("br",):
        return platform.branch_cost
    splits = 1.0
    if ty.is_vec:
        width = ty.elem.bits * ty.lanes
        splits = max(1.0, math.ceil(width / platform.vector_bits))
    elif op in ("vstore",):
        pass
    if op == "vstore":
        # result type is VOID; infer width from the stored operand's lanes
        # via the elem_ty attribute (count unknown statically -> assume 4)
        elem = inst.attrs.get("elem_ty")
        if elem is not None:
            splits = max(1.0, math.ceil((elem.bits * 4) / platform.vector_bits))
    extra = platform.mem_cost if op in ("load", "store", "vload", "vstore") else 0.0
    return base * splits + extra


def block_cycles(fn: Function, platform: Platform) -> Dict[str, float]:
    """Static per-execution cost of each block in ``fn``."""
    out: Dict[str, float] = {}
    for name, blk in fn.blocks.items():
        total = 0.0
        for inst in blk.instrs:
            total += instr_cycles(inst, platform)
        out[name] = total
    return out


def static_code_size(modules: List[Module]) -> int:
    """Total instruction count, the proxy for I-cache footprint."""
    return sum(m.num_instrs() for m in modules)


def estimate_cycles(
    modules: List[Module],
    block_counts: Dict[Tuple[str, str, str], int],
    platform: Platform,
) -> float:
    """Simulated cycles for one execution described by ``block_counts``."""
    fn_index: Dict[Tuple[str, str], Function] = {}
    for mod in modules:
        for fn in mod.functions.values():
            fn_index[(mod.name, fn.name)] = fn
    cycles = 0.0
    cost_cache: Dict[Tuple[str, str], Dict[str, float]] = {}
    for (mod_name, fn_name, blk_name), count in block_counts.items():
        key = (mod_name, fn_name)
        fn = fn_index.get(key)
        if fn is None:
            continue
        costs = cost_cache.get(key)
        if costs is None:
            costs = block_cycles(fn, platform)
            cost_cache[key] = costs
        blk_cost = costs.get(blk_name)
        if blk_cost is None:
            continue
        cycles += blk_cost * count

    # I-cache pressure: hot code beyond the capacity knee pays a latency tax
    size = static_code_size(modules)
    if size > platform.icache_capacity:
        overflow = (size - platform.icache_capacity) / platform.icache_capacity
        cycles *= 1.0 + platform.icache_penalty * min(overflow, 3.0)
    return cycles
