"""Simulated evaluation platforms.

The paper evaluates on an ARM Cortex-A57 (Jetson TX2) and an AMD
Threadripper x86 machine (§5.4.2).  We model the properties that make the
*best pass sequence platform-dependent*: vector register width, relative
instruction costs, branch/call overheads, and an instruction-cache pressure
knee that penalises aggressive unrolling/inlining beyond a code-size budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.compiler.pass_manager import TargetInfo

__all__ = ["Platform", "PLATFORMS", "get_platform"]


@dataclass(frozen=True)
class Platform:
    """Cost parameters for one simulated CPU."""

    name: str
    #: cycles per scalar opcode class
    op_cycles: Dict[str, float]
    #: vector register width in bits (bounds profitable vector lanes)
    vector_bits: int
    #: extra cycles charged per taken branch / block transition
    branch_cost: float
    #: fixed call + return overhead in cycles
    call_cost: float
    #: cycles per memory op on top of the opcode cost
    mem_cost: float
    #: per-instruction penalty multiplier once hot code exceeds the I-cache
    icache_capacity: int
    icache_penalty: float
    #: simulated clock in GHz (cycles -> seconds)
    ghz: float
    #: multiplicative measurement noise (standard deviation)
    noise: float = 0.015

    def target_info(self) -> TargetInfo:
        """Profitability knobs exposed to the compiler's passes."""
        return TargetInfo(
            vector_bits=self.vector_bits,
            unroll_threshold=max(64, self.icache_capacity // 8),
            inline_threshold=45,
            min_vector_lanes=4,
        )


_BASE_COSTS: Dict[str, float] = {
    # arithmetic
    "add": 1.0, "sub": 1.0, "and": 1.0, "or": 1.0, "xor": 1.0,
    "shl": 1.0, "ashr": 1.0, "lshr": 1.0,
    "mul": 3.0, "sdiv": 20.0, "srem": 22.0, "udiv": 20.0, "urem": 22.0,
    "fadd": 3.0, "fsub": 3.0, "fmul": 4.0, "fdiv": 16.0,
    # comparisons / casts
    "icmp": 1.0, "fcmp": 2.0, "select": 1.0,
    "sext": 0.8, "zext": 0.8, "trunc": 0.5, "sitofp": 4.0, "fptosi": 4.0,
    "fpext": 1.0, "fptrunc": 1.0, "bitcast": 0.0,
    # memory
    "load": 3.0, "store": 2.0, "alloca": 1.0, "gep": 0.6, "gaddr": 0.4,
    "vload": 4.0, "vstore": 3.0,
    # vector
    "broadcast": 1.0, "extract": 1.0, "insert": 1.0, "reduce": 4.0,
    # bulk memory: cost is per element, charged via the count operand
    "memset": 0.6, "memcpy": 1.0,
    # control
    "phi": 0.0, "br": 0.5, "jmp": 0.3, "ret": 1.0, "call": 0.0,
    "output": 5.0, "unreachable": 0.0,
}


def _scaled(scale: Dict[str, float]) -> Dict[str, float]:
    out = dict(_BASE_COSTS)
    out.update(scale)
    return out


PLATFORMS: Dict[str, Platform] = {
    # in-order-ish ARM: 128-bit NEON, pricier memory and branches, small I$
    "arm-a57": Platform(
        name="arm-a57",
        op_cycles=_scaled({"load": 4.0, "store": 3.0, "mul": 4.0, "fmul": 5.0,
                           "branchy": 0.0, "reduce": 5.0}),
        vector_bits=128,
        branch_cost=1.6,
        call_cost=14.0,
        mem_cost=1.2,
        icache_capacity=1400,
        icache_penalty=0.35,
        ghz=2.0,
    ),
    # wide OoO x86: 256-bit AVX, cheap branches, large I$
    "amd-x86": Platform(
        name="amd-x86",
        op_cycles=_scaled({"load": 2.5, "store": 1.8, "mul": 3.0, "sdiv": 14.0,
                           "srem": 16.0, "reduce": 3.0}),
        vector_bits=256,
        branch_cost=0.9,
        call_cost=9.0,
        mem_cost=0.8,
        icache_capacity=4200,
        icache_penalty=0.18,
        ghz=3.4,
    ),
}


def get_platform(name: str) -> Platform:
    """Look up a simulated platform by name."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(f"unknown platform {name!r}; have {sorted(PLATFORMS)}") from None
