"""Plain-text reporting utilities for tuning results.

Terminal-friendly rendering of convergence curves and leaderboards so the
CLI and examples can show search progress without plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.result import TuningResult

__all__ = ["ascii_curve", "leaderboard", "stats_table", "summarize"]


def ascii_curve(
    results: Dict[str, TuningResult],
    width: int = 60,
    height: int = 12,
    value: str = "speedup",
) -> str:
    """Render best-so-far convergence curves as ASCII art.

    ``value`` is ``"speedup"`` (over -O3, higher is better) or ``"runtime"``.
    One letter per tuner, legend appended.
    """
    if not results:
        return "(no results)"
    series: Dict[str, np.ndarray] = {}
    for name, res in results.items():
        hist = res.best_history
        if value == "speedup":
            series[name] = res.o3_runtime / hist
        else:
            series[name] = hist
    n = max(len(s) for s in series.values())
    lo = min(float(s.min()) for s in series.values())
    hi = max(float(s.max()) for s in series.values())
    if hi - lo < 1e-12:
        hi = lo + 1e-12
    grid = [[" "] * width for _ in range(height)]
    marks = {}
    for idx, (name, s) in enumerate(sorted(series.items())):
        ch = chr(ord("A") + idx % 26)
        marks[ch] = name
        for col in range(width):
            i = min(len(s) - 1, int(col / (width - 1) * (n - 1)))
            v = float(s[min(i, len(s) - 1)])
            row = int((v - lo) / (hi - lo) * (height - 1))
            cell = grid[height - 1 - row][col]
            grid[height - 1 - row][col] = ch if cell in (" ", ch) else "*"
    lines = []
    for r, row in enumerate(grid):
        label = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{label:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"1 ... {n} measurements")
    for ch, name in marks.items():
        lines.append(f"   {ch} = {name}")
    return "\n".join(lines)


def leaderboard(results: Dict[str, TuningResult], at: Optional[int] = None) -> str:
    """Sorted table of speedups over -O3 (optionally at a budget cut)."""
    rows = sorted(
        ((name, res.speedup_over_o3(at=at)) for name, res in results.items()),
        key=lambda kv: -kv[1],
    )
    width = max((len(n) for n, _ in rows), default=6) + 2
    out = [f"{'tuner':{width}s}{'speedup over -O3':>18s}"]
    for name, sp in rows:
        out.append(f"{name:{width}s}{sp:>17.3f}x")
    return "\n".join(out)


def stats_table(relevance: Sequence, k: int = 10) -> str:
    """Render a (statistic, relevance) ranking like Table 5.5."""
    out = [f"{'rank':6s}{'statistic':46s}{'relevance':>10s}"]
    for i, (key, rel) in enumerate(list(relevance)[:k], 1):
        out.append(f"{i:<6d}{key:46s}{rel:>10.3f}")
    return "\n".join(out)


def summarize(result: TuningResult) -> str:
    """One-paragraph human summary of a tuning run."""
    n = len(result.measurements)
    sp = result.speedup_over_o3()
    modules = sorted({m.module for m in result.measurements} - {"all"})
    incorrect = sum(1 for m in result.measurements if not m.correct)
    lines = [
        f"{result.tuner} on {result.program}: {n} measurements, "
        f"best {result.best_runtime * 1e6:.2f} us ({sp:.3f}x over -O3).",
        f"modules touched: {', '.join(modules) if modules else '(whole program)'};"
        f" {incorrect} binaries failed differential testing.",
    ]
    if "dedup_hits" in result.extras:
        lines.append(
            f"dedup avoided {result.extras['dedup_hits']} redundant measurements."
        )
    if result.extras.get("top_statistics"):
        lines.append(
            "most speedup-relevant statistics: "
            + ", ".join(result.extras["top_statistics"][:3])
        )
    return "\n".join(lines)
