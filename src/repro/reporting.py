"""Plain-text reporting utilities for tuning results.

Terminal-friendly rendering of convergence curves, leaderboards, and —
for traced runs — per-phase time breakdowns (:func:`span_table`) and a
chronological :func:`timeline`, so the CLI and examples can show search
progress and "where did the time go" (the Fig 5.12 story) without
plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.result import TuningResult

__all__ = [
    "ascii_curve",
    "ascii_series",
    "leaderboard",
    "pass_attribution_table",
    "pass_span_summary",
    "span_table",
    "stats_table",
    "summarize",
    "timeline",
]


def ascii_curve(
    results: Dict[str, TuningResult],
    width: int = 60,
    height: int = 12,
    value: str = "speedup",
) -> str:
    """Render best-so-far convergence curves as ASCII art.

    ``value`` is ``"speedup"`` (over -O3, higher is better) or ``"runtime"``.
    One letter per tuner, legend appended.
    """
    if not results:
        return "(no results)"
    series: Dict[str, np.ndarray] = {}
    for name, res in results.items():
        # best-history entries can be the `inf` infeasibility sentinel (or a
        # penalty runtime) while no feasible binary has been found yet; in
        # speedup mode those would map to a garbage 0.0 and wreck the scale,
        # so non-finite runtimes become gaps instead of points
        hist = np.asarray(res.best_history, dtype=float)
        vals = np.full(hist.shape, np.nan)
        finite = np.isfinite(hist)
        if value == "speedup":
            vals[finite] = res.o3_runtime / hist[finite]
        else:
            vals[finite] = hist[finite]
        series[name] = vals
    n = max(len(s) for s in series.values())
    finite_all = np.concatenate([s[np.isfinite(s)] for s in series.values()])
    if finite_all.size == 0:
        return "(no feasible measurements to plot)"
    lo = float(finite_all.min())
    hi = float(finite_all.max())
    if hi - lo < 1e-12:
        hi = lo + 1e-12
    grid = [[" "] * width for _ in range(height)]
    marks = {}
    for idx, (name, s) in enumerate(sorted(series.items())):
        ch = chr(ord("A") + idx % 26)
        marks[ch] = name
        for col in range(width):
            i = min(len(s) - 1, int(col / (width - 1) * (n - 1)))
            v = float(s[min(i, len(s) - 1)])
            if not np.isfinite(v):
                continue
            row = int((v - lo) / (hi - lo) * (height - 1))
            cell = grid[height - 1 - row][col]
            grid[height - 1 - row][col] = ch if cell in (" ", ch) else "*"
    lines = []
    for r, row in enumerate(grid):
        label = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{label:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"1 ... {n} measurements")
    for ch, name in marks.items():
        lines.append(f"   {ch} = {name}")
    return "\n".join(lines)


def ascii_series(
    values: Sequence[float],
    width: int = 58,
    height: int = 9,
    unit: str = "slots",
) -> List[str]:
    """One-series ASCII curve; non-finite values become gaps.

    The single-run counterpart of :func:`ascii_curve`, shared with the live
    ``repro watch`` dashboard, which streams a best-so-far history that can
    still contain the ``inf`` infeasibility sentinel.
    """
    finite = [(i, v) for i, v in enumerate(values) if np.isfinite(v)]
    if not finite:
        return ["(no feasible measurements yet)"]
    lo = min(v for _, v in finite)
    hi = max(v for _, v in finite)
    if hi - lo < 1e-12:
        hi = lo + 1e-12
    grid = [[" "] * width for _ in range(height)]
    n = len(values)
    for col in range(width):
        i = min(n - 1, int(col / max(1, width - 1) * (n - 1)))
        v = float(values[i])
        if not np.isfinite(v):
            continue
        row = int((v - lo) / (hi - lo) * (height - 1))
        grid[height - 1 - row][col] = "*"
    out = []
    for r, row in enumerate(grid):
        label = hi - (hi - lo) * r / (height - 1)
        out.append(f"{label:10.3f} |{''.join(row)}")
    out.append(" " * 11 + "+" + "-" * width)
    out.append(" " * 12 + f"1 ... {n} {unit}")
    return out


def leaderboard(results: Dict[str, TuningResult], at: Optional[int] = None) -> str:
    """Sorted table of speedups over -O3 (optionally at a budget cut)."""
    rows = sorted(
        ((name, res.speedup_over_o3(at=at)) for name, res in results.items()),
        key=lambda kv: -kv[1],
    )
    width = max((len(n) for n, _ in rows), default=6) + 2
    out = [f"{'tuner':{width}s}{'speedup over -O3':>18s}"]
    for name, sp in rows:
        out.append(f"{name:{width}s}{sp:>17.3f}x")
    return "\n".join(out)


def stats_table(relevance: Sequence, k: int = 10) -> str:
    """Render a (statistic, relevance) ranking like Table 5.5."""
    out = [f"{'rank':6s}{'statistic':46s}{'relevance':>10s}"]
    for i, (key, rel) in enumerate(list(relevance)[:k], 1):
        out.append(f"{i:<6d}{key:46s}{rel:>10.3f}")
    return "\n".join(out)


def summarize(result: TuningResult) -> str:
    """One-paragraph human summary of a tuning run."""
    n = len(result.measurements)
    sp = result.speedup_over_o3()
    modules = sorted({m.module for m in result.measurements} - {"all"})
    incorrect = sum(1 for m in result.measurements if not m.correct)
    lines = [
        f"{result.tuner} on {result.program}: {n} measurements, "
        f"best {result.best_runtime * 1e6:.2f} us ({sp:.3f}x over -O3).",
        f"modules touched: {', '.join(modules) if modules else '(whole program)'};"
        f" {incorrect} binaries failed differential testing.",
    ]
    if "dedup_hits" in result.extras:
        lines.append(
            f"dedup avoided {result.extras['dedup_hits']} redundant measurements."
        )
    if result.extras.get("top_statistics"):
        lines.append(
            "most speedup-relevant statistics: "
            + ", ".join(result.extras["top_statistics"][:3])
        )
    return "\n".join(lines)


def pass_attribution_table(rows: Sequence[Dict]) -> str:
    """Render ``repro explain``'s per-pass attribution rows.

    Each row is a :meth:`~repro.obs.explain.PassAttribution.to_dict` dict:
    position, pass name, compile wall, the ``changed`` flag, the net
    instruction delta (from ``ir_delta``), the leave-one-out marginal
    runtime contribution, and a ``no-op`` verdict for passes whose removal
    leaves the final IR identical."""
    if not rows:
        return "(no passes)"
    out = [
        f"{'#':>3s}  {'pass':22s}{'wall ms':>9s}{'changed':>9s}"
        f"{'d-instr':>9s}{'marginal us':>13s}  verdict"
    ]
    for r in rows:
        d_instr = (r.get("ir_delta") or {}).get("instrs", 0)
        verdict = "no-op" if r.get("noop") else ""
        out.append(
            f"{r.get('index', 0):>3d}  {str(r.get('pass', '?')):22s}"
            f"{float(r.get('wall', 0.0)) * 1e3:>9.3f}"
            f"{'yes' if r.get('changed') else 'no':>9s}"
            f"{d_instr:>+9d}"
            f"{float(r.get('marginal_seconds', 0.0)) * 1e6:>13.3f}"
            f"  {verdict}"
        )
    return "\n".join(line.rstrip() for line in out)


def pass_span_summary(events, top: Optional[int] = None) -> str:
    """Aggregate ``pass.run`` spans from a traced tune by pass name.

    The events-only counterpart of :func:`pass_attribution_table`: when a
    run was traced with ``--pipeline-trace`` but never explained, this
    still shows which passes ran, how often they changed the IR, and what
    they did to instruction counts — straight from ``events.jsonl``."""
    agg: Dict[str, Dict[str, float]] = {}
    for e in _span_events(events):
        if e.get("name") != "pass.run":
            continue
        attrs = e.get("attrs") or {}
        name = str(attrs.get("pass", "?"))
        row = agg.setdefault(
            name, {"n": 0, "wall": 0.0, "changed": 0, "d_instr": 0}
        )
        row["n"] += 1
        row["wall"] += float(e.get("wall", 0.0))
        row["changed"] += 1 if attrs.get("changed") else 0
        row["d_instr"] += int((attrs.get("ir_delta") or {}).get("instrs", 0))
    if not agg:
        return "(no pass.run spans; tune with --pipeline-trace)"
    ranked = sorted(agg.items(), key=lambda kv: -kv[1]["wall"])
    if top is not None:
        ranked = ranked[:top]
    out = [
        f"{'pass':22s}{'runs':>7s}{'changed':>9s}{'wall ms':>10s}{'d-instr':>9s}"
    ]
    for name, row in ranked:
        out.append(
            f"{name:22s}{int(row['n']):>7d}{int(row['changed']):>9d}"
            f"{row['wall'] * 1e3:>10.2f}{int(row['d_instr']):>+9d}"
        )
    return "\n".join(out)


# -- trace rendering (repro.obs) ------------------------------------------------


def _span_events(events) -> List[Dict]:
    """Normalise a Tracer, a RunRecorder, or a raw event list to span dicts."""
    if hasattr(events, "tracer"):  # RunRecorder
        events = events.tracer
    if hasattr(events, "events"):  # Tracer
        events = events.events()
    return [e for e in events if e.get("type") == "span"]


def span_table(events, top: Optional[int] = None) -> str:
    """Per-phase time breakdown of a traced run (the Fig 5.12 view).

    ``events`` is a :class:`~repro.obs.trace.Tracer`, a
    :class:`~repro.obs.recorder.RunRecorder`, or a list of event dicts
    (e.g. from :func:`repro.obs.read_events`).  Aggregates spans by name:
    call count, total/mean/p50/max wall time, total CPU time, and the
    share of traced time — percentages are taken against the sum of
    *top-level* spans only, so nested spans (``compile_batch`` inside
    ``propose``) are not double counted in the denominator.

    A crashed or killed run can leave *partial* spans — records missing
    their ``wall``/``cpu`` timings (an ``events.jsonl`` cut off mid-run).
    Those rows render with a ``*`` marker (count of unclosed spans) and
    contribute nothing to the timings instead of raising.
    """
    spans = _span_events(events)
    if not spans:
        return "(no spans recorded)"
    agg: Dict[str, List] = {}
    partial = False
    for e in spans:
        row = agg.setdefault(e["name"], [0, 0.0, 0.0, [], 0])
        row[0] += 1
        wall = e.get("wall")
        if wall is None:  # unclosed span from an interrupted run
            row[4] += 1
            partial = True
            continue
        row[1] += wall
        row[2] += e.get("cpu", 0.0)
        row[3].append(wall)
    total = sum(
        e.get("wall", 0.0) or 0.0 for e in spans if e.get("depth", 0) == 0
    )
    if total <= 0.0:
        total = sum(e.get("wall", 0.0) or 0.0 for e in spans) or 1e-12
    rows = sorted(agg.items(), key=lambda kv: -kv[1][1])
    if top is not None:
        rows = rows[:top]
    name_w = max(12, max(len(n) for n, _ in rows) + 3)
    out = [
        f"{'span':{name_w}s}{'count':>7s}{'total s':>10s}{'%':>7s}"
        f"{'mean ms':>10s}{'p50 ms':>10s}{'max ms':>10s}{'cpu s':>9s}"
    ]
    for name, (count, wall, cpu, walls, unclosed) in rows:
        label = f"{name}*" if unclosed else name
        if not walls:
            out.append(f"{label:{name_w}s}{count:>7d}{'?':>10s}")
            continue
        walls.sort()
        p50 = walls[len(walls) // 2]
        n_timed = len(walls)
        out.append(
            f"{label:{name_w}s}{count:>7d}{wall:>10.3f}{100 * wall / total:>6.1f}%"
            f"{1e3 * wall / n_timed:>10.2f}{1e3 * p50:>10.2f}"
            f"{1e3 * walls[-1]:>10.2f}{cpu:>9.3f}"
        )
    out.append(f"{'(traced top-level time)':{name_w}s}{'':>7s}{total:>10.3f}")
    if partial:
        out.append("* span never closed (interrupted run); timings exclude it")
    return "\n".join(out)


def timeline(
    events,
    width: int = 50,
    max_rows: int = 40,
    max_depth: int = 1,
) -> str:
    """Chronological view of a traced run: one row per span, with an
    ASCII bar locating it on the run's wall clock.

    Spans deeper than ``max_depth`` are hidden (the default shows the
    tuner phases and the compile batches directly under them); output is
    truncated to ``max_rows`` rows with an ellipsis count.  Partial spans
    (no ``wall`` — the run was interrupted mid-span) render with a ``*``
    marker and a bar running to the end of the known timeline.
    """
    spans = [
        e
        for e in _span_events(events)
        if e.get("depth", 0) <= max_depth and e.get("ts") is not None
    ]
    if not spans:
        return "(no spans recorded)"
    spans.sort(key=lambda e: e["ts"])
    t0 = min(e["ts"] for e in spans)
    t1 = max(e["ts"] + (e.get("wall") or 0.0) for e in spans)
    extent = max(t1 - t0, 1e-12)
    name_w = max(14, max(len(e["name"]) for e in spans) + 2 * max_depth + 3)
    out = [f"{'ts':>9s}  {'span':{name_w}s}|{'-' * width}|"]
    shown = spans[:max_rows]
    for e in shown:
        wall = e.get("wall")
        # unclosed span: assume it ran until the last thing we heard of
        shown_wall = wall if wall is not None else max(t1 - e["ts"], 0.0)
        start = int((e["ts"] - t0) / extent * width)
        length = max(1, round(shown_wall / extent * width))
        start = min(start, width - 1)
        length = min(length, width - start)
        bar = " " * start + "#" * length + " " * (width - start - length)
        label = "  " * e.get("depth", 0) + e["name"] + ("" if wall is not None else "*")
        dur = f"{1e3 * wall:.1f} ms" if wall is not None else "? (unclosed)"
        out.append(f"{e['ts'] - t0:>8.3f}s  {label:{name_w}s}|{bar}| {dur}")
    if len(spans) > max_rows:
        out.append(f"... ({len(spans) - max_rows} more spans)")
    return "\n".join(out)
