"""Live streaming of recorded runs: incremental tailing + ``repro watch``.

Everything a tune writes is streamed durably as it happens — trace events
to ``events.jsonl`` (flushed per event) and measurement verdicts to the
write-ahead ``wal.jsonl`` (fsync'd per record).  This module reads those
streams *incrementally* and keeps a rolling picture of the run:

* :class:`RunWatcher` — owns the byte offsets into both streams
  (:func:`repro.obs.recorder.tail_jsonl` semantics: torn tails are left
  unconsumed, so polling a live writer is race-free) and folds every new
  record into a :class:`WatchState`;
* :func:`render` — the terminal dashboard: progress, incumbent curve,
  cache/failure/quarantine/GP-refit counters, ETA;
* :func:`watch` — the poll loop behind ``repro watch RUN_DIR``.

The same code path serves three run shapes:

* a **live** run — offsets advance as the writer appends; a torn tail is
  simply not-yet-data;
* a **killed** run — the streams stop growing, ``result.json`` never
  appears, and the dashboard reports the WAL-proven progress plus the
  exact ``--resume`` command;
* a **resumed** run — the WAL is one continuous log across processes
  (replayed measurements append nothing), while ``events.jsonl``'s
  relative ``ts`` clock restarts per process; ``resume_epoch`` marker
  events let :func:`normalize_epochs` splice the epochs into one
  monotonic timeline.

No run-side cooperation is needed beyond the artifacts every traced tune
already writes; the watcher never holds the files open between polls, so
it can outlive (and predate) the writer.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.obs.recorder import tail_jsonl

__all__ = ["RunWatcher", "WatchState", "normalize_epochs", "render", "watch"]


def normalize_epochs(events: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Splice per-process event streams into one monotonic timeline.

    Every recorder process stamps events with ``ts`` relative to its own
    epoch, so a resumed run's stream jumps backwards at the seam.  Each
    ``resume_epoch`` marker re-anchors the offset at the latest span end
    seen so far; events after it are shifted forward.  Events whose ``ts``
    is already monotonic are returned unchanged (same dicts, no copies) —
    the common single-epoch case costs one pass and no allocation.
    """
    offset = 0.0
    max_end = 0.0
    shifted: List[Dict[str, object]] = []
    any_shift = False
    for e in events:
        if e.get("name") == "resume_epoch":
            offset = max_end
            any_shift = True
            continue  # the marker itself carries no timing
        ts = e.get("ts")
        if ts is None:
            shifted.append(e)
            continue
        if offset:
            e = dict(e, ts=ts + offset)
            ts = e["ts"]
        shifted.append(e)
        max_end = max(max_end, ts + (e.get("wall") or 0.0))
    return shifted if any_shift else [e for e in events if e.get("name") != "resume_epoch"]


@dataclass
class WatchState:
    """One refresh's rolling view of a run directory."""

    path: Path
    manifest: Dict[str, object] = field(default_factory=dict)
    #: measurements proven durable by the WAL (continuous across resumes)
    n_measurements: int = 0
    #: budget slots the tuner has recorded (<= n_measurements)
    n_slots: int = 0
    #: best-so-far runtime after each slot (the incumbent curve)
    best_history: List[float] = field(default_factory=list)
    #: last slot's measured runtime (inf when infeasible)
    last_runtime: float = math.inf
    #: counts of non-ok slot statuses, e.g. {"crash": 2}
    failures: Dict[str, int] = field(default_factory=dict)
    #: -O3 anchor runtime from the WAL anchor record (None before it lands)
    o3_runtime: Optional[float] = None
    #: flattened counters, freshest source wins (metrics.json > events)
    counters: Dict[str, float] = field(default_factory=dict)
    #: monotonic traced seconds (epoch-normalized last span end)
    elapsed: float = 0.0
    #: recorder epoch currently writing (1 = never resumed)
    epoch: int = 1
    #: total events parsed so far / permanently malformed lines
    n_events: int = 0
    n_malformed: int = 0
    finished: bool = False
    interrupted: bool = False
    result: Dict[str, object] = field(default_factory=dict)
    #: seconds since the WAL or event stream last grew (None: no file yet)
    stale_seconds: Optional[float] = None

    @property
    def budget(self) -> Optional[int]:
        b = self.manifest.get("budget")
        return int(b) if isinstance(b, (int, float)) else None

    @property
    def best_runtime(self) -> Optional[float]:
        finite = [v for v in self.best_history if math.isfinite(v)]
        return min(finite) if finite else None

    @property
    def eta_seconds(self) -> Optional[float]:
        """Remaining-budget estimate at the observed slot rate.

        Right after a resume the estimate runs hot (replay re-covers old
        slots in near-zero traced time) and converges as live slots
        accumulate."""
        budget = self.budget
        if budget is None or self.n_measurements <= 0 or self.elapsed <= 0:
            return None
        remaining = max(0, budget - self.n_measurements)
        return remaining * (self.elapsed / self.n_measurements)

    @property
    def resumable(self) -> bool:
        return (
            not self.finished
            and self.n_measurements > 0
            and self.manifest.get("command") == "tune"
        )

    def speedup(self, runtime: Optional[float]) -> Optional[float]:
        if runtime is None or not self.o3_runtime:
            return None
        return self.o3_runtime / runtime if runtime > 0 else None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (``repro watch --json``).

        Everything scripts need to poll a run without scraping the
        dashboard: progress, incumbent, failures, staleness, and the
        derived quantities (``best_runtime``, ``speedup``, ``eta_seconds``,
        ``resumable``).  Non-finite floats are stringified the way the
        recorder serialises them (``"inf"``/``"nan"``), so the output is
        strict JSON."""

        def _num(v):
            if isinstance(v, float) and not math.isfinite(v):
                return repr(v)
            return v

        return {
            "path": str(self.path),
            "manifest": dict(self.manifest),
            "n_measurements": self.n_measurements,
            "n_slots": self.n_slots,
            "budget": self.budget,
            "best_runtime": _num(self.best_runtime),
            "best_history": [_num(v) for v in self.best_history],
            "last_runtime": _num(self.last_runtime),
            "speedup_vs_o3": _num(self.speedup(self.best_runtime)),
            "o3_runtime": _num(self.o3_runtime),
            "failures": dict(self.failures),
            "counters": {k: _num(v) for k, v in self.counters.items()},
            "elapsed": self.elapsed,
            "eta_seconds": _num(self.eta_seconds),
            "epoch": self.epoch,
            "n_events": self.n_events,
            "n_malformed": self.n_malformed,
            "finished": self.finished,
            "interrupted": self.interrupted,
            "resumable": self.resumable,
            "stale_seconds": self.stale_seconds,
        }


class RunWatcher:
    """Incremental reader of one run directory.

    Construct once, call :meth:`refresh` per poll: each call tails only
    the bytes appended since the previous one and folds them into the
    retained :class:`WatchState`.  The watcher is tolerant of every
    not-yet state — missing directory, missing streams, torn tails — so
    it can be pointed at a run directory before the tune starts.
    """

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.path = Path(run_dir)
        self.state = WatchState(path=self.path)
        self._events_offset = 0
        self._wal_offset = 0
        self._manifest_loaded = False

    # -- one poll ---------------------------------------------------------------
    def refresh(self) -> WatchState:
        st = self.state
        if not self._manifest_loaded:
            st.manifest = self._load_json(self.path / "manifest.json")
            self._manifest_loaded = bool(st.manifest)
        self._consume_wal()
        self._consume_events()
        self._read_result()
        st.stale_seconds = self._staleness()
        return st

    # -- stream consumption -----------------------------------------------------
    def _consume_wal(self) -> None:
        records, self._wal_offset, _ = tail_jsonl(
            self.path / "wal.jsonl", offset=self._wal_offset
        )
        st = self.state
        for rec in records:
            kind = rec.get("type")
            if kind == "measure":
                st.n_measurements += 1
            elif kind == "slot":
                st.n_slots += 1
                runtime = rec.get("runtime")
                try:
                    runtime = float(runtime)
                except (TypeError, ValueError):
                    runtime = math.inf
                st.last_runtime = runtime
                prev = st.best_history[-1] if st.best_history else math.inf
                st.best_history.append(min(prev, runtime))
                status = str(rec.get("status") or "")
                if status and status != "ok":
                    st.failures[status] = st.failures.get(status, 0) + 1
            elif kind == "anchor":
                o3 = rec.get("o3_runtime")
                if isinstance(o3, (int, float)) and o3 > 0:
                    st.o3_runtime = float(o3)

    def _consume_events(self) -> None:
        events, self._events_offset, malformed = tail_jsonl(
            self.path / "events.jsonl", offset=self._events_offset
        )
        st = self.state
        st.n_malformed += malformed
        for e in normalize_epochs(events):
            st.n_events += 1
            ts = e.get("ts")
            if ts is not None:
                st.elapsed = max(st.elapsed, float(ts) + (e.get("wall") or 0.0))
            if e.get("name") == "metrics":
                attrs = e.get("attrs") or {}
                flat = attrs.get("metrics")
                if isinstance(flat, dict):
                    st.counters.update(flat)
        # the raw (pre-splice) stream carries the epoch markers
        for e in events:
            if e.get("name") == "resume_epoch":
                epoch = e.get("epoch")
                if isinstance(epoch, (int, float)):
                    st.epoch = max(st.epoch, int(epoch))

    def _read_result(self) -> None:
        st = self.state
        if st.finished:
            return
        result = self._load_json(self.path / "result.json")
        if result:
            st.finished = True
            st.result = result
            extras = result.get("extras") or {}
            st.interrupted = bool(extras.get("interrupted"))
            metrics = self._load_json(self.path / "metrics.json")
            if metrics:
                # a finished run's snapshot beats any mid-run metrics
                # event; resumed runs expose merged totals in cumulative
                source = metrics.get("cumulative") or metrics
                st.counters.update(source.get("counters") or {})
                st.epoch = max(st.epoch, int(metrics.get("epoch") or 1))

    # -- helpers ----------------------------------------------------------------
    @staticmethod
    def _load_json(path: Path) -> Dict[str, object]:
        try:
            with open(path) as fh:
                data = json.load(fh)
            return data if isinstance(data, dict) else {}
        except (OSError, json.JSONDecodeError):
            return {}

    def _staleness(self) -> Optional[float]:
        newest = None
        for name in ("wal.jsonl", "events.jsonl"):
            try:
                mtime = (self.path / name).stat().st_mtime
            except OSError:
                continue
            newest = mtime if newest is None else max(newest, mtime)
        return None if newest is None else max(0.0, time.time() - newest)


# -- rendering -------------------------------------------------------------------


def _fmt_seconds(s: Optional[float]) -> str:
    if s is None or not math.isfinite(s):
        return "?"
    if s < 120:
        return f"{s:.0f}s"
    return f"{s / 60:.1f}m"


def _progress_bar(done: int, total: Optional[int], width: int = 30) -> str:
    if not total:
        return f"[{'?' * width}] {done} measurements"
    frac = min(1.0, done / total)
    fill = int(round(frac * width))
    return f"[{'#' * fill}{'.' * (width - fill)}] {done}/{total}"


def _curve(values: List[float], width: int = 58, height: int = 9) -> List[str]:
    """One-series best-so-far ASCII curve (finite values only)."""
    from repro.reporting import ascii_series

    return ascii_series(values, width=width, height=height)


def _counter(counters: Dict[str, float], name: str) -> float:
    v = counters.get(name)
    try:
        return float(v)
    except (TypeError, ValueError):
        return 0.0


def render(state: WatchState, width: int = 58) -> str:
    """The dashboard frame for one :class:`WatchState`."""
    man = state.manifest
    head = (
        f"watch {state.path.name} · {man.get('program', '?')} · "
        f"{man.get('tuner', '?')} · seed {man.get('seed', '?')}"
    )
    if state.epoch > 1:
        head += f" · epoch {state.epoch} (resumed)"
    lines = [head]

    if state.finished and not state.interrupted:
        status = "FINISHED"
    elif state.finished:
        status = "STOPPED (graceful, resumable)"
    elif state.n_measurements == 0 and state.n_events == 0:
        status = "WAITING (no artifacts yet)"
    elif state.stale_seconds is not None and state.stale_seconds > 15.0:
        status = f"STALLED? (no writes for {_fmt_seconds(state.stale_seconds)})"
    else:
        status = "RUNNING"
    lines.append(
        f"state: {status} | {_progress_bar(state.n_measurements, state.budget)}"
        f" | elapsed {_fmt_seconds(state.elapsed)}"
        + (
            f" | eta ~{_fmt_seconds(state.eta_seconds)}"
            if not state.finished and state.eta_seconds is not None
            else ""
        )
    )

    best = state.best_runtime
    if best is not None:
        sp = state.speedup(best)
        last = state.last_runtime
        lines.append(
            f"best: {best * 1e6:.2f} us"
            + (f" ({sp:.3f}x over -O3)" if sp is not None else "")
            + (
                f" | last: {last * 1e6:.2f} us"
                if math.isfinite(last)
                else " | last: infeasible"
            )
        )
        # incumbent curve: speedup when the anchor landed, runtime otherwise
        if state.o3_runtime:
            values = [
                state.o3_runtime / v if math.isfinite(v) and v > 0 else math.nan
                for v in state.best_history
            ]
        else:
            values = [
                v * 1e6 if math.isfinite(v) else math.nan
                for v in state.best_history
            ]
        lines.extend(_curve(values, width=width))
    else:
        lines.append("best: (no feasible measurement yet)")

    c = state.counters
    hits = _counter(c, "engine.cache_hits")
    misses = _counter(c, "engine.cache_misses")
    cache = f"{hits / (hits + misses):.0%} cache hits" if hits + misses else "cache ?"
    refits = int(_counter(c, "citroen.gp.refits"))
    extends = int(_counter(c, "citroen.gp.extends"))
    n_failures = sum(state.failures.values())
    fail_detail = (
        " (" + ", ".join(f"{k} {v}" for k, v in sorted(state.failures.items())) + ")"
        if state.failures
        else ""
    )
    lines.append(
        f"counters: {cache} · {n_failures} infeasible{fail_detail} · "
        f"{int(_counter(c, 'engine.quarantine_hits'))} quarantine hits · "
        f"gp {refits} refits / {extends} extends"
    )
    lines.append(
        f"streams: wal {state.n_measurements} measurements durable · "
        f"events {state.n_events}"
        + (f" ({state.n_malformed} torn)" if state.n_malformed else "")
    )
    if not state.finished and state.resumable:
        lines.append(f"resume: python -m repro tune --resume {state.path}")
    if state.finished:
        res = state.result
        n = res.get("n_measurements", state.n_measurements)
        lines.append(
            f"result: {n} measurements recorded — "
            f"python -m repro analyze {state.path}"
        )
    return "\n".join(lines)


# -- the poll loop ----------------------------------------------------------------


def watch(
    run_dir: Union[str, Path],
    interval: float = 1.0,
    once: bool = False,
    max_frames: Optional[int] = None,
    out: Callable[[str], None] = print,
    clear: bool = False,
) -> WatchState:
    """Follow a run directory until its run finishes (or forever).

    ``once=True`` renders a single frame and returns — the scriptable
    mode CI uses.  ``max_frames`` bounds the loop for tests.  ``clear``
    prepends an ANSI home+clear so a terminal shows a refreshing
    dashboard rather than a scroll.  Returns the final state.
    """
    watcher = RunWatcher(run_dir)
    frames = 0
    while True:
        state = watcher.refresh()
        frame = render(state)
        if clear:
            frame = "\x1b[H\x1b[2J" + frame
        out(frame)
        frames += 1
        if once or state.finished:
            return state
        if max_frames is not None and frames >= max_frames:
            return state
        time.sleep(max(0.05, float(interval)))
