"""``logging`` setup for the CLI and library.

The CLI historically used bare ``print()``; :func:`configure` replaces
that with the stdlib ``logging`` stack while keeping stdout output
**byte-compatible** at the default level: the handler formats records as
``"%(message)s"`` and writes to whatever ``sys.stdout`` currently is
(resolved per record, so pytest's ``capsys`` redirection keeps working).

* ``configure("info")`` — the default; ``log.info(...)`` lines are
  byte-identical to the ``print(...)`` calls they replaced.
* ``configure("debug")`` — adds the library's diagnostic chatter
  (per-iteration metrics, engine events) prefixed with the logger name.
* ``configure("warning")`` — silences the normal report entirely.

Library modules grab ``get_logger(__name__)`` and never configure
handlers themselves — an embedding application keeps full control.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["configure", "get_logger"]

ROOT_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class _StdoutHandler(logging.Handler):
    """Writes to the *current* ``sys.stdout`` (not a snapshot of it)."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stdout.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - mirrors logging's own policy
            self.handleError(record)


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The package logger, or a child of it."""
    if not name or name == ROOT_NAME:
        return logging.getLogger(ROOT_NAME)
    if not name.startswith(ROOT_NAME + "."):
        name = f"{ROOT_NAME}.{name}"
    return logging.getLogger(name)


def configure(level: str = "info") -> logging.Logger:
    """Install (or re-level) the stdout handler on the package logger.

    Idempotent: repeated calls adjust the level of the existing handler
    instead of stacking duplicates.  At ``info`` the format is the bare
    message (print-compatible); at ``debug`` records carry their logger
    name so library chatter is attributable.
    """
    if level not in _LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}"
        )
    logger = logging.getLogger(ROOT_NAME)
    logger.setLevel(_LEVELS[level])
    logger.propagate = False
    handler = next(
        (h for h in logger.handlers if isinstance(h, _StdoutHandler)), None
    )
    if handler is None:
        handler = _StdoutHandler()
        logger.addHandler(handler)
    fmt = "%(message)s" if _LEVELS[level] >= logging.INFO else "[%(name)s] %(message)s"
    handler.setFormatter(logging.Formatter(fmt))
    handler.setLevel(_LEVELS[level])
    return logger
