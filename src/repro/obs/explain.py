"""Post-hoc speedup attribution: why is a tuned pipeline fast?

``repro explain RUN_DIR`` answers the question every phase-ordering result
begs: *which passes in the winning sequence actually paid for the
speedup?*  The tuner's artifacts record only end-to-end runtimes; this
module replays the incumbent configuration through the compiler with full
:class:`~repro.compiler.pass_manager.PassTrace` instrumentation and then
attributes the runtime by ablation:

* **leave-one-out** — each pass is deleted from its module's sequence and
  the ablated program re-measured; the runtime delta is the pass's
  *marginal contribution* to the final binary;
* **prefix replay** — the sequence is truncated at every length ``k`` and
  re-measured, yielding the cumulative "speedup so far" curve the report
  plots;
* **no-op detection** — a pass whose removal leaves the module's final IR
  *textually identical* (same :func:`~repro.compiler.textual.print_module`
  output) contributed nothing to the binary; its marginal is exactly 0.

Determinism makes the attribution exact rather than statistical: replays
run on :meth:`~repro.machine.profiler.Profiler.deterministic_seconds`
(cost-model cycles, no measurement noise, no RNG), so two ablations that
produce the same binary get the same seconds to the last bit.  Compiles
route through a :class:`~repro.core.eval_engine.CompileEngine` keyed by
``(module, sequence)``, so the full sequence, every prefix, and every
leave-one-out variant compile at most once each; executions are memoised
by the linked binaries' textual signatures, so IR-identical ablations are
never re-run.

Everything reads the run directory's JSON artifacts; no pickles, no live
tuner, and the run's own RNG stream is never touched.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler.opt_tool import run_opt
from repro.compiler.pass_manager import PassTrace
from repro.compiler.textual import print_module
from repro.core.eval_engine import CompileEngine
from repro.machine.platforms import get_platform
from repro.machine.profiler import Profiler
from repro.obs.analysis import load_run
from repro.obs.trace import Tracer
from repro.workloads import cbench_names, cbench_program, spec_names, spec_program

__all__ = [
    "ModuleExplanation",
    "PassAttribution",
    "ExplainReport",
    "explain_run",
]


@dataclass
class PassAttribution:
    """One pass application in the incumbent sequence, fully attributed.

    ``marginal_seconds`` is the leave-one-out runtime delta (ablated minus
    incumbent): positive means removing the pass makes the program slower —
    the pass is pulling its weight.  ``noop`` marks passes whose removal
    leaves the module's final IR byte-identical."""

    index: int
    name: str
    wall: float
    cpu: float
    changed: bool
    noop: bool
    marginal_seconds: float
    stats_delta: Dict[str, int] = field(default_factory=dict)
    ir_delta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "pass": self.name,
            "wall": self.wall,
            "cpu": self.cpu,
            "changed": self.changed,
            "noop": self.noop,
            "marginal_seconds": self.marginal_seconds,
            "stats_delta": dict(self.stats_delta),
            "ir_delta": dict(self.ir_delta),
        }


@dataclass
class ModuleExplanation:
    """Attribution for one module's incumbent sequence."""

    module: str
    sequence: Tuple[str, ...]
    passes: List[PassAttribution]
    #: deterministic program seconds with this module compiled under
    #: ``sequence[:k]`` for k = 0..len (other modules at their incumbents)
    prefix_seconds: List[float]

    @property
    def n_noop(self) -> int:
        return sum(1 for p in self.passes if p.noop)

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "sequence": list(self.sequence),
            "n_noop": self.n_noop,
            "passes": [p.to_dict() for p in self.passes],
            "prefix_seconds": list(self.prefix_seconds),
        }


@dataclass
class ExplainReport:
    """The full ``repro explain`` result for one run directory."""

    run_dir: str
    program: str
    tuner: str
    seed: object
    platform: str
    best_config: Dict[str, Tuple[str, ...]]
    o3_seconds: float
    best_seconds: float
    modules: List[ModuleExplanation]
    #: compiles the engine actually performed vs. requests it absorbed
    compile_stats: Dict[str, object] = field(default_factory=dict)
    #: deterministic-executions performed vs. memoised by binary signature
    execution_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.o3_seconds / self.best_seconds if self.best_seconds else 0.0

    @property
    def n_noop(self) -> int:
        return sum(m.n_noop for m in self.modules)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "run_dir": self.run_dir,
            "program": self.program,
            "tuner": self.tuner,
            "seed": self.seed,
            "platform": self.platform,
            "best_config": {m: list(s) for m, s in self.best_config.items()},
            "o3_seconds": self.o3_seconds,
            "best_seconds": self.best_seconds,
            "speedup": self.speedup,
            "n_noop": self.n_noop,
            "modules": [m.to_dict() for m in self.modules],
            "compile_stats": dict(self.compile_stats),
            "execution_stats": dict(self.execution_stats),
        }

    def render(self) -> str:
        """Markdown/ASCII report (what the CLI prints)."""
        from repro.reporting import ascii_series, pass_attribution_table

        lines = [f"# Speedup attribution: {Path(self.run_dir).name}", ""]
        lines.append(
            f"- program: **{self.program}**  tuner: **{self.tuner}**  "
            f"seed: {self.seed}  platform: {self.platform}"
        )
        lines.append(
            f"- deterministic runtime: **{self.best_seconds * 1e6:.2f} us** "
            f"vs -O3 {self.o3_seconds * 1e6:.2f} us "
            f"(**{self.speedup:.3f}x**, noise-free cost model)"
        )
        lines.append(
            f"- modules explained: {len(self.modules)}  "
            f"no-op passes: {self.n_noop}"
        )
        lines.append("")
        for mod in self.modules:
            lines.append(f"## Module `{mod.module}` ({len(mod.sequence)} passes)")
            lines.append("")
            lines.append("```")
            lines.append(pass_attribution_table([p.to_dict() for p in mod.passes]))
            lines.append("```")
            lines.append("")
            if len(mod.prefix_seconds) > 2:
                lines.append("Cumulative runtime as the pipeline grows (prefix replay):")
                lines.append("")
                lines.append("```")
                lines.extend(
                    ascii_series(
                        [s * 1e6 for s in mod.prefix_seconds], unit="prefix length"
                    )
                )
                lines.append("```")
                lines.append("")
            noops = [p.name for p in mod.passes if p.noop]
            if noops:
                lines.append(
                    f"No-op passes (removal leaves the final IR identical): "
                    f"{', '.join(noops)}."
                )
                lines.append("")
        cs, es = self.compile_stats, self.execution_stats
        lines.append(
            f"Replay cost: {cs.get('compiles', '?')} compiles for "
            f"{cs.get('requests', '?')} requests (engine cache), "
            f"{es.get('executions', '?')} executions for "
            f"{es.get('requests', '?')} ablations (signature memo)."
        )
        return "\n".join(lines).rstrip() + "\n"


def _load_program(name: str):
    if name in cbench_names():
        return cbench_program(name)
    if name in spec_names():
        return spec_program(name)
    raise ValueError(f"unknown program {name!r} in run manifest")


def _module_signature(module) -> str:
    return hashlib.sha256(print_module(module).encode()).hexdigest()


class _Replayer:
    """Deterministic compile+execute service for ablation replays.

    Compiles are served by a :class:`CompileEngine` keyed by the decoded
    ``(module, sequence)`` pair — the incumbent, every prefix, and every
    leave-one-out variant hit the same cache.  Executions are memoised by
    the tuple of linked modules' textual signatures: ablations that
    compile to IR-identical binaries share one execution and get exactly
    equal seconds."""

    def __init__(self, program, platform, tracer: Tracer) -> None:
        self.program = program
        self.platform = platform
        self.target = platform.target_info()
        self.tracer = tracer
        # seed is irrelevant: only the noise-free deterministic clock runs
        self.profiler = Profiler(platform, seed=0, fuel=program.fuel)
        self.engine = CompileEngine(
            self._compile,
            jobs=1,
            key_fn=lambda name, seq: (name, tuple(seq)),
            tracer=tracer,
        )
        self._seconds_memo: Dict[Tuple[str, ...], float] = {}
        self.exec_requests = 0
        self.compile_requests = 0

    def _compile(self, name: str, seq: Sequence[str]):
        cr = run_opt(self.program.get_module(name), list(seq), target=self.target)
        return cr.module

    def compiled(self, name: str, seq: Sequence[str]):
        """The module compiled under ``seq`` (engine-cached)."""
        self.compile_requests += 1
        return self.engine.compile_one(name, tuple(seq))

    def seconds(self, config: Dict[str, Sequence[str]]) -> float:
        """Deterministic program seconds for a full per-module config."""
        self.exec_requests += 1
        linked = [
            self.compiled(m.name, config.get(m.name, ()))
            for m in self.program.modules
        ]
        sig = tuple(_module_signature(m) for m in linked)
        hit = self._seconds_memo.get(sig)
        if hit is not None:
            return hit
        seconds, _result = self.profiler.deterministic_seconds(
            linked, entry=self.program.entry
        )
        self._seconds_memo[sig] = seconds
        return seconds

    def stats(self) -> Tuple[Dict[str, object], Dict[str, object]]:
        compile_stats = {
            "requests": self.compile_requests,
            "compiles": int(self.engine.n_compiles),
            "cache_hits": int(self.engine.hits),
        }
        execution_stats = {
            "requests": self.exec_requests,
            "executions": len(self._seconds_memo),
        }
        return compile_stats, execution_stats


def explain_run(
    run_dir: Union[str, Path],
    prefixes: bool = True,
    tracer: Optional[Tracer] = None,
    write_json: bool = True,
) -> ExplainReport:
    """Attribute a recorded run's speedup to the passes that earned it.

    Loads ``run_dir``'s artifacts, rebuilds the program and platform from
    the manifest, replays the incumbent (``best_config``) with a full
    :class:`PassTrace`, then measures every leave-one-out and (with
    ``prefixes``) prefix ablation on the deterministic clock.  Pass a
    ``tracer`` to capture the replay as ``pass.*`` spans (exportable to a
    Chrome trace); with ``write_json`` the report is persisted atomically
    as ``explain.json`` inside the run directory, where ``repro analyze``
    and the warehouse pick it up.
    """
    run = load_run(run_dir)
    if run.result is None or not run.result.best_config:
        raise ValueError(
            f"run {run.path} has no best_config to explain "
            "(interrupted before its first feasible measurement?)"
        )
    man = run.manifest
    program = _load_program(str(man.get("program") or run.result.program))
    platform = get_platform(str(man.get("platform", "arm-a57")))
    tracer = tracer if tracer is not None else Tracer(enabled=False, keep=0)
    replayer = _Replayer(program, platform, tracer)

    best_config: Dict[str, Tuple[str, ...]] = {
        m: tuple(s) for m, s in run.result.best_config.items()
    }
    # -O3 anchor: the same named pipeline the task compiles its baseline with
    from repro.compiler.pipelines import pipeline as _pipeline

    o3_seq = tuple(_pipeline("-O3"))
    with tracer.span("explain.replay", modules=len(best_config)):
        o3_seconds = replayer.seconds({m.name: o3_seq for m in program.modules})
        full_config = {
            m.name: best_config.get(m.name, o3_seq) for m in program.modules
        }
        best_seconds = replayer.seconds(full_config)

        modules: List[ModuleExplanation] = []
        for name in sorted(best_config):
            seq = best_config[name]
            # full traced replay: per-pass timing, stats and IR deltas
            trace = PassTrace()
            with tracer.span(
                "pass.pipeline", module=name, length=len(seq)
            ) as sp:
                base = tracer.now()
                run_opt(
                    program.get_module(name), list(seq),
                    target=replayer.target, trace=trace,
                )
                for e in trace.entries:
                    tracer.span_event(
                        "pass.run",
                        wall=e.wall,
                        cpu=e.cpu,
                        ts=base + e.offset,
                        index=e.index,
                        module=name,
                        changed=e.changed,
                        stats_delta=e.stats_delta,
                        ir_delta=e.ir_delta(),
                        **{"pass": e.name},
                    )
                sp.set(**trace.summary())

            full_sig = _module_signature(replayer.compiled(name, seq))
            attributions: List[PassAttribution] = []
            for i, entry in enumerate(trace.entries):
                ablated = seq[:i] + seq[i + 1:]
                ablated_module = replayer.compiled(name, ablated)
                noop = _module_signature(ablated_module) == full_sig
                if noop:
                    marginal = 0.0
                else:
                    cfg = dict(full_config)
                    cfg[name] = ablated
                    marginal = replayer.seconds(cfg) - best_seconds
                attributions.append(
                    PassAttribution(
                        index=entry.index,
                        name=entry.name,
                        wall=entry.wall,
                        cpu=entry.cpu,
                        changed=entry.changed,
                        noop=noop,
                        marginal_seconds=marginal,
                        stats_delta=entry.stats_delta,
                        ir_delta=entry.ir_delta(),
                    )
                )

            prefix_seconds: List[float] = []
            if prefixes:
                for k in range(len(seq) + 1):
                    cfg = dict(full_config)
                    cfg[name] = seq[:k]
                    prefix_seconds.append(replayer.seconds(cfg))

            modules.append(
                ModuleExplanation(
                    module=name,
                    sequence=seq,
                    passes=attributions,
                    prefix_seconds=prefix_seconds,
                )
            )

    compile_stats, execution_stats = replayer.stats()
    report = ExplainReport(
        run_dir=str(run.path),
        program=program.name,
        tuner=run.result.tuner,
        seed=man.get("seed"),
        platform=str(man.get("platform", "arm-a57")),
        best_config=best_config,
        o3_seconds=o3_seconds,
        best_seconds=best_seconds,
        modules=modules,
        compile_stats=compile_stats,
        execution_stats=execution_stats,
    )
    if write_json:
        _write_json_atomic(run.path / "explain.json", report.to_dict())
    return report


def _write_json_atomic(path: Path, payload: Dict[str, object]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    os.replace(tmp, path)
