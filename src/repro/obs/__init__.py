"""Observability for tuning runs: tracing, metrics, run artifacts, logging.

CITROEN's thesis is that *compilation statistics* are the signal worth
modelling — this package applies the same discipline to the tuner itself.
Three dependency-free pieces:

* :mod:`repro.obs.trace` — a :class:`Tracer` of nestable spans
  (``with tracer.span("propose", module=m):``) capturing wall/CPU time and
  attributes, emitting JSONL-serialisable events;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and streaming histograms (p50/p90/p99) that backs the
  :class:`~repro.core.eval_engine.CompileEngine` counters;
* :mod:`repro.obs.recorder` — a :class:`RunRecorder` writing a per-run
  directory (``manifest.json``, ``events.jsonl``, ``metrics.json``,
  ``result.json``) for every tune;

plus :mod:`repro.obs.log`, the ``logging`` setup the CLI uses, and two
consumers of the recorded artifacts:

* :mod:`repro.obs.diagnostics` — surrogate-calibration statistics (RMSE,
  rank correlation, σ-interval coverage, drift) and per-generator
  provenance attribution from CITROEN's decision records;
* :mod:`repro.obs.analysis` — the offline run analyzer/differ behind
  ``repro analyze`` and ``repro diff`` (markdown reports, regression
  gating for CI);

and the fleet layer built on top of them:

* :mod:`repro.obs.stream` — the incremental follow-mode reader and the
  live terminal dashboard behind ``repro watch``;
* :mod:`repro.obs.warehouse` — the sqlite cross-run warehouse behind
  ``repro obs index`` / ``repro obs history`` and the
  ``repro diff --against warehouse:last-N`` fleet gate;
* :mod:`repro.obs.export` — Chrome-trace-event and Prometheus text
  exporters (``repro analyze --chrome-trace/--prometheus``).

Everything is off by default: the module-level :data:`NULL_TRACER` is a
disabled tracer whose spans are shared no-op context managers, so
uninstrumented runs stay bit-identical to pre-observability behaviour.
"""

from repro.obs.analysis import (
    DiffThresholds,
    RunData,
    analyze_run,
    diff_runs,
    load_run,
    resolve_run_dir,
)
from repro.obs.diagnostics import (
    attribution_table,
    calibration,
    calibration_table,
    decision_records,
    generator_attribution,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.export import chrome_trace, prometheus_text
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
)
from repro.obs.recorder import (
    RunRecorder,
    count_malformed_lines,
    git_revision,
    read_events,
    tail_jsonl,
)
from repro.obs.stream import RunWatcher, WatchState, normalize_epochs
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.obs.warehouse import Warehouse, diff_against_warehouse, history_table

__all__ = [
    "Counter",
    "DiffThresholds",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "RunData",
    "RunRecorder",
    "RunWatcher",
    "Span",
    "Tracer",
    "Warehouse",
    "WatchState",
    "analyze_run",
    "attribution_table",
    "calibration",
    "calibration_table",
    "chrome_trace",
    "configure_logging",
    "count_malformed_lines",
    "decision_records",
    "diff_against_warehouse",
    "diff_runs",
    "generator_attribution",
    "get_logger",
    "get_registry",
    "git_revision",
    "history_table",
    "load_run",
    "merge_snapshots",
    "normalize_epochs",
    "prometheus_text",
    "read_events",
    "resolve_run_dir",
    "tail_jsonl",
]
