"""Observability for tuning runs: tracing, metrics, run artifacts, logging.

CITROEN's thesis is that *compilation statistics* are the signal worth
modelling — this package applies the same discipline to the tuner itself.
Three dependency-free pieces:

* :mod:`repro.obs.trace` — a :class:`Tracer` of nestable spans
  (``with tracer.span("propose", module=m):``) capturing wall/CPU time and
  attributes, emitting JSONL-serialisable events;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and streaming histograms (p50/p90/p99) that backs the
  :class:`~repro.core.eval_engine.CompileEngine` counters;
* :mod:`repro.obs.recorder` — a :class:`RunRecorder` writing a per-run
  directory (``manifest.json``, ``events.jsonl``, ``metrics.json``,
  ``result.json``) for every tune;

plus :mod:`repro.obs.log`, the ``logging`` setup the CLI uses.

Everything is off by default: the module-level :data:`NULL_TRACER` is a
disabled tracer whose spans are shared no-op context managers, so
uninstrumented runs stay bit-identical to pre-observability behaviour.
"""

from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from repro.obs.recorder import RunRecorder, git_revision, read_events
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "RunRecorder",
    "Span",
    "Tracer",
    "configure_logging",
    "get_logger",
    "get_registry",
    "git_revision",
    "read_events",
]
