"""Observability for tuning runs: tracing, metrics, run artifacts, logging.

CITROEN's thesis is that *compilation statistics* are the signal worth
modelling — this package applies the same discipline to the tuner itself.
Three dependency-free pieces:

* :mod:`repro.obs.trace` — a :class:`Tracer` of nestable spans
  (``with tracer.span("propose", module=m):``) capturing wall/CPU time and
  attributes, emitting JSONL-serialisable events;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and streaming histograms (p50/p90/p99) that backs the
  :class:`~repro.core.eval_engine.CompileEngine` counters;
* :mod:`repro.obs.recorder` — a :class:`RunRecorder` writing a per-run
  directory (``manifest.json``, ``events.jsonl``, ``metrics.json``,
  ``result.json``) for every tune;

plus :mod:`repro.obs.log`, the ``logging`` setup the CLI uses, and two
consumers of the recorded artifacts:

* :mod:`repro.obs.diagnostics` — surrogate-calibration statistics (RMSE,
  rank correlation, σ-interval coverage, drift) and per-generator
  provenance attribution from CITROEN's decision records;
* :mod:`repro.obs.analysis` — the offline run analyzer/differ behind
  ``repro analyze`` and ``repro diff`` (markdown reports, regression
  gating for CI).

Everything is off by default: the module-level :data:`NULL_TRACER` is a
disabled tracer whose spans are shared no-op context managers, so
uninstrumented runs stay bit-identical to pre-observability behaviour.
"""

from repro.obs.analysis import DiffThresholds, RunData, analyze_run, diff_runs, load_run
from repro.obs.diagnostics import (
    attribution_table,
    calibration,
    calibration_table,
    decision_records,
    generator_attribution,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from repro.obs.recorder import (
    RunRecorder,
    count_malformed_lines,
    git_revision,
    read_events,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "DiffThresholds",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "RunData",
    "RunRecorder",
    "Span",
    "Tracer",
    "analyze_run",
    "attribution_table",
    "calibration",
    "calibration_table",
    "configure_logging",
    "count_malformed_lines",
    "decision_records",
    "diff_runs",
    "generator_attribution",
    "get_logger",
    "get_registry",
    "git_revision",
    "load_run",
    "read_events",
]
