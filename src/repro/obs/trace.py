"""Structured tracing: nestable spans and point events.

A :class:`Tracer` hands out :class:`Span` context managers::

    with tracer.span("propose", iteration=3) as sp:
        ...
        sp.set(candidates=len(raw))

Each finished span becomes one JSON-serialisable event dict capturing its
name, start time (relative to the tracer's epoch), wall seconds, per-thread
CPU seconds, nesting depth, parent span, thread name, and attributes.
Point events (``tracer.event("cache_flush", size=n)``) record a moment
without a duration.  Events flow to an optional ``sink`` callable — the
:class:`~repro.obs.recorder.RunRecorder` hooks its JSONL writer there —
and into a bounded in-memory buffer that
:func:`repro.reporting.span_table` renders directly.

Design constraints honoured throughout:

* **disabled is free** — a tracer built with ``enabled=False`` (or the
  module-level :data:`NULL_TRACER`) returns one shared no-op span, so an
  uninstrumented hot loop pays a single attribute check per call site and
  tuner behaviour stays bit-identical (tracing consumes no RNG);
* **thread-safe** — the span stack is thread-local (workers inside the
  :class:`~repro.core.eval_engine.CompileEngine` nest correctly under the
  batch span of the submitting thread only if they share it; worker-side
  spans start their own stack), while the buffer and sink are guarded by
  one lock;
* **no wall-clock timestamps** — event ``ts`` is relative to the tracer
  epoch, so two runs at the same seed produce structurally identical
  traces.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

__all__ = ["NULL_TRACER", "Span", "Tracer"]


class _NullSpan:
    """Shared no-op span: the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; finishes (and emits) on ``__exit__``."""

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id", "depth",
        "_t0", "_ts", "_cpu0",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span while it is running."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self.tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        self.span_id = next(tracer._ids)
        stack.append(self)
        self._ts = time.perf_counter() - tracer._epoch
        self._t0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._t0
        cpu = time.thread_time() - self._cpu0
        tracer = self.tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        event = {
            "type": "span",
            "name": self.name,
            "ts": self._ts,
            "wall": wall,
            "cpu": cpu,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "thread": threading.current_thread().name,
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["attrs"] = self.attrs
        tracer._emit(event)
        return None


class Tracer:
    """Factory for nestable spans and point events.

    Parameters
    ----------
    sink:
        optional callable receiving each finished event dict (the
        RunRecorder's JSONL writer); exceptions from the sink propagate —
        a broken trace file should fail loudly, not silently drop spans.
    enabled:
        when ``False`` every ``span()``/``event()`` is a no-op.
    keep:
        bounded count of events retained in memory for
        :meth:`events`/:func:`repro.reporting.span_table` (0 disables
        retention; the sink still sees everything).
    """

    def __init__(
        self,
        sink: Optional[Callable[[Dict[str, object]], None]] = None,
        enabled: bool = True,
        keep: int = 100_000,
    ) -> None:
        self.sink = sink
        self.enabled = bool(enabled)
        self._keep = int(keep)
        self._buffer: "deque[Dict[str, object]]" = deque(maxlen=self._keep or 1)
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- span stack (per thread) ------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- emission ---------------------------------------------------------------
    def _emit(self, event: Dict[str, object]) -> None:
        with self._lock:
            if self._keep:
                self._buffer.append(event)
            if self.sink is not None:
                self.sink(event)

    # -- public API -------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context manager timing the enclosed block as one span."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def now(self) -> float:
        """Seconds since the tracer epoch (the ``ts`` clock of events)."""
        return time.perf_counter() - self._epoch

    def span_event(
        self,
        name: str,
        wall: float,
        cpu: float = 0.0,
        ts: Optional[float] = None,
        **attrs,
    ) -> None:
        """Emit a span whose timing was measured *outside* the tracer.

        Retrospective instrumentation: code that already timed a unit of
        work (e.g. a :class:`~repro.compiler.pass_manager.PassTrace`
        replay) can inject it as a first-class span — it nests under the
        calling thread's current live span and renders identically in
        :func:`repro.reporting.span_table` and the Chrome exporter.
        ``ts`` is the start time on the epoch clock (see :meth:`now`);
        when omitted the span is assumed to have just finished.
        """
        if not self.enabled:
            return
        stack = self._stack()
        event: Dict[str, object] = {
            "type": "span",
            "name": name,
            "ts": (self.now() - wall) if ts is None else ts,
            "wall": wall,
            "cpu": cpu,
            "id": next(self._ids),
            "parent": stack[-1].span_id if stack else None,
            "depth": len(stack),
            "thread": threading.current_thread().name,
        }
        if attrs:
            event["attrs"] = attrs
        self._emit(event)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous point event."""
        if not self.enabled:
            return
        stack = self._stack()
        event: Dict[str, object] = {
            "type": "event",
            "name": name,
            "ts": time.perf_counter() - self._epoch,
            "parent": stack[-1].span_id if stack else None,
        }
        if attrs:
            event["attrs"] = attrs
        self._emit(event)

    def events(self) -> List[Dict[str, object]]:
        """Retained events (bounded by ``keep``), oldest first."""
        with self._lock:
            return list(self._buffer)

    def spans(self) -> List[Dict[str, object]]:
        """Retained span events only."""
        return [e for e in self.events() if e.get("type") == "span"]

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    # -- pickling (process-pool compile functions may close over us) -----------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_local"] = None
        state["_buffer"] = None
        state["sink"] = None  # file handles don't cross process boundaries
        state["_ids"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._buffer = deque(maxlen=self._keep or 1)
        self._ids = itertools.count(1)


#: The shared disabled tracer: instrumented code defaults to this, so an
#: unconfigured run pays one ``enabled`` check per call site and nothing else.
NULL_TRACER = Tracer(enabled=False, keep=0)
