"""Standard-format exporters: Chrome trace events and Prometheus text.

The tracer and metrics registry speak their own compact JSON; the rest of
the world speaks two lingua francas, and this module translates to both:

* :func:`chrome_trace` — ``events.jsonl`` span/point events as Chrome
  Trace Event JSON (the ``{"traceEvents": [...]}`` object form).  Load
  the file in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``
  and the per-phase nesting, thread lanes, and point events render as a
  real flame chart.  ``repro analyze RUN --chrome-trace out.json``.
* :func:`prometheus_text` — a :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot in Prometheus text exposition format (counters as ``_total``,
  histogram digests as summaries with quantile labels).  This is the
  scrape payload for the ROADMAP's tuning-as-a-service daemon; until the
  daemon exists, ``repro analyze RUN --prometheus out.prom`` materializes
  the same text from a recorded run.

Mapping notes (Chrome):

* closed spans → ``ph: "X"`` complete events (``ts`` start, ``dur``
  wall, both in microseconds, as the format requires);
* *unclosed* spans — a killed run's events.jsonl may end with span
  records that carry ``ts`` but no ``wall`` — → ``ph: "B"`` begin events
  with no matching end, which trace viewers render as open-ended; the
  interruption stays visible instead of vanishing;
* point events → ``ph: "i"`` instants (thread scope);
* thread names → ``ph: "M"`` metadata, one per lane, so lanes are
  labeled ``MainThread``/worker names rather than bare tids;
* resumed runs are spliced onto one monotonic timeline first
  (:func:`repro.obs.stream.normalize_epochs`) — each process's ts clock
  restarts at zero, and without the splice every epoch would overdraw
  the same time range.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import normalize_epochs

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "write_chrome_trace",
    "write_prometheus",
]

_PID = 1  # one recorded run == one logical process in the trace


def _tid(thread: Optional[str], lanes: Dict[str, int]) -> int:
    name = thread or "MainThread"
    if name not in lanes:
        lanes[name] = len(lanes) + 1
    return lanes[name]


def chrome_trace(events: List[Dict[str, object]]) -> Dict[str, object]:
    """Convert recorded trace events to a Chrome Trace Event object."""
    out: List[Dict[str, object]] = []
    lanes: Dict[str, int] = {}
    for e in normalize_epochs(events):
        kind = e.get("type")
        name = str(e.get("name", "?"))
        ts = e.get("ts")
        if ts is None:
            continue
        tid = _tid(e.get("thread"), lanes)
        if kind == "span":
            # the pass.* family (pipeline observability) gets its own
            # category so viewers can filter per-pass compiler activity
            record: Dict[str, object] = {
                "name": name,
                "cat": "pass" if name.startswith("pass.") else "span",
                "ts": float(ts) * 1e6,
                "pid": _PID,
                "tid": tid,
            }
            wall = e.get("wall")
            if wall is None:
                # interrupted run: the span opened but never closed
                record["ph"] = "B"
            else:
                record["ph"] = "X"
                record["dur"] = float(wall) * 1e6
            args: Dict[str, object] = {}
            if e.get("cpu") is not None:
                args["cpu_seconds"] = e["cpu"]
            if e.get("attrs"):
                args.update(e["attrs"])
            if e.get("error"):
                args["error"] = e["error"]
            if args:
                record["args"] = args
            out.append(record)
        elif kind == "event":
            record = {
                "name": name,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": float(ts) * 1e6,
                "pid": _PID,
                "tid": tid,
            }
            if e.get("attrs"):
                record["args"] = dict(e["attrs"])
            out.append(record)
    metadata: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "repro"},
        }
    ]
    for lane, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    return {"traceEvents": metadata + out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: List[Dict[str, object]], path: Union[str, Path]
) -> Dict[str, object]:
    """Write :func:`chrome_trace` output to ``path``; returns the object."""
    trace = chrome_trace(events)
    with open(Path(path), "w") as fh:
        json.dump(trace, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return trace


# -- Prometheus -------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    """``engine.cache_hits`` → ``repro_engine_cache_hits`` (spec-legal)."""
    flat = _NAME_RE.sub("_", f"{prefix}_{name}" if prefix else name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _prom_value(v: object) -> str:
    try:
        f = float(v)
    except (TypeError, ValueError):
        return "0"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def prometheus_text(
    source: Union[MetricsRegistry, Dict[str, object]],
    prefix: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a registry (or a ``metrics.json`` snapshot dict) as
    Prometheus text exposition.

    Counters are exposed with the conventional ``_total`` suffix, gauges
    verbatim, and histogram digests as summaries (``{quantile="0.5"}``
    series plus ``_sum``/``_count``).  ``labels`` (e.g. ``{"program":
    "security_sha", "seed": "1"}``) are attached to every sample so a
    daemon can serve many concurrent tunes from one endpoint."""
    snap = source.snapshot() if isinstance(source, MetricsRegistry) else source
    # a resumed run's snapshot nests totals under "cumulative"; a scrape
    # wants the totals
    snap = snap.get("cumulative") or snap
    label_str = ""
    if labels:
        pairs = ",".join(
            f'{_NAME_RE.sub("_", k)}="{str(v)}"' for k, v in sorted(labels.items())
        )
        label_str = "{" + pairs + "}"
    lines: List[str] = []
    for name, value in sorted((snap.get("counters") or {}).items()):
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{label_str} {_prom_value(value)}")
    for name, value in sorted((snap.get("gauges") or {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label_str} {_prom_value(value)}")
    for name, digest in sorted((snap.get("histograms") or {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for q_key, q in (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")):
            if q_key not in digest:
                continue
            if labels:
                q_labels = label_str[:-1] + f',quantile="{q}"}}'
            else:
                q_labels = f'{{quantile="{q}"}}'
            lines.append(f"{metric}{q_labels} {_prom_value(digest[q_key])}")
        lines.append(f"{metric}_sum{label_str} {_prom_value(digest.get('sum', 0))}")
        lines.append(
            f"{metric}_count{label_str} {_prom_value(digest.get('count', 0))}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    source: Union[MetricsRegistry, Dict[str, object]],
    path: Union[str, Path],
    prefix: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Write :func:`prometheus_text` to ``path``; returns the text."""
    text = prometheus_text(source, prefix=prefix, labels=labels)
    with open(Path(path), "w") as fh:
        fh.write(text)
    return text
