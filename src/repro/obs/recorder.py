"""Per-run artifact directory: manifest, trace events, metrics, result.

Every tune invoked with ``--trace-out DIR`` (or ``REPRO_TRACE=DIR``) gets
a directory::

    DIR/
      manifest.json    # config, seed, git revision, package version
      events.jsonl     # one JSON object per trace span / point event
      metrics.json     # MetricsRegistry snapshot (counters/gauges/p50-p99)
      result.json      # final TuningResult (measurements, timing, extras)

The manifest is written eagerly at construction so even a crashed run
leaves an identifiable corpse; it contains no wall-clock timestamp, so
two runs of the same config+seed produce byte-identical manifests (the
reproducibility contract the autotuning literature keeps relearning —
instrumented runs must be comparable run-over-run).

``events.jsonl`` is streamed: the recorder's :attr:`tracer` sinks every
finished span straight to the file, so a run killed mid-search still
yields a parseable prefix (each line is a complete JSON object).

Crash-safety contract (the durable-session layer rests on it): every
whole-file JSON artifact is written atomically — serialized to a
``*.tmp`` sibling, fsync'd, then :func:`os.replace`'d into place — so a
kill mid-write never leaves a torn ``manifest.json``/``metrics.json``/
``result.json`` (at worst a stale ``*.tmp``, which the analyzer treats
as recoverable).  ``events.jsonl`` is flushed per event and fsync'd
every :data:`EVENT_FSYNC_INTERVAL` events and at close.  Constructing
with ``resume=True`` (what ``repro tune --resume`` does) appends to the
existing event stream instead of truncating it, first terminating any
torn trailing line so the seam stays parseable, and preserves the
original manifest.

Resumed runs are **epoch-aware**: each process that writes into the run
directory is one *epoch*.  A resuming recorder emits a ``resume_epoch``
marker event into ``events.jsonl`` (consumers use it to re-anchor the
relative ``ts`` clock, which restarts per process) and folds the prior
process's ``metrics.json`` into the new snapshot — the top-level
counters/gauges/histograms stay this epoch's registry (back-compat),
while ``epoch``/``epochs``/``cumulative`` keys carry the per-epoch
history and the merged totals (see :meth:`RunRecorder.write_metrics`).

The recorder also accounts for its own cost: wall seconds spent
serialising events and artifacts accumulate in
:attr:`RunRecorder.overhead_seconds`, surface as the ``obs.overhead``
span in the event stream at close, and as the ``obs.overhead_seconds``
counter — the self-overhead guard (tests assert it stays under 5% of a
traced tune) reads exactly these.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.trace import Tracer

__all__ = [
    "EVENT_FSYNC_INTERVAL",
    "RunRecorder",
    "count_malformed_lines",
    "git_revision",
    "read_events",
    "tail_jsonl",
]

#: fsync ``events.jsonl`` every this many events (always flushed per event).
EVENT_FSYNC_INTERVAL = 32


def _atomic_write_json(path: Path, payload: object) -> None:
    """Serialize ``payload`` to ``path`` atomically (tmp + fsync + replace)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(json.dumps(_jsonable(payload), indent=2, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def git_revision(cwd: Optional[str] = None) -> str:
    """The repo's HEAD revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _package_version() -> str:
    try:  # local import: repro/__init__ may still be mid-import at call time
        import repro

        return getattr(repro, "__version__", "unknown")
    except ImportError:  # pragma: no cover
        return "unknown"


def _jsonable(obj):
    """Best-effort JSON coercion for numpy scalars/arrays and dataclasses."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalar
        try:
            return obj.item()
        except (TypeError, ValueError):
            pass
    if hasattr(obj, "tolist") and callable(obj.tolist):  # numpy array
        return obj.tolist()
    if isinstance(obj, float) and (obj != obj or obj in (float("inf"), float("-inf"))):
        return repr(obj)  # "inf"/"-inf"/"nan": valid JSON needs a string
    return obj


class RunRecorder:
    """Owns one run directory and the tracer/metrics feeding it.

    Parameters
    ----------
    out_dir:
        the run directory; created (parents included) if missing, and
        stale ``events.jsonl``/``metrics.json``/``result.json`` from a
        previous run in the same directory are truncated/overwritten.
    manifest:
        run identification written to ``manifest.json``; merged over the
        defaults (``version``, ``git_rev``) with caller keys winning.
    resume:
        continue an interrupted run in the same directory: the existing
        ``manifest.json`` is preserved (a missing one is written fresh),
        and ``events.jsonl`` is opened in append mode with any torn
        trailing line from the kill terminated so old and new events
        parse as one stream.
    registry:
        the :class:`MetricsRegistry` snapshotted into ``metrics.json``
        (on :meth:`write_metrics`, and automatically at :meth:`close` if
        not yet written).  ``None`` creates a private registry.
    keep:
        in-memory event retention of the attached tracer (for
        :func:`repro.reporting.span_table` after the run).
    """

    def __init__(
        self,
        out_dir: Union[str, Path],
        manifest: Optional[Dict[str, object]] = None,
        registry: Optional[MetricsRegistry] = None,
        keep: int = 100_000,
        resume: bool = False,
    ) -> None:
        self.path = Path(out_dir)
        self.path.mkdir(parents=True, exist_ok=True)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.resume = bool(resume)
        self._metrics_written = False
        self._closed = False
        self._events_since_fsync = 0
        #: wall seconds this recorder spent serialising events + artifacts
        self.overhead_seconds = 0.0

        # resume: fold the killed/stopped process's metrics snapshot into
        # the epoch history so cumulative counts survive the process swap.
        # (A SIGKILL'd run never wrote metrics.json — then there is simply
        # no epoch-1 snapshot to preserve, and the WAL remains the honest
        # progress record.)
        self._prior_epochs: List[Dict[str, object]] = []
        #: processes that wrote this run dir before us (0 on a fresh run);
        #: counted from durable evidence, not metrics snapshots, so a
        #: SIGKILL'd first epoch still advances the epoch index
        self._prior_processes = 0
        if resume:
            prior = self._load_prior_metrics()
            if prior:
                kept = {
                    k: prior[k]
                    for k in ("counters", "gauges", "histograms")
                    if k in prior
                }
                self._prior_epochs = list(prior.get("epochs") or []) + [kept]
            self._prior_processes = 1 + self._count_resume_markers()

        manifest_path = self.path / "manifest.json"
        if resume and manifest_path.exists():
            self.manifest = json.loads(manifest_path.read_text())
        else:
            base: Dict[str, object] = {
                "version": _package_version(),
                "git_rev": git_revision(),
            }
            base.update(manifest or {})
            self.manifest = base
            _atomic_write_json(manifest_path, base)

        events_path = self.path / "events.jsonl"
        # a resumed run appends; a kill mid-write leaves at most one torn
        # trailing line, which gets its newline here so the seam parses
        needs_newline = False
        if resume and events_path.exists() and events_path.stat().st_size > 0:
            with open(events_path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        self._events_file = open(events_path, "a" if resume else "w")
        if needs_newline:
            self._events_file.write("\n")
            self._events_file.flush()
        self.tracer = Tracer(sink=self.write_event, keep=keep)
        if resume:
            # seam marker: the relative `ts` clock restarts with this
            # process, so stream consumers (watch, the Chrome exporter)
            # re-anchor their epoch offset at this event
            self.write_event(
                {"type": "event", "name": "resume_epoch", "epoch": self.epoch}
            )

    def _load_prior_metrics(self) -> Dict[str, object]:
        try:
            with open(self.path / "metrics.json") as fh:
                prior = json.load(fh)
            return prior if isinstance(prior, dict) else {}
        except (OSError, json.JSONDecodeError):
            return {}

    def _count_resume_markers(self) -> int:
        """Prior ``resume_epoch`` seam markers in the existing event log."""
        markers = 0
        try:
            with open(self.path / "events.jsonl", "rb") as fh:
                for raw in fh:
                    if b'"resume_epoch"' in raw:
                        markers += 1
        except OSError:
            pass
        return markers

    @property
    def epoch(self) -> int:
        """1-based index of the process writing the run dir right now.

        A graceful predecessor leaves a metrics snapshot per epoch; a
        SIGKILL'd one leaves only its seam-marker trail — both count."""
        return max(len(self._prior_epochs), self._prior_processes) + 1

    def _sync_overhead_counter(self, reg: MetricsRegistry) -> None:
        """Bring ``obs.overhead_seconds`` up to the accumulated total."""
        counter = reg.counter("obs.overhead_seconds")
        delta = self.overhead_seconds - counter.value
        if delta > 0:
            counter.inc(delta)

    # -- streaming --------------------------------------------------------------
    def write_event(self, event: Dict[str, object]) -> None:
        """Append one event as a JSONL line (the tracer's sink).

        Flushed per event so a killed run loses no complete events;
        fsync'd every :data:`EVENT_FSYNC_INTERVAL` events to bound what a
        power loss can take without an fsync per span."""
        t0 = time.perf_counter()
        self._events_file.write(json.dumps(_jsonable(event), sort_keys=True) + "\n")
        self._events_file.flush()
        self._events_since_fsync += 1
        if self._events_since_fsync >= EVENT_FSYNC_INTERVAL:
            os.fsync(self._events_file.fileno())
            self._events_since_fsync = 0
        self.overhead_seconds += time.perf_counter() - t0

    def flush(self) -> None:
        self._events_file.flush()

    def open_wal(self) -> "WriteAheadLog":  # noqa: F821 (forward ref)
        """Open this run's write-ahead measurement log (``wal.jsonl``).

        Fresh recorders truncate any stale log; ``resume=True`` recorders
        append across the kill seam.  See :mod:`repro.core.wal`."""
        from repro.core.wal import WriteAheadLog

        return WriteAheadLog(self.path / "wal.jsonl", resume=self.resume)

    # -- artifacts --------------------------------------------------------------
    def write_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Snapshot ``registry`` (default: the attached one) to metrics.json.

        The top level keeps this process's registry snapshot (so existing
        consumers see the shape they always did).  A resumed run
        additionally records ``epoch`` (1-based process index),
        ``epochs`` (the prior processes' snapshots, oldest first), and
        ``cumulative`` (the :func:`~repro.obs.metrics.merge_snapshots`
        totals across every epoch — true cumulative counts for runs that
        were stopped and resumed)."""
        t0 = time.perf_counter()
        reg = registry if registry is not None else self.registry
        self._sync_overhead_counter(reg)
        snap = reg.snapshot()
        if self._prior_epochs or self.epoch > 1:
            current = {k: dict(v) for k, v in snap.items()}
            snap["epoch"] = self.epoch
            snap["epochs"] = self._prior_epochs
            snap["cumulative"] = merge_snapshots(self._prior_epochs + [current])
        _atomic_write_json(self.path / "metrics.json", snap)
        self._metrics_written = True
        self.overhead_seconds += time.perf_counter() - t0

    def write_result(self, result) -> None:
        """Write the final result (a TuningResult, dataclass, or dict)."""
        t0 = time.perf_counter()
        if hasattr(result, "to_dict"):
            payload = result.to_dict()
        else:
            payload = result
        _atomic_write_json(self.path / "result.json", payload)
        self.overhead_seconds += time.perf_counter() - t0

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        """Flush, fsync and close the event stream (idempotent); writes
        the metrics snapshot if the caller never did.

        Emits the ``obs.overhead`` self-accounting span as the stream's
        final event: its ``wall`` is every second this recorder spent
        serialising, flushing, and fsyncing — the cost of observing the
        run, visible in the same span table as the run itself."""
        if self._closed:
            return
        self._closed = True
        self._sync_overhead_counter(self.registry)
        if not self._metrics_written:
            self.write_metrics()
        self.write_event(
            {
                "type": "span",
                "name": "obs.overhead",
                "ts": time.perf_counter() - self.tracer._epoch,
                "wall": self.overhead_seconds,
                "cpu": 0.0,
                "depth": 1,
                "parent": None,
                "thread": "recorder",
            }
        )
        self._events_file.flush()
        os.fsync(self._events_file.fileno())
        self._events_file.close()

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def tail_jsonl(
    path: Union[str, Path], offset: int = 0
) -> Tuple[List[Dict[str, object]], int, int]:
    """Incrementally read complete JSONL records starting at byte ``offset``.

    Returns ``(records, new_offset, n_malformed)``.  The contract that
    makes this safe to poll against a *live* writer:

    * only newline-**terminated** lines are consumed — a torn trailing
      line (the writer flushed mid-record, or the process died there) is
      left unconsumed, so ``new_offset`` points at its first byte and the
      next call re-reads it once the writer completes it;
    * newline-terminated lines that still fail to parse are permanently
      malformed (e.g. the pre-kill tail a resuming writer newline-
      terminated): they are skipped, counted in ``n_malformed``, and the
      offset moves past them;
    * a missing file reads as ``([], offset, 0)`` — the watcher may start
      polling before the run's first event.

    Byte offsets (not line numbers) are the resume token: they stay valid
    across process restarts and never require re-reading the prefix.
    """
    p = Path(path)
    records: List[Dict[str, object]] = []
    malformed = 0
    try:
        fh = open(p, "rb")
    except OSError:
        return records, int(offset), malformed
    with fh:
        fh.seek(int(offset))
        pos = int(offset)
        for raw in fh:
            if not raw.endswith(b"\n"):
                break  # torn tail: leave unconsumed for the next poll
            pos += len(raw)
            line = raw.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line.decode("utf-8", "replace")))
            except json.JSONDecodeError:
                malformed += 1
    return records, pos, malformed


def read_events(
    path: Union[str, Path],
    strict: bool = False,
    follow: bool = False,
    offset: int = 0,
):
    """Parse an ``events.jsonl`` back into a list of event dicts.

    A run killed mid-write leaves a truncated final line; by default such
    unparseable lines are skipped so an interrupted run still loads (the
    complete-line prefix is exactly what the recorder guarantees).  Pass
    ``strict=True`` to raise on any malformed line instead.  Use
    :func:`count_malformed_lines` to detect truncation explicitly.

    ``follow=True`` switches to the incremental-tail contract of
    :func:`tail_jsonl`: reading starts at byte ``offset``, only complete
    lines are consumed (a torn tail is *not* skipped-and-passed, it stays
    unconsumed for the next call), and the return value becomes the pair
    ``(events, new_offset)`` — feed ``new_offset`` back in to stream a
    live run without re-reading its prefix.  ``repro watch`` and the run
    analyzer both read through this path."""
    if follow:
        events, new_offset, _ = tail_jsonl(path, offset=offset)
        return events, new_offset
    events = []
    with open(Path(path)) as fh:
        if offset:
            fh.seek(int(offset))
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                if strict:
                    raise
    return events


def count_malformed_lines(path: Union[str, Path]) -> int:
    """Non-empty ``events.jsonl`` lines that fail to parse (truncation)."""
    bad = 0
    with open(Path(path)) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                json.loads(line)
            except json.JSONDecodeError:
                bad += 1
    return bad
