"""Process-wide metrics: counters, gauges, and streaming histograms.

A :class:`MetricsRegistry` is a named bag of instruments::

    reg = MetricsRegistry()
    reg.counter("engine.cache_hits").inc()
    reg.gauge("engine.quarantine_size").set(3)
    reg.histogram("engine.compile_seconds").observe(dt)
    reg.snapshot()   # JSON-serialisable dict, histograms as p50/p90/p99

Instruments are get-or-create by name (asking for an existing name with a
different type raises), individually thread-safe, and picklable (locks are
re-created on unpickle) so a compile function closing over an instrumented
engine still crosses process-pool boundaries.

The histogram is a *deterministic decimating reservoir*: every value is
retained until ``max_samples``, then the sample is decimated by half and
the retention stride doubles, so memory stays bounded while quantiles are
computed over an evenly spaced subsample of the stream.  No RNG is
consumed (tuner reproducibility is sacred here), and the quantile
estimates are always bracketed by the true ``min``/``max``, which are
tracked exactly — as are ``count`` and ``sum``.

:func:`get_registry` returns the process-wide default registry; component
registries (the engine's, a task's) can be that one or private instances —
the :class:`~repro.obs.recorder.RunRecorder` snapshots whichever it is
given into ``metrics.json``.
"""

from __future__ import annotations

import math
from threading import Lock
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "merge_snapshots",
]


class _Instrument:
    """Lock-owning base; pickling drops and re-creates the lock."""

    def __init__(self) -> None:
        self._lock = Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_lock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = Lock()


class Counter(_Instrument):
    """Monotonically increasing value (ints or float seconds)."""

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A value that can go up and down (sizes, rates)."""

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Streaming distribution with deterministic bounded retention.

    Values are kept verbatim until ``max_samples``; the sample is then
    decimated by half (every other retained value) and the stride between
    retained observations doubles.  ``count``/``sum``/``min``/``max`` stay
    exact; quantiles are estimated over the evenly spaced subsample.
    """

    def __init__(self, max_samples: int = 4096) -> None:
        super().__init__()
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.max_samples = int(max_samples)
        self._samples: List[float] = []
        self._stride = 1
        self._seen_since_kept = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            self._seen_since_kept += 1
            if self._seen_since_kept >= self._stride:
                self._seen_since_kept = 0
                self._samples.append(value)
                if len(self._samples) >= self.max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) over the retained subsample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
            idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
            return ordered[idx]

    def summary(self) -> Dict[str, float]:
        """The JSON-facing digest: count/sum/mean/min/max + p50/p90/p99."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry(_Instrument):
    """Named, typed, get-or-create collection of instruments."""

    def __init__(self) -> None:
        super().__init__()
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, name: str, cls, factory):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = factory()
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(max_samples=max_samples)
        )

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serialisable state: counters, gauges, histogram digests."""
        with self._lock:
            items = sorted(self._instruments.items())
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name, inst in items:
            if isinstance(inst, Counter):
                v = inst.value
                out["counters"][name] = int(v) if v == int(v) else v
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            elif isinstance(inst, Histogram):
                out["histograms"][name] = inst.summary()
        return out

    def flat(self) -> Dict[str, float]:
        """One-level dict (histograms as ``name.p50`` etc.) for log lines."""
        snap = self.snapshot()
        out: Dict[str, float] = {}
        out.update(snap["counters"])
        out.update(snap["gauges"])
        for name, digest in snap["histograms"].items():
            for k in ("count", "mean", "p50", "p99"):
                out[f"{name}.{k}"] = digest[k]
        return out


def merge_snapshots(snapshots: List[Dict[str, Dict[str, object]]]) -> Dict[str, Dict[str, object]]:
    """Merge registry snapshots from successive run *epochs* into totals.

    A resumed run is several processes writing the same run directory;
    each leaves one snapshot.  The merge semantics are "total work
    performed across all processes": counters sum, gauges take the last
    epoch's value, and histograms combine exactly on ``count``/``sum``/
    ``min``/``max`` (``mean`` recomputed) while the quantile estimates
    are taken from the epoch with the most observations — per-sample
    streams are not persisted, so cross-epoch quantiles cannot be
    reconstructed and an approximation beats dropping epochs.
    """
    out: Dict[str, Dict[str, object]] = {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    quantile_src: Dict[str, float] = {}  # per-histogram largest epoch count
    for snap in snapshots:
        if not snap:
            continue
        for name, v in (snap.get("counters") or {}).items():
            cur = out["counters"].get(name, 0)
            total = cur + v
            out["counters"][name] = (
                int(total) if float(total) == int(total) else total
            )
        for name, v in (snap.get("gauges") or {}).items():
            out["gauges"][name] = v
        for name, digest in (snap.get("histograms") or {}).items():
            agg = out["histograms"].get(name)
            if agg is None:
                out["histograms"][name] = dict(digest)
                quantile_src[name] = digest.get("count", 0)
                continue
            prev_count = agg["count"]
            agg["count"] = prev_count + digest["count"]
            agg["sum"] = agg["sum"] + digest["sum"]
            if digest["count"]:
                if prev_count:
                    agg["min"] = min(agg["min"], digest["min"])
                    agg["max"] = max(agg["max"], digest["max"])
                else:
                    agg["min"], agg["max"] = digest["min"], digest["max"]
            agg["mean"] = agg["sum"] / agg["count"] if agg["count"] else 0.0
            if digest.get("count", 0) >= quantile_src.get(name, 0):
                quantile_src[name] = digest.get("count", 0)
                for q in ("p50", "p90", "p99"):
                    agg[q] = digest[q]
    return out


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT
