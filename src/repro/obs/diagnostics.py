"""Search-introspection diagnostics: surrogate calibration and generator
provenance, computed from CITROEN's per-iteration *decision records*.

CITROEN's two load-bearing mechanisms are (1) a GP on compilation
statistics that claims to predict speedup better than sequence encodings
(Table 5.1, Fig 5.7) and (2) a DES/GA/random generator ensemble that
claims to find the incumbents (Fig 5.9–5.11).  A reproduced headline
number can be right for the wrong reason — the autotuning survey
literature keeps stressing that model-accuracy and credit-assignment
diagnostics are what separate a tuned pipeline from a lucky one — so this
module turns the recorded decisions into both checks:

* :func:`calibration` — is the surrogate *calibrated*?  RMSE and Spearman
  rank correlation between the GP's predicted mean and the realized
  outcome (both in the GP's transformed target space, under the transform
  that produced the prediction), empirical 1σ/2σ interval coverage
  (≈0.68/0.95 for a calibrated Gaussian posterior), and drift between the
  first and second half of the run;
* :func:`generator_attribution` — which generator is earning its keep?
  Proposals vs. acquisition wins vs. incumbent improvements per strategy —
  the Fig 5.9 ablation, observed live instead of re-run.

Decision records are emitted by :class:`~repro.core.citroen.Citroen` when
``diagnostics=True`` (the default): each BO iteration appends one dict to
``result.extras["decisions"]`` and mirrors it as a ``decision`` point
event on the task's tracer, so both a live :class:`TuningResult` and a
recorded run directory's ``events.jsonl`` feed the same functions here.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.generator import base_strategy

__all__ = [
    "attribution_table",
    "calibration",
    "calibration_table",
    "decision_records",
    "generator_attribution",
]


def decision_records(source) -> List[Dict[str, object]]:
    """Extract decision records from wherever they live.

    ``source`` may be a :class:`~repro.core.result.TuningResult` (reads
    ``extras["decisions"]``), a :class:`~repro.obs.trace.Tracer` or
    :class:`~repro.obs.recorder.RunRecorder` (reads retained ``decision``
    events), a path to a run directory or an ``events.jsonl`` file, or a
    plain list of event dicts / records.  Returns the records in
    measurement order.
    """
    if source is None:
        return []
    if hasattr(source, "extras"):  # TuningResult
        return list(source.extras.get("decisions") or [])
    if hasattr(source, "tracer"):  # RunRecorder
        source = source.tracer
    if hasattr(source, "events"):  # Tracer
        source = source.events()
    if isinstance(source, (str, Path)):
        from repro.obs.recorder import read_events

        path = Path(source)
        if path.is_dir():
            path = path / "events.jsonl"
        if not path.exists():
            return []
        source = read_events(path)
    records = []
    for item in source:
        if not isinstance(item, dict):
            continue
        if item.get("type") == "event" and item.get("name") == "decision":
            records.append(dict(item.get("attrs") or {}))
        elif "type" not in item and "provenance" in item and "runtime" in item:
            records.append(item)  # already a bare record
    return records


def _scored(records: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Records carrying both a prediction and a realized outcome."""
    out = []
    for r in records:
        mu, sig, z = r.get("pred_mu"), r.get("pred_sigma"), r.get("realized_z")
        if mu is None or sig is None or z is None:
            continue
        if not (math.isfinite(mu) and math.isfinite(sig) and math.isfinite(z)):
            continue
        out.append(r)
    return out


def _rmse(err: np.ndarray) -> float:
    return float(np.sqrt(np.mean(np.square(err)))) if err.size else float("nan")


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    if len(a) < 2 or np.ptp(a) == 0.0 or np.ptp(b) == 0.0:
        return float("nan")
    from scipy import stats

    rho = stats.spearmanr(a, b).correlation
    return float(rho) if rho is not None else float("nan")


def calibration(source) -> Dict[str, float]:
    """Surrogate-calibration statistics over a run's decision records.

    All quantities live in the GP's transformed target space (where the
    posterior is Gaussian, so the σ-interval coverages have their nominal
    0.68/0.95 references).  Keys:

    ``n``
        scored decisions (prediction + feasible realization);
    ``rmse``
        root-mean-square prediction error;
    ``spearman``
        rank correlation between predicted and realized outcomes — the
        Table 5.1 "does the model rank candidates correctly" check
        (invariant under the monotone output transform);
    ``coverage_1s`` / ``coverage_2s``
        fraction of realizations within 1σ / 2σ of the predicted mean;
    ``rmse_first_half`` / ``rmse_second_half`` / ``drift``
        RMSE over each half of the run and their difference — positive
        drift means the surrogate is getting *worse* as data accumulates
        (e.g. the search walked outside the feature coverage).
    """
    records = _scored(decision_records(source))
    out = {
        "n": len(records),
        "rmse": float("nan"),
        "spearman": float("nan"),
        "coverage_1s": float("nan"),
        "coverage_2s": float("nan"),
        "rmse_first_half": float("nan"),
        "rmse_second_half": float("nan"),
        "drift": float("nan"),
    }
    if not records:
        return out
    mu = np.asarray([r["pred_mu"] for r in records], dtype=float)
    sigma = np.asarray([r["pred_sigma"] for r in records], dtype=float)
    z = np.asarray([r["realized_z"] for r in records], dtype=float)
    err = z - mu
    out["rmse"] = _rmse(err)
    out["spearman"] = _spearman(mu, z)
    out["coverage_1s"] = float(np.mean(np.abs(err) <= sigma))
    out["coverage_2s"] = float(np.mean(np.abs(err) <= 2.0 * sigma))
    if len(records) >= 4:
        half = len(records) // 2
        out["rmse_first_half"] = _rmse(err[:half])
        out["rmse_second_half"] = _rmse(err[half:])
        out["drift"] = out["rmse_second_half"] - out["rmse_first_half"]
    return out


def generator_attribution(source) -> Dict[str, Dict[str, float]]:
    """Per-strategy proposals / wins / incumbent improvements (Fig 5.9).

    Prefers the tuner's own counters (``extras["provenance"]``, summed
    over all hot-module generators) when ``source`` is a result carrying
    them; otherwise reconstructs the same totals from decision records —
    which is what the offline analyzer does with only ``events.jsonl`` in
    hand.  Adds a ``win_rate`` (wins per proposal) to each strategy row.
    """
    counts: Dict[str, Dict[str, float]] = {}
    provenance = getattr(source, "extras", {}).get("provenance") if hasattr(
        source, "extras"
    ) else None
    if provenance:
        counts = {name: dict(c) for name, c in provenance.items()}
    else:
        for r in decision_records(source):
            for prov, n in (r.get("proposed") or {}).items():
                name = base_strategy(prov)
                if name is None:
                    continue
                row = counts.setdefault(
                    name, {"proposals": 0, "wins": 0, "improvements": 0}
                )
                row["proposals"] += int(n)
            name = r.get("strategy") or base_strategy(r.get("provenance"))
            if name is None:
                continue
            row = counts.setdefault(
                name, {"proposals": 0, "wins": 0, "improvements": 0}
            )
            row["wins"] += 1
            if r.get("improved"):
                row["improvements"] += 1
    for row in counts.values():
        proposals = row.get("proposals", 0)
        row["win_rate"] = row.get("wins", 0) / proposals if proposals else 0.0
    return counts


# -- text rendering (the analyzer's markdown report embeds these) ----------------


def calibration_table(source) -> str:
    """Fixed-width calibration summary (Fig 5.7 / Table 5.1, observed)."""
    cal = calibration(source)
    if not cal["n"]:
        return "(no decision records — run with diagnostics enabled)"
    rows = [
        ("scored decisions", f"{cal['n']}", ""),
        ("rmse (transformed)", f"{cal['rmse']:.4f}", ""),
        ("spearman rank corr", f"{cal['spearman']:.3f}", "1.0 = perfect ranking"),
        ("1-sigma coverage", f"{cal['coverage_1s']:.2f}", "calibrated ~ 0.68"),
        ("2-sigma coverage", f"{cal['coverage_2s']:.2f}", "calibrated ~ 0.95"),
    ]
    if math.isfinite(cal["drift"]):
        rows.append(
            (
                "rmse drift (2nd-1st half)",
                f"{cal['drift']:+.4f}",
                "positive = degrading",
            )
        )
    width = max(len(r[0]) for r in rows) + 2
    out = [f"{'metric':{width}s}{'value':>12s}  note"]
    for name, value, note in rows:
        out.append(f"{name:{width}s}{value:>12s}  {note}".rstrip())
    return "\n".join(out)


def attribution_table(source) -> str:
    """Fixed-width per-generator attribution table (Fig 5.9, observed)."""
    counts = generator_attribution(source)
    if not counts:
        return "(no provenance records — run with diagnostics enabled)"
    out = [
        f"{'strategy':12s}{'proposals':>11s}{'wins':>7s}"
        f"{'improvements':>14s}{'win rate':>10s}"
    ]
    for name in sorted(counts):
        row = counts[name]
        out.append(
            f"{name:12s}{int(row.get('proposals', 0)):>11d}"
            f"{int(row.get('wins', 0)):>7d}"
            f"{int(row.get('improvements', 0)):>14d}"
            f"{row.get('win_rate', 0.0):>9.2%}"
        )
    return "\n".join(out)
