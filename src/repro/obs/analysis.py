"""Offline analysis of recorded run directories: reports and regression
gating.

A run directory (``repro tune --trace-out DIR`` or one tuner's
subdirectory under ``repro compare --trace-out``) holds ``manifest.json``,
``events.jsonl``, ``metrics.json``, and ``result.json``.  This module
loads those artifacts back — tolerantly, so a run killed mid-search still
analyzes — and offers two consumers:

* :func:`analyze_run` — a markdown report: run identification, outcome,
  the per-phase span table (Fig 5.12), surrogate-calibration and
  generator-provenance diagnostics (Fig 5.7 / Fig 5.9, via
  :mod:`repro.obs.diagnostics`), the convergence curve, and metrics
  highlights.  A directory written by ``repro compare`` (``compare.json``
  at the top) renders as a leaderboard over its per-tuner sub-runs.
* :func:`diff_runs` — a machine-readable verdict comparing two runs'
  best runtime, wall time, compile-cache hit rate, and calibration RMSE
  within configurable thresholds.  The CLI maps a regression verdict to a
  non-zero exit code, so CI can pin one run as the anchor and gate on the
  other — the missing tool for anchoring a BENCH trajectory.

Everything reads the JSON artifacts only; no pickles, no live tuner.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.result import TuningResult
from repro.obs.diagnostics import attribution_table, calibration, calibration_table
from repro.obs.recorder import count_malformed_lines, read_events

__all__ = [
    "DiffThresholds",
    "RunData",
    "analyze_run",
    "build_checks",
    "diff_runs",
    "gate_metrics",
    "load_run",
    "resolve_run_dir",
]


@dataclass
class RunData:
    """One recorded run, loaded back from its artifact directory.

    Missing artifacts load as empty (``result`` as ``None``) rather than
    raising — an interrupted run leaves a manifest and an event prefix,
    and those alone must still analyze.  ``truncated_events`` counts
    unparseable ``events.jsonl`` lines (a mid-write kill leaves at most
    one)."""

    path: Path
    manifest: Dict[str, object] = field(default_factory=dict)
    events: List[Dict[str, object]] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)
    result: Optional[TuningResult] = None
    compare: Optional[Dict[str, object]] = None
    truncated_events: int = 0
    wal: List[Dict[str, object]] = field(default_factory=list)

    @property
    def interrupted(self) -> bool:
        """Killed (no result.json / torn events) or gracefully stopped
        short of its budget (the result says so itself)."""
        if self.result is None or self.truncated_events > 0:
            return True
        return bool(self.result.extras.get("interrupted", False))

    @property
    def wal_measurements(self) -> int:
        """Measurements the write-ahead log proves completed — the honest
        progress count for a run that never wrote a result.json."""
        measures = sum(1 for r in self.wal if r.get("type") == "measure")
        slots = sum(1 for r in self.wal if r.get("type") == "slot")
        return max(measures, slots)

    @property
    def resumable(self) -> bool:
        """True when the run can continue via ``repro tune --resume``."""
        return bool(self.wal) and self.manifest.get("command") == "tune"

    # -- derived quantities the differ gates on ---------------------------------
    def best_runtime(self) -> Optional[float]:
        if self.result is None or not self.result.measurements:
            return None
        return self.result.best_runtime

    def wall_seconds(self) -> Optional[float]:
        """Traced top-level wall time; falls back to the result's timing
        breakdown when the run has no events."""
        walls = [
            e.get("wall")
            for e in self.events
            if e.get("type") == "span" and e.get("depth", 0) == 0
        ]
        walls = [w for w in walls if w is not None]
        if walls:
            return float(sum(walls))
        if self.result is not None and self.result.timing:
            t = self.result.timing
            return float(
                t.get("compile_wall_seconds", 0.0)
                + t.get("measure_seconds", 0.0)
                + t.get("model_seconds", 0.0)
            )
        return None

    def cache_hit_rate(self) -> Optional[float]:
        if self.result is not None and self.result.timing:
            rate = self.result.timing.get("compile_cache_hit_rate")
            if rate is not None:
                return float(rate)
        counters = self.metrics.get("counters") or {}
        hits = counters.get("engine.cache_hits")
        misses = counters.get("engine.cache_misses")
        if hits is not None and misses is not None and hits + misses > 0:
            return float(hits) / float(hits + misses)
        return None

    def calibration_rmse(self) -> Optional[float]:
        source = self.events if self.events else self.result
        cal = calibration(source)
        return cal["rmse"] if cal["n"] and math.isfinite(cal["rmse"]) else None


def _load_json(path: Path) -> Dict[str, object]:
    """Load a JSON artifact; a leftover ``*.tmp`` sibling is recoverable.

    The recorder writes atomically (tmp + ``os.replace``), so a ``*.tmp``
    next to a missing/corrupt artifact is a fully-serialized payload whose
    final rename never happened — use it rather than dropping data."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        pass
    try:
        with open(path.with_name(path.name + ".tmp")) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {}


def resolve_run_dir(run_dir: Union[str, Path]) -> Path:
    """Resolve a path to one concrete run directory.

    A directory that itself carries run artifacts (``manifest.json`` or a
    ``compare.json`` leaderboard, ``.tmp`` recoveries included) resolves
    to itself.  Otherwise it is treated as a *collection* of runs — the
    layout CI's ``--trace-out runs/$(date ...)`` style produces — and the
    child run with the newest manifest timestamp wins, so scripts can say
    ``repro analyze runs/`` instead of hardcoding directory names."""
    path = Path(run_dir)
    if not path.is_dir():
        raise FileNotFoundError(f"not a run directory: {path}")
    for name in ("manifest.json", "compare.json"):
        if (path / name).exists() or (path / (name + ".tmp")).exists():
            return path
    candidates = []
    for child in sorted(path.iterdir()):
        if not child.is_dir():
            continue
        manifest = child / "manifest.json"
        if not manifest.exists():
            manifest = child / "manifest.json.tmp"
            if not manifest.exists():
                continue
        candidates.append((manifest.stat().st_mtime, child.name, child))
    if not candidates:
        raise FileNotFoundError(
            f"not a run directory (no manifest.json, and no run "
            f"subdirectories either): {path}"
        )
    return max(candidates)[2]


def load_run(run_dir: Union[str, Path]) -> RunData:
    """Load a run directory's artifacts, tolerating missing/truncated files.

    The path may also be a *collection* directory of runs — see
    :func:`resolve_run_dir`; the latest run is loaded."""
    path = resolve_run_dir(run_dir)
    run = RunData(path=path)
    run.manifest = _load_json(path / "manifest.json")
    run.metrics = _load_json(path / "metrics.json")
    compare = _load_json(path / "compare.json")
    run.compare = compare or None
    events_path = path / "events.jsonl"
    if events_path.exists():
        # the same incremental reader `repro watch` polls with; offset 0
        # reads the whole complete-line prefix of a possibly-torn file
        run.events, _ = read_events(events_path, follow=True)
        run.truncated_events = count_malformed_lines(events_path)
    result_data = _load_json(path / "result.json")
    if result_data:
        run.result = TuningResult.from_dict(result_data)
    from repro.core.wal import read_wal

    run.wal = read_wal(path / "wal.jsonl")
    return run


# -- the analyzer ---------------------------------------------------------------


def _fmt(value, spec: str = ".3f", missing: str = "?") -> str:
    if value is None:
        return missing
    try:
        if isinstance(value, float) and not math.isfinite(value):
            return repr(value)
        return format(value, spec)
    except (TypeError, ValueError):
        return str(value)


def _code(text: str) -> List[str]:
    return ["```", text, "```", ""]


def _metrics_highlights(metrics: Dict[str, object]) -> str:
    # resumed runs carry per-epoch snapshots plus merged totals; the
    # totals are the honest "work performed" view, so they lead
    source = metrics.get("cumulative") or metrics
    counters = source.get("counters") or {}
    if not counters:
        return "(no metrics.json)"
    rows = sorted(counters.items())
    width = max(len(k) for k, _ in rows) + 2
    lines = [f"{k:{width}s}{v}" for k, v in rows]
    refits = counters.get("citroen.gp.refits")
    extends = counters.get("citroen.gp.extends")
    if refits is not None and extends is not None:
        # the surrogate hot-path health indicator: most observations should
        # be absorbed by O(n^2) extends, full refits stay on the schedule
        total = refits + extends
        share = extends / total if total else 0.0
        lines.append(
            f"{'gp refit-vs-extend':{width}s}{int(refits)} refits / "
            f"{int(extends)} extends ({share:.0%} incremental)"
        )
    epoch = metrics.get("epoch")
    if isinstance(epoch, (int, float)) and epoch > 1:
        lines.append(
            f"{'(cumulative)':{width}s}merged across {int(epoch)} epochs; "
            "per-epoch snapshots in metrics.json"
        )
    return "\n".join(lines)


def _pass_section(run: RunData) -> List[str]:
    """The per-pass view of a run, best source first.

    An ``explain.json`` (from ``repro explain``) yields the full
    attribution table per module; otherwise ``pass.run`` spans from a
    ``--pipeline-trace`` tune yield the aggregate summary.  Untraced,
    unexplained runs get no section at all — no noise for the common
    case."""
    from repro.reporting import pass_attribution_table, pass_span_summary

    explain = _load_json(run.path / "explain.json")
    lines: List[str] = []
    if explain.get("modules"):
        lines.append(
            f"- attribution from `explain.json`: "
            f"{_fmt(explain.get('speedup'), '.3f')}x deterministic speedup, "
            f"{explain.get('n_noop', '?')} no-op pass applications"
        )
        lines.append("")
        for mod in explain["modules"]:
            lines.append(f"module `{mod.get('module', '?')}`:")
            lines.append("")
            lines.extend(_code(pass_attribution_table(mod.get("passes") or [])))
        return lines
    if any(
        e.get("type") == "span" and e.get("name") == "pass.run"
        for e in run.events
    ):
        lines.append(
            "- per-pass spans from `--pipeline-trace` (run `repro explain` "
            "for leave-one-out attribution):"
        )
        lines.append("")
        lines.extend(_code(pass_span_summary(run.events)))
        return lines
    return []


def analyze_run(run_dir: Union[str, Path]) -> str:
    """Render one recorded run (or a ``repro compare`` parent directory)
    as a markdown report."""
    run = load_run(run_dir)
    if run.compare is not None:
        return _analyze_compare(run)
    from repro.reporting import ascii_curve, span_table

    man = run.manifest
    lines = [f"# Run report: {run.path.name}", ""]
    lines.append(
        f"- program: **{man.get('program', '?')}**  tuner: "
        f"**{man.get('tuner', '?')}**  seed: {man.get('seed', '?')}  "
        f"budget: {man.get('budget', '?')}"
    )
    lines.append(
        f"- version: {man.get('version', '?')}  git: "
        f"`{str(man.get('git_rev', '?'))[:12]}`"
    )
    if run.interrupted:
        note = []
        if run.result is None:
            note.append("no result.json")
        elif run.result.extras.get("interrupted"):
            note.append("stopped before its budget")
        if run.truncated_events:
            note.append(f"{run.truncated_events} truncated event line(s)")
        if run.wal:
            note.append(f"{run.wal_measurements} measurement(s) completed per WAL")
        lines.append(
            f"- **interrupted run** ({', '.join(note) or 'partial artifacts'})"
            " — partial report"
        )
        if run.resumable:
            lines.append(
                f"- resumable: `repro tune --resume {run.path}` continues "
                "the remaining budget bit-identically"
            )
    epoch = run.metrics.get("epoch")
    if isinstance(epoch, (int, float)) and epoch > 1:
        # the epoch boundary: this run was resumed; the events.jsonl ts
        # clock restarted at each `resume_epoch` marker
        lines.append(
            f"- **resumed run**: epoch {int(epoch)} of a resumed session — "
            "metrics below merge all epochs; per-epoch snapshots are kept "
            "under `epochs` in metrics.json"
        )
    lines.append("")

    lines.append("## Outcome")
    lines.append("")
    if run.result is not None and run.result.measurements:
        res = run.result
        lines.append(
            f"- best runtime: **{_fmt(res.best_runtime * 1e6, '.2f')} us** "
            f"({_fmt(res.speedup_over_o3(), '.3f')}x over -O3)"
        )
        lines.append(
            f"- measurements: {len(res.measurements)} "
            f"({res.n_infeasible} infeasible, "
            f"{res.extras.get('dedup_hits', 0)} dedup hits)"
        )
        wall = run.wall_seconds()
        lines.append(
            f"- wall time (traced): {_fmt(wall)} s  "
            f"cache hit rate: {_fmt(run.cache_hit_rate(), '.1%')}"
        )
    else:
        lines.append("- (no measurements recorded)")
    lines.append("")

    lines.append("## Where did the time go (Fig 5.12)")
    lines.append("")
    lines.extend(_code(span_table(run.events) if run.events else "(no events.jsonl)"))

    pass_section = _pass_section(run)
    if pass_section:
        lines.append("## Pass pipeline (repro explain)")
        lines.append("")
        lines.extend(pass_section)

    diag_source = run.events if run.events else run.result
    lines.append("## Surrogate calibration (Table 5.1 / Fig 5.7)")
    lines.append("")
    lines.extend(_code(calibration_table(diag_source)))

    lines.append("## Generator provenance (Fig 5.9)")
    lines.append("")
    attribution_source = (
        run.result
        if run.result is not None and run.result.extras.get("provenance")
        else diag_source
    )
    lines.extend(_code(attribution_table(attribution_source)))

    if run.result is not None and run.result.measurements:
        lines.append("## Convergence")
        lines.append("")
        lines.extend(_code(ascii_curve({run.result.tuner: run.result})))

    lines.append("## Metrics")
    lines.append("")
    lines.extend(_code(_metrics_highlights(run.metrics)))
    return "\n".join(lines).rstrip() + "\n"


def _analyze_compare(run: RunData) -> str:
    """Report for a ``repro compare`` parent: leaderboard + child summaries."""
    cmp = run.compare or {}
    lines = [f"# Comparison report: {run.path.name}", ""]
    lines.append(
        f"- program: **{cmp.get('program', '?')}**  "
        f"budget: {cmp.get('budget', '?')}  seed: {cmp.get('seed', '?')}"
    )
    lines.append("")
    lines.append("## Leaderboard")
    lines.append("")
    board = cmp.get("leaderboard") or []
    if board:
        header = (
            f"{'tuner':14s}{'speedup/-O3':>13s}{'best us':>12s}"
            f"{'measured':>10s}{'infeasible':>12s}"
        )
        rows = [header]
        for entry in board:
            best = entry.get("best_runtime")
            rows.append(
                f"{str(entry.get('tuner', '?')):14s}"
                f"{_fmt(entry.get('speedup_vs_o3'), '.3f'):>12s}x"
                f"{_fmt(best * 1e6 if isinstance(best, (int, float)) else None, '.2f'):>12s}"
                f"{_fmt(entry.get('n_measurements'), 'd'):>10s}"
                f"{_fmt(entry.get('n_infeasible'), 'd'):>12s}"
            )
        lines.extend(_code("\n".join(rows)))
    else:
        lines.extend(_code("(empty leaderboard)"))
    lines.append("## Per-tuner runs")
    lines.append("")
    for child in sorted(p for p in run.path.iterdir() if p.is_dir()):
        if not (child / "manifest.json").exists():
            continue
        try:
            sub = load_run(child)
        except FileNotFoundError:
            continue
        best = sub.best_runtime()
        lines.append(
            f"- `{child.name}/`: best {_fmt(best * 1e6 if best else None, '.2f')} us, "
            f"wall {_fmt(sub.wall_seconds())} s, "
            f"cache {_fmt(sub.cache_hit_rate(), '.1%')}"
            + (" — interrupted" if sub.interrupted else "")
        )
    lines.append("")
    lines.append("Analyze a sub-run directly: `repro analyze <dir>/<tuner>`.")
    return "\n".join(lines).rstrip() + "\n"


# -- the differ -----------------------------------------------------------------


@dataclass
class DiffThresholds:
    """Regression gates for :func:`diff_runs` (``b`` judged against ``a``).

    Ratio gates compare ``b / a`` (lower-is-better quantities); the cache
    gate bounds the absolute hit-rate *drop* ``a - b``.  Any gate set to
    ``None`` is skipped.  Defaults are tight enough to catch a real
    regression at identical seeds yet loose enough for timing noise; CI
    jobs comparing *different* seeds should loosen them further."""

    max_runtime_ratio: Optional[float] = 1.05
    max_wall_ratio: Optional[float] = 2.0
    max_cache_hit_drop: Optional[float] = 0.2
    max_calibration_ratio: Optional[float] = 1.5


def _ratio_check(
    name: str, a: Optional[float], b: Optional[float], threshold: Optional[float]
) -> Dict[str, object]:
    check: Dict[str, object] = {
        "name": name,
        "a": a,
        "b": b,
        "threshold": threshold,
        "kind": "ratio",
    }
    if threshold is None or a is None or b is None:
        check.update(ratio=None, ok=True, skipped=True)
        return check
    if a == b:  # covers inf == inf (both runs never found a feasible binary)
        ratio = 1.0
    elif a <= 0 or not math.isfinite(a):
        ratio = 0.0 if b < a else math.inf
    else:
        ratio = b / a
    check.update(ratio=ratio, ok=bool(ratio <= threshold), skipped=False)
    return check


def _drop_check(
    name: str, a: Optional[float], b: Optional[float], threshold: Optional[float]
) -> Dict[str, object]:
    check: Dict[str, object] = {
        "name": name,
        "a": a,
        "b": b,
        "threshold": threshold,
        "kind": "drop",
    }
    if threshold is None or a is None or b is None:
        check.update(drop=None, ok=True, skipped=True)
        return check
    drop = a - b
    check.update(drop=drop, ok=bool(drop <= threshold), skipped=False)
    return check


def gate_metrics(run: RunData) -> Dict[str, Optional[float]]:
    """The four gated quantities of one run, as a plain dict.

    This is the boundary the warehouse reuses: a fleet baseline is just a
    dict of these keys aggregated over past runs, interchangeable with a
    live :class:`RunData`'s metrics in :func:`build_checks`."""
    return {
        "best_runtime": run.best_runtime(),
        "wall_seconds": run.wall_seconds(),
        "cache_hit_rate": run.cache_hit_rate(),
        "calibration_rmse": run.calibration_rmse(),
    }


def build_checks(
    a: Dict[str, Optional[float]],
    b: Dict[str, Optional[float]],
    thresholds: Optional[DiffThresholds] = None,
) -> List[Dict[str, object]]:
    """The four regression checks over two :func:`gate_metrics` dicts."""
    thresholds = thresholds if thresholds is not None else DiffThresholds()
    return [
        _ratio_check(
            "best_runtime",
            a.get("best_runtime"),
            b.get("best_runtime"),
            thresholds.max_runtime_ratio,
        ),
        _ratio_check(
            "wall_seconds",
            a.get("wall_seconds"),
            b.get("wall_seconds"),
            thresholds.max_wall_ratio,
        ),
        _drop_check(
            "cache_hit_rate",
            a.get("cache_hit_rate"),
            b.get("cache_hit_rate"),
            thresholds.max_cache_hit_drop,
        ),
        _ratio_check(
            "calibration_rmse",
            a.get("calibration_rmse"),
            b.get("calibration_rmse"),
            thresholds.max_calibration_ratio,
        ),
    ]


def diff_runs(
    run_a: Union[str, Path],
    run_b: Union[str, Path],
    thresholds: Optional[DiffThresholds] = None,
) -> Dict[str, object]:
    """Compare run ``b`` against baseline ``a``; return a verdict dict.

    The verdict is machine-readable JSON: one entry per check
    (``best_runtime``, ``wall_seconds``, ``cache_hit_rate``,
    ``calibration_rmse``) with both values, the computed ratio/drop, the
    threshold, and an ``ok`` flag; plus the overall ``regressed`` bit the
    CLI turns into its exit code.  Checks whose inputs are missing on
    either side (no result.json, diagnostics disabled) are *skipped*, not
    failed — an interrupted baseline should not block CI on its own."""
    a, b = load_run(run_a), load_run(run_b)
    checks = build_checks(gate_metrics(a), gate_metrics(b), thresholds)
    regressed = [c["name"] for c in checks if not c["ok"]]
    return {
        "run_a": str(a.path),
        "run_b": str(b.path),
        "program": a.manifest.get("program"),
        "interrupted": {"a": a.interrupted, "b": b.interrupted},
        "checks": checks,
        "regressions": regressed,
        "regressed": bool(regressed),
        "ok": not regressed,
    }
