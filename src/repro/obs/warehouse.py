"""Cross-run metrics warehouse: a fleet memory for recorded runs.

Every run directory dies alone: its manifest, metrics, and result say
everything about *that* tune and nothing about the trajectory — is this
speedup normal for ``security_sha`` at this git revision?  Did wall time
creep over the last ten runs?  The warehouse answers those by ingesting
run artifacts (and ``repro bench`` payloads) into one stdlib ``sqlite3``
file:

* ``repro obs index RUNS...`` — upsert run directories / bench JSONs
  (re-indexing a path refreshes its row, so the index is idempotent);
* ``repro obs history [--benchmark X]`` — the speedup / wall trajectory
  across git revisions;
* ``repro diff RUN --against warehouse:last-N`` — the regression gate of
  :func:`repro.obs.analysis.diff_runs`, but judged against a rolling
  median of the fleet's last ``N`` comparable runs instead of one pinned
  anchor.

Design notes: schema-versioned via a ``meta`` table (a newer-schema file
is refused, not silently misread); every ingest is one transaction, so a
killed indexer leaves a consistent file; raw ``manifest``/``metrics``/
``payload`` JSON rides along in blob columns so later schema versions can
re-derive columns without re-reading run directories that may be gone.
This is the substrate the ROADMAP's tuning-as-a-service daemon and
GRACE-style clustered transfer both queue on: the daemon scrapes and
appends, transfer clusters over ``runs`` history.
"""

from __future__ import annotations

import json
import math
import sqlite3
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.analysis import (
    DiffThresholds,
    build_checks,
    gate_metrics,
    load_run,
    resolve_run_dir,
)

__all__ = [
    "SCHEMA_VERSION",
    "Warehouse",
    "diff_against_warehouse",
    "history_table",
    "pass_history_table",
]

SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id               INTEGER PRIMARY KEY,
    path             TEXT NOT NULL UNIQUE,
    indexed_at       REAL NOT NULL,
    program          TEXT,
    tuner            TEXT,
    seed             INTEGER,
    budget           INTEGER,
    git_rev          TEXT,
    version          TEXT,
    command          TEXT,
    interrupted      INTEGER NOT NULL DEFAULT 0,
    epoch            INTEGER NOT NULL DEFAULT 1,
    n_measurements   INTEGER,
    n_infeasible     INTEGER,
    best_runtime     REAL,
    speedup_vs_o3    REAL,
    wall_seconds     REAL,
    cache_hit_rate   REAL,
    calibration_rmse REAL,
    manifest_json    TEXT,
    metrics_json     TEXT
);
CREATE INDEX IF NOT EXISTS runs_program ON runs (program, id);
CREATE TABLE IF NOT EXISTS bench (
    id           INTEGER PRIMARY KEY,
    path         TEXT NOT NULL,
    indexed_at   REAL NOT NULL,
    suite        TEXT,
    schema       TEXT,
    program      TEXT,
    seed         INTEGER,
    git_rev      TEXT,
    wall_seconds REAL,
    payload_json TEXT,
    UNIQUE (path, git_rev)
);
CREATE TABLE IF NOT EXISTS pass_stats (
    id               INTEGER PRIMARY KEY,
    run_path         TEXT NOT NULL,
    program          TEXT,
    module           TEXT NOT NULL,
    position         INTEGER NOT NULL,
    pass             TEXT NOT NULL,
    wall             REAL,
    changed          INTEGER NOT NULL DEFAULT 0,
    noop             INTEGER NOT NULL DEFAULT 0,
    marginal_seconds REAL,
    d_instrs         INTEGER,
    UNIQUE (run_path, module, position)
);
CREATE INDEX IF NOT EXISTS pass_stats_pass ON pass_stats (pass, id);
"""


class Warehouse:
    """One sqlite-backed fleet index; use as a context manager."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        with self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row["value"]) > SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path} was written by warehouse schema "
                    f"{row['value']}; this build reads up to {SCHEMA_VERSION}"
                )
            elif int(row["value"]) < SCHEMA_VERSION:
                # additive migration: the executescript above already
                # created any missing tables/indexes (v2 adds pass_stats),
                # so older files upgrade in place — existing rows untouched
                self._conn.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                    (str(SCHEMA_VERSION),),
                )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingest -----------------------------------------------------------------
    def index_path(self, path: Union[str, Path]) -> List[Dict[str, object]]:
        """Ingest one path: a run dir, a ``compare`` parent (each per-tuner
        child is indexed), a collection dir, or a bench JSON file."""
        p = Path(path)
        if p.is_file():
            return [self.index_bench(p)]
        resolved = resolve_run_dir(p)
        if (resolved / "compare.json").exists():
            out = []
            for child in sorted(resolved.iterdir()):
                if child.is_dir() and (child / "manifest.json").exists():
                    out.append(self.index_run(child))
            return out
        return [self.index_run(resolved)]

    def index_run(self, run_dir: Union[str, Path]) -> Dict[str, object]:
        """Upsert one run directory; returns the stored row as a dict."""
        run = load_run(run_dir)
        man = run.manifest
        metrics = gate_metrics(run)
        res = run.result
        speedup = None
        if res is not None and res.measurements:
            sp = res.speedup_over_o3()
            speedup = float(sp) if math.isfinite(sp) else None
        n_meas = len(res.measurements) if res is not None else run.wal_measurements
        row = {
            "path": str(run.path.resolve()),
            "indexed_at": time.time(),
            "program": man.get("program"),
            "tuner": man.get("tuner"),
            "seed": man.get("seed"),
            "budget": man.get("budget"),
            "git_rev": man.get("git_rev"),
            "version": man.get("version"),
            "command": man.get("command"),
            "interrupted": int(run.interrupted),
            "epoch": int(run.metrics.get("epoch") or 1),
            "n_measurements": n_meas,
            "n_infeasible": res.n_infeasible if res is not None else None,
            "best_runtime": _finite(metrics["best_runtime"]),
            "speedup_vs_o3": speedup,
            "wall_seconds": _finite(metrics["wall_seconds"]),
            "cache_hit_rate": _finite(metrics["cache_hit_rate"]),
            "calibration_rmse": _finite(metrics["calibration_rmse"]),
            "manifest_json": json.dumps(man, sort_keys=True),
            "metrics_json": json.dumps(run.metrics, sort_keys=True),
        }
        pass_rows = _pass_rows(run, row["path"], row["program"])
        cols = ", ".join(row)
        marks = ", ".join(f":{k}" for k in row)
        sets = ", ".join(f"{k} = :{k}" for k in row if k != "path")
        with self._conn:
            self._conn.execute(
                f"INSERT INTO runs ({cols}) VALUES ({marks}) "
                f"ON CONFLICT (path) DO UPDATE SET {sets}",
                row,
            )
            if pass_rows:
                # refresh wholesale: a re-explained run replaces its rows
                self._conn.execute(
                    "DELETE FROM pass_stats WHERE run_path = ?", (row["path"],)
                )
                self._conn.executemany(
                    "INSERT INTO pass_stats (run_path, program, module, "
                    "position, pass, wall, changed, noop, marginal_seconds, "
                    "d_instrs) VALUES (:run_path, :program, :module, "
                    ":position, :pass, :wall, :changed, :noop, "
                    ":marginal_seconds, :d_instrs)",
                    pass_rows,
                )
        return row

    def index_bench(self, path: Union[str, Path]) -> Dict[str, object]:
        """Upsert one ``repro bench`` JSON payload (keyed path+git_rev, so
        a payload regenerated at a new revision appends history)."""
        p = Path(path)
        with open(p) as fh:
            payload = json.load(fh)
        schema = payload.get("schema")
        if not isinstance(schema, str) or not schema.startswith("bench_"):
            raise ValueError(f"not a repro bench payload: {p}")
        row = {
            "path": str(p.resolve()),
            "indexed_at": time.time(),
            "suite": schema.replace("bench_", "", 1),
            "schema": schema,
            "program": payload.get("program"),
            "seed": payload.get("seed"),
            "git_rev": payload.get("git_rev"),
            "wall_seconds": _bench_wall(payload),
            "payload_json": json.dumps(payload, sort_keys=True),
        }
        cols = ", ".join(row)
        marks = ", ".join(f":{k}" for k in row)
        sets = ", ".join(
            f"{k} = :{k}" for k in row if k not in ("path", "git_rev")
        )
        with self._conn:
            self._conn.execute(
                f"INSERT INTO bench ({cols}) VALUES ({marks}) "
                f"ON CONFLICT (path, git_rev) DO UPDATE SET {sets}",
                row,
            )
        return row

    # -- queries ----------------------------------------------------------------
    def runs(
        self,
        program: Optional[str] = None,
        limit: Optional[int] = None,
        include_interrupted: bool = True,
    ) -> List[Dict[str, object]]:
        """Stored runs, oldest first (``limit`` keeps the newest N)."""
        sql = "SELECT * FROM runs"
        clauses, params = [], []
        if program is not None:
            clauses.append("program = ?")
            params.append(program)
        if not include_interrupted:
            clauses.append("interrupted = 0")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        rows = [dict(r) for r in self._conn.execute(sql, params)]
        rows.reverse()
        return rows

    def benches(self, program: Optional[str] = None) -> List[Dict[str, object]]:
        sql = "SELECT * FROM bench"
        params = []
        if program is not None:
            sql += " WHERE program = ?"
            params.append(program)
        sql += " ORDER BY id"
        return [dict(r) for r in self._conn.execute(sql, params)]

    def programs(self) -> List[str]:
        return [
            r["program"]
            for r in self._conn.execute(
                "SELECT DISTINCT program FROM runs WHERE program IS NOT NULL "
                "ORDER BY program"
            )
        ]

    def baseline(
        self,
        program: Optional[str],
        last_n: int,
        exclude_path: Optional[Union[str, Path]] = None,
    ) -> Dict[str, object]:
        """The rolling fleet baseline: per-metric *median* over the last
        ``last_n`` completed runs of ``program``.

        Medians (not means) so one anomalous fleet member cannot drag the
        gate; interrupted runs are excluded (their walls and bests are
        truncated, not comparable), as is the candidate's own path — a
        run must never be its own baseline."""
        rows = self.runs(program=program, include_interrupted=False)
        if exclude_path is not None:
            resolved = str(Path(exclude_path).resolve())
            rows = [r for r in rows if r["path"] != resolved]
        rows = rows[-int(last_n):] if last_n else rows
        metrics: Dict[str, Optional[float]] = {}
        for key in (
            "best_runtime",
            "wall_seconds",
            "cache_hit_rate",
            "calibration_rmse",
        ):
            values = [r[key] for r in rows if r[key] is not None]
            metrics[key] = statistics.median(values) if values else None
        return {
            "metrics": metrics,
            "n_runs": len(rows),
            "paths": [r["path"] for r in rows],
            "git_revs": [r["git_rev"] for r in rows],
        }


def _pass_rows(run, run_path: str, program) -> List[Dict[str, object]]:
    """Per-pass attribution rows for one run, best source first.

    ``explain.json`` (written by ``repro explain``) carries the full
    leave-one-out attribution; absent that, ``pass.run`` spans from a
    ``--pipeline-trace`` tune still yield timing/changed/IR-delta rows
    (without marginals — those need the ablation replay)."""
    explain = {}
    try:
        with open(run.path / "explain.json") as fh:
            explain = json.load(fh)
    except (OSError, json.JSONDecodeError):
        pass
    rows: List[Dict[str, object]] = []
    if explain.get("modules"):
        for mod in explain["modules"]:
            for p in mod.get("passes") or []:
                rows.append(
                    {
                        "run_path": run_path,
                        "program": program,
                        "module": mod.get("module"),
                        "position": int(p.get("index", 0)),
                        "pass": p.get("pass"),
                        "wall": p.get("wall"),
                        "changed": int(bool(p.get("changed"))),
                        "noop": int(bool(p.get("noop"))),
                        "marginal_seconds": _finite(p.get("marginal_seconds")),
                        "d_instrs": (p.get("ir_delta") or {}).get("instrs", 0),
                    }
                )
        return rows
    # fallback: the traced tune's retrospective pass.run spans (the last
    # pass.trace emission per module wins — it is the final incumbent)
    latest: Dict[tuple, Dict[str, object]] = {}
    for e in run.events:
        if e.get("type") != "span" or e.get("name") != "pass.run":
            continue
        attrs = e.get("attrs") or {}
        key = (attrs.get("module"), int(attrs.get("index", 0)))
        latest[key] = {
            "run_path": run_path,
            "program": program,
            "module": attrs.get("module"),
            "position": int(attrs.get("index", 0)),
            "pass": attrs.get("pass"),
            "wall": e.get("wall"),
            "changed": int(bool(attrs.get("changed"))),
            "noop": 0,
            "marginal_seconds": None,
            "d_instrs": (attrs.get("ir_delta") or {}).get("instrs", 0),
        }
    return [latest[k] for k in sorted(latest, key=lambda kv: (str(kv[0]), kv[1]))]


def _finite(value: Optional[float]) -> Optional[float]:
    """sqlite stores inf/nan as-is but medians over them are garbage."""
    if value is None or not math.isfinite(value):
        return None
    return float(value)


def _bench_wall(payload: Dict[str, object]) -> Optional[float]:
    """One headline wall number per bench payload, schema-dependent."""
    e2e = payload.get("e2e") or {}
    if payload.get("schema") == "bench_interp":
        engines = e2e.get("engines") or {}
        bytecode = engines.get("bytecode") or {}
        wall = bytecode.get("wall")
        return float(wall) if isinstance(wall, (int, float)) else None
    fast = e2e.get("fast") or e2e
    wall = fast.get("wall") or fast.get("wall_seconds")
    return float(wall) if isinstance(wall, (int, float)) else None


# -- rendering -------------------------------------------------------------------


def _fmt(value, spec: str = ".3f", missing: str = "?") -> str:
    if value is None:
        return missing
    try:
        return format(value, spec)
    except (TypeError, ValueError):
        return str(value)


def history_table(wh: Warehouse, benchmark: Optional[str] = None) -> str:
    """The fleet trajectory as text: runs (speedup/wall per git rev),
    then bench payload walls — newest last, ready for eyeballs or CI logs."""
    lines: List[str] = []
    programs = [benchmark] if benchmark else (wh.programs() or [None])
    for program in programs:
        rows = wh.runs(program=program)
        title = program or "(unidentified program)"
        lines.append(f"## {title}")
        if not rows:
            lines.append("  (no indexed runs)")
        else:
            header = (
                f"  {'git rev':>12s}  {'tuner':10s}{'seed':>6s}"
                f"{'speedup':>9s}{'wall s':>9s}{'cache':>7s}{'meas':>6s}  flags"
            )
            lines.append(header)
            for r in rows:
                flags = []
                if r["interrupted"]:
                    flags.append("interrupted")
                if (r["epoch"] or 1) > 1:
                    flags.append(f"epoch{r['epoch']}")
                lines.append(
                    f"  {str(r['git_rev'] or '?')[:12]:>12s}  "
                    f"{str(r['tuner'] or '?'):10s}"
                    f"{_fmt(r['seed'], 'd'):>6s}"
                    f"{_fmt(r['speedup_vs_o3'], '.3f'):>9s}"
                    f"{_fmt(r['wall_seconds'], '.2f'):>9s}"
                    f"{_fmt(r['cache_hit_rate'], '.0%'):>7s}"
                    f"{_fmt(r['n_measurements'], 'd'):>6s}"
                    f"  {' '.join(flags)}"
                )
            speedups = [r["speedup_vs_o3"] for r in rows if r["speedup_vs_o3"]]
            if len(speedups) >= 2:
                lines.append(
                    f"  trajectory: {_spark(speedups)}  "
                    f"({speedups[0]:.3f}x → {speedups[-1]:.3f}x over "
                    f"{len(speedups)} runs)"
                )
        benches = wh.benches(program=program)
        if benches:
            lines.append("  bench payloads:")
            for b in benches:
                lines.append(
                    f"  {str(b['git_rev'] or '?')[:12]:>12s}  "
                    f"{str(b['suite'] or '?'):10s}"
                    f"{'':6s}{'':>9s}{_fmt(b['wall_seconds'], '.2f'):>9s}"
                )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def pass_history_table(wh: Warehouse, benchmark: Optional[str] = None) -> str:
    """Fleet-wide per-pass attribution: which passes win, which are noise.

    Aggregates the ``pass_stats`` table over every indexed run (optionally
    one benchmark): appearances in incumbent configurations, how often the
    pass changed the IR, the no-op share, and the summed marginal runtime
    contribution from explained runs — the fleet's answer to the paper's
    "which passes matter" question."""
    sql = (
        "SELECT pass, COUNT(*) AS n, SUM(changed) AS changed, "
        "SUM(noop) AS noop, SUM(marginal_seconds) AS marginal, "
        "SUM(wall) AS wall, SUM(d_instrs) AS d_instrs, "
        "COUNT(DISTINCT run_path) AS runs "
        "FROM pass_stats"
    )
    params: List[object] = []
    if benchmark is not None:
        sql += " WHERE program = ?"
        params.append(benchmark)
    sql += " GROUP BY pass ORDER BY marginal DESC NULLS LAST, n DESC"
    try:
        rows = [dict(r) for r in wh._conn.execute(sql, params)]
    except sqlite3.OperationalError:
        # older sqlite without NULLS LAST: sort in python instead
        rows = [
            dict(r)
            for r in wh._conn.execute(sql.replace(" NULLS LAST", ""), params)
        ]
        rows.sort(
            key=lambda r: (
                -(r["marginal"] if r["marginal"] is not None else -math.inf),
                -r["n"],
            )
        )
    title = benchmark or "all programs"
    if not rows:
        return (
            f"## pass attribution ({title})\n"
            "  (no pass stats indexed; run `repro explain` on a run "
            "directory, or tune with --pipeline-trace, then re-index)\n"
        )
    lines = [
        f"## pass attribution ({title})",
        f"  {'pass':22s}{'uses':>6s}{'runs':>6s}{'changed':>9s}"
        f"{'no-op':>7s}{'marginal us':>13s}{'d-instr':>9s}",
    ]
    for r in rows:
        marginal = (
            _fmt(r["marginal"] * 1e6, ".3f") if r["marginal"] is not None else "?"
        )
        lines.append(
            f"  {str(r['pass'] or '?'):22s}{_fmt(r['n'], 'd'):>6s}"
            f"{_fmt(r['runs'], 'd'):>6s}{_fmt(r['changed'], 'd'):>9s}"
            f"{_fmt(r['noop'], 'd'):>7s}{marginal:>13s}"
            f"{_fmt(r['d_instrs'], '+d'):>9s}"
        )
    return "\n".join(lines) + "\n"


_SPARK = "▁▂▃▄▅▆▇█"


def _spark(values: List[float]) -> str:
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _SPARK[3] * len(values)
    return "".join(
        _SPARK[int((v - lo) / (hi - lo) * (len(_SPARK) - 1))] for v in values
    )


# -- the fleet regression gate ----------------------------------------------------


def diff_against_warehouse(
    run_dir: Union[str, Path],
    db_path: Union[str, Path],
    last_n: int,
    thresholds: Optional[DiffThresholds] = None,
) -> Dict[str, object]:
    """Gate a candidate run against the fleet's rolling baseline.

    Same verdict shape as :func:`repro.obs.analysis.diff_runs` (the CLI
    and CI consume them interchangeably), with ``run_a`` naming the
    synthetic baseline and a ``baseline`` block recording which runs it
    was distilled from.  An empty baseline (first run of a program on a
    fresh warehouse) skips every check rather than failing — the fleet
    gate must bootstrap."""
    candidate = load_run(run_dir)
    program = candidate.manifest.get("program")
    with Warehouse(db_path) as wh:
        base = wh.baseline(
            program, last_n=last_n, exclude_path=candidate.path
        )
    checks = build_checks(base["metrics"], gate_metrics(candidate), thresholds)
    regressed = [c["name"] for c in checks if not c["ok"]]
    return {
        "run_a": f"warehouse:last-{last_n} (median of {base['n_runs']} runs)",
        "run_b": str(candidate.path),
        "program": program,
        "interrupted": {"a": False, "b": candidate.interrupted},
        "baseline": {
            "db": str(Path(db_path)),
            "n_runs": base["n_runs"],
            "paths": base["paths"],
            "metrics": base["metrics"],
        },
        "checks": checks,
        "regressions": regressed,
        "regressed": bool(regressed),
        "ok": not regressed,
    }
