"""Cross-program transfer via program-independent pass correlations.

Implements the thesis' future-work direction §6.3.2 ("Exploiting
Program-Independent Pass Correlations"): while the best *sequence* is
program-specific, the marginal association between a pass *appearing* in a
sequence and the resulting speedup carries across programs (``mem2reg``
almost always helps; a random ordering rarely benefits from ``lcssa``).

:class:`PassCorrelationPrior` accumulates those associations from completed
:class:`~repro.core.result.TuningResult` traces and converts them into a
sampling distribution over passes, which the candidate generators use for
random sequence generation and mutation — warm-starting a *new* program's
search with knowledge from previous ones (also the coarse-offline /
fine-online combination sketched in §6.3.3).

The prior persists as a versioned JSON *bank* (:meth:`~PassCorrelationPrior.
save` / :meth:`~PassCorrelationPrior.load`): atomic writes so a crash never
tears the file, a schema tag so future formats stay detectable, and a
corruption-tolerant load that quarantines a bad bank (renames it aside) and
degrades to a cold start with a warning instead of killing the session —
fleet history is an accelerant, never a single point of failure.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.result import TuningResult

__all__ = ["PRIOR_SCHEMA", "PassCorrelationPrior"]

#: Schema tag written into every saved prior bank.
PRIOR_SCHEMA = "repro.pass-prior/v1"


class PassCorrelationPrior:
    """Per-pass speedup association scores, aggregated across programs."""

    def __init__(self, smoothing: float = 1.0) -> None:
        self.smoothing = smoothing
        self._score: Dict[str, float] = {}
        self._count: Dict[str, int] = {}
        self.n_runs = 0

    def observe_run(self, result: TuningResult) -> None:
        """Accumulate pass/speedup associations from one tuning trace."""
        speedups = np.asarray(
            [m.speedup_vs_o3 for m in result.measurements if m.correct and m.speedup_vs_o3 > 0]
        )
        if len(speedups) < 2:
            return
        mean = float(speedups.mean())
        std = float(speedups.std()) or 1.0
        for m in result.measurements:
            if not m.correct or m.speedup_vs_o3 <= 0:
                continue
            z = (m.speedup_vs_o3 - mean) / std
            for p in set(m.sequence):
                self._score[p] = self._score.get(p, 0.0) + z
                self._count[p] = self._count.get(p, 0) + 1
        self.n_runs += 1

    def scores(self) -> Dict[str, float]:
        """Mean association score per pass (positive = historically helpful)."""
        return {
            p: self._score[p] / max(1, self._count[p]) for p in sorted(self._score)
        }

    def top_passes(self, k: int = 10) -> List[str]:
        """Passes ranked by historical helpfulness."""
        s = self.scores()
        return sorted(s, key=lambda p: -s[p])[:k]

    def pass_weights(self, passes: Sequence[str]) -> np.ndarray:
        """Sampling distribution over ``passes`` for sequence generation.

        Softmax of the mean association scores with additive smoothing, so
        unseen passes keep a floor probability (the prior never forbids a
        pass — it only tilts exploration).
        """
        s = self.scores()
        raw = np.asarray([s.get(p, 0.0) for p in passes], dtype=float)
        if raw.std() > 1e-12:
            raw = (raw - raw.mean()) / raw.std()
        w = np.exp(raw) + self.smoothing
        return w / w.sum()

    def merge(self, other: "PassCorrelationPrior") -> None:
        """Fold another prior's evidence into this one."""
        for p, v in other._score.items():
            self._score[p] = self._score.get(p, 0.0) + v
            self._count[p] = self._count.get(p, 0) + other._count[p]
        self.n_runs += other.n_runs

    # -- persistence (the fleet-history bank) ----------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Versioned JSON-facing form of the accumulated evidence."""
        return {
            "schema": PRIOR_SCHEMA,
            "smoothing": self.smoothing,
            "n_runs": self.n_runs,
            "score": dict(self._score),
            "count": dict(self._count),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PassCorrelationPrior":
        """Rebuild a prior from :meth:`to_dict` output.

        Raises ``ValueError`` on a wrong/missing schema tag or malformed
        payload — :meth:`load` turns that into quarantine + cold start."""
        if not isinstance(data, dict) or data.get("schema") != PRIOR_SCHEMA:
            raise ValueError(
                f"not a {PRIOR_SCHEMA} bank: schema="
                f"{data.get('schema') if isinstance(data, dict) else type(data)!r}"
            )
        prior = cls(smoothing=float(data.get("smoothing", 1.0)))
        prior.n_runs = int(data.get("n_runs", 0))
        prior._score = {str(p): float(v) for p, v in (data.get("score") or {}).items()}
        prior._count = {str(p): int(v) for p, v in (data.get("count") or {}).items()}
        return prior

    def save(self, path: Union[str, Path]) -> None:
        """Write the bank atomically (tmp + fsync + ``os.replace``).

        A crash mid-save leaves either the previous bank or the new one,
        never a torn file — concurrent sessions can therefore share a bank
        path with last-write-wins semantics."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        tmp = p.with_name(p.name + ".tmp")
        with open(tmp, "w") as fh:
            fh.write(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, p)

    @classmethod
    def load(
        cls, path: Union[str, Path], smoothing: float = 1.0
    ) -> "PassCorrelationPrior":
        """Load a bank; degrade to a cold prior instead of crashing.

        A missing file is a normal cold start (first session of a fleet).
        A truncated/corrupt/wrong-schema bank is quarantined — renamed to
        ``<path>.corrupt`` so the evidence stays inspectable and the next
        save starts clean — and a cold prior is returned with a warning."""
        p = Path(path)
        if not p.exists():
            return cls(smoothing=smoothing)
        try:
            data = json.loads(p.read_text())
            return cls.from_dict(data)
        except (json.JSONDecodeError, ValueError, TypeError, KeyError) as exc:
            quarantine = p.with_name(p.name + ".corrupt")
            try:
                os.replace(p, quarantine)
                where = f"quarantined to {quarantine}"
            except OSError:
                where = "left in place"
            warnings.warn(
                f"corrupt pass-prior bank {p} ({exc}); {where}; "
                "starting from a cold prior",
                stacklevel=2,
            )
            return cls(smoothing=smoothing)
