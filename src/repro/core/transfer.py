"""Cross-program transfer via program-independent pass correlations.

Implements the thesis' future-work direction §6.3.2 ("Exploiting
Program-Independent Pass Correlations"): while the best *sequence* is
program-specific, the marginal association between a pass *appearing* in a
sequence and the resulting speedup carries across programs (``mem2reg``
almost always helps; a random ordering rarely benefits from ``lcssa``).

:class:`PassCorrelationPrior` accumulates those associations from completed
:class:`~repro.core.result.TuningResult` traces and converts them into a
sampling distribution over passes, which the candidate generators use for
random sequence generation and mutation — warm-starting a *new* program's
search with knowledge from previous ones (also the coarse-offline /
fine-online combination sketched in §6.3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.result import TuningResult

__all__ = ["PassCorrelationPrior"]


class PassCorrelationPrior:
    """Per-pass speedup association scores, aggregated across programs."""

    def __init__(self, smoothing: float = 1.0) -> None:
        self.smoothing = smoothing
        self._score: Dict[str, float] = {}
        self._count: Dict[str, int] = {}
        self.n_runs = 0

    def observe_run(self, result: TuningResult) -> None:
        """Accumulate pass/speedup associations from one tuning trace."""
        speedups = np.asarray(
            [m.speedup_vs_o3 for m in result.measurements if m.correct and m.speedup_vs_o3 > 0]
        )
        if len(speedups) < 2:
            return
        mean = float(speedups.mean())
        std = float(speedups.std()) or 1.0
        for m in result.measurements:
            if not m.correct or m.speedup_vs_o3 <= 0:
                continue
            z = (m.speedup_vs_o3 - mean) / std
            for p in set(m.sequence):
                self._score[p] = self._score.get(p, 0.0) + z
                self._count[p] = self._count.get(p, 0) + 1
        self.n_runs += 1

    def scores(self) -> Dict[str, float]:
        """Mean association score per pass (positive = historically helpful)."""
        return {
            p: self._score[p] / max(1, self._count[p]) for p in sorted(self._score)
        }

    def top_passes(self, k: int = 10) -> List[str]:
        """Passes ranked by historical helpfulness."""
        s = self.scores()
        return sorted(s, key=lambda p: -s[p])[:k]

    def pass_weights(self, passes: Sequence[str]) -> np.ndarray:
        """Sampling distribution over ``passes`` for sequence generation.

        Softmax of the mean association scores with additive smoothing, so
        unseen passes keep a floor probability (the prior never forbids a
        pass — it only tilts exploration).
        """
        s = self.scores()
        raw = np.asarray([s.get(p, 0.0) for p in passes], dtype=float)
        if raw.std() > 1e-12:
            raw = (raw - raw.mean()) / raw.std()
        w = np.exp(raw) + self.smoothing
        return w / w.sum()

    def merge(self, other: "PassCorrelationPrior") -> None:
        """Fold another prior's evidence into this one."""
        for p, v in other._score.items():
            self._score[p] = self._score.get(p, 0.0) + v
            self._count[p] = self._count.get(p, 0) + other._count[p]
        self.n_runs += other.n_runs
