"""Parallel compile-and-featurize evaluation engine (§5.3's practicality claim).

The paper argues candidate compilation is "cheap and parallelisable": every
iteration CITROEN compiles ``per_strategy x strategies x hot_modules``
candidate sequences before a single expensive measurement, so the compile
stage is an embarrassingly parallel batch.  :class:`CompileEngine` makes
that batch explicit:

* **batch evaluation** — :meth:`compile_batch` takes ``(module_name,
  sequence)`` pairs and returns results *in input order* regardless of
  execution order, so tuner behaviour is identical at any ``jobs`` setting
  (the compile function must be a pure function of its inputs);
* **configurable executor** — ``jobs=1`` is a deterministic serial loop
  (no pool, no threads); ``jobs>1`` fans out over a thread pool by
  default, or a process pool when ``executor="process"`` and the compile
  function is picklable;
* **compilation cache** — a bounded LRU keyed by ``(module_name,
  decoded-sequence)`` so repeated candidates from DES/GA never recompile
  (distinct from statistics-signature dedup, which collapses *different*
  sequences producing identical binaries);
* **honest timing** — cumulative per-candidate compile seconds
  (``cpu_seconds``, summed across workers) versus wall-clock spent inside
  engine calls (``wall_seconds``), plus hit/miss/eviction counters, so
  ``timing_breakdown()``/Fig 5.12 can report the parallel speedup and the
  cache's contribution rather than pretending the batch ran serially.

All counters and the cache are guarded by one lock; the engine is safe to
call from concurrent client threads (compiling the same key twice in a
race is harmless — the compile function is pure — and counters stay
consistent).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from threading import Lock
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["CompileEngine"]


def _timed_invoke(fn: Callable, name: str, seq) -> Tuple[object, float]:
    """Run ``fn(name, seq)`` and time it *inside the worker*, so the sum
    over workers is the cumulative compute the batch really consumed
    (module-level so process pools can pickle it)."""
    t0 = time.perf_counter()
    out = fn(name, seq)
    return out, time.perf_counter() - t0


class CompileEngine:
    """Batch compiler with a bounded LRU cache and a pluggable executor.

    Parameters
    ----------
    compile_fn:
        ``compile_fn(module_name, sequence) -> result``; must be pure
        (deterministic, no observable side effects) — the cache and the
        parallel executor both assume call order is irrelevant.
    jobs:
        worker count; ``1`` selects the deterministic serial path.
    cache_size:
        maximum cached results (``0`` disables caching).
    executor:
        ``"auto"`` (serial at ``jobs=1``, threads otherwise), ``"serial"``,
        ``"thread"``, or ``"process"``.
    key_fn:
        maps ``(module_name, sequence)`` to the hashable cache key;
        defaults to ``(module_name, tuple(sequence))``.
    """

    def __init__(
        self,
        compile_fn: Callable[[str, Sequence[int]], object],
        jobs: int = 1,
        cache_size: int = 2048,
        executor: str = "auto",
        key_fn: Optional[Callable[[str, Sequence[int]], Hashable]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if executor not in ("auto", "serial", "thread", "process"):
            raise ValueError(f"unknown executor {executor!r}")
        self.compile_fn = compile_fn
        self.jobs = int(jobs)
        self.cache_size = int(cache_size)
        self.executor = executor
        self.key_fn = key_fn or (lambda name, seq: (name, tuple(int(i) for i in seq)))

        self._cache: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = Lock()
        self._pool: Optional[Executor] = None

        self.n_compiles = 0
        self.cpu_seconds = 0.0  # cumulative per-candidate compile time (sum over workers)
        self.wall_seconds = 0.0  # wall clock spent inside engine calls
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- executor plumbing ------------------------------------------------------
    def _serial(self) -> bool:
        return self.executor == "serial" or (self.executor == "auto" and self.jobs <= 1) or self.jobs <= 1

    def _get_pool(self) -> Executor:
        if self._pool is None:
            if self.executor == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="compile-engine"
                )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; engine stays usable —
        the pool is recreated on demand)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __getstate__(self):  # allow pickling compile_fn closures over us (process mode)
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_pool"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = Lock()
        self._pool = None

    # -- cache ----------------------------------------------------------------------
    def _cache_put(self, key: Hashable, value: object) -> None:
        if self.cache_size <= 0:
            return
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.evictions += 1

    def cache_clear(self) -> None:
        with self._lock:
            self._cache.clear()

    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._cache),
                "maxsize": self.cache_size,
            }

    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0.0 when none yet)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters for ``timing_breakdown()`` / Fig 5.12 reporting."""
        with self._lock:
            return {
                "n_compiles": self.n_compiles,
                "compile_cpu_seconds": self.cpu_seconds,
                "compile_wall_seconds": self.wall_seconds,
                "cache_hits": self.hits,
                "cache_misses": self.misses,
                "cache_evictions": self.evictions,
                "jobs": self.jobs,
            }

    # -- evaluation -------------------------------------------------------------------
    def compile_one(self, module_name: str, seq: Sequence[int]) -> object:
        """Compile a single candidate (through the cache)."""
        return self.compile_batch([(module_name, seq)])[0]

    def compile_batch(
        self, items: Sequence[Tuple[str, Sequence[int]]]
    ) -> List[object]:
        """Compile a batch of ``(module_name, sequence)`` candidates.

        Results come back in input order.  Cache hits (including duplicates
        *within* the batch) are served without recompiling; the remaining
        unique misses run on the configured executor.
        """
        t_wall = time.perf_counter()
        results: List[object] = [None] * len(items)
        # key -> result slots it must fill; insertion order == first-seen order
        pending: "OrderedDict[Hashable, List[int]]" = OrderedDict()
        work: List[Tuple[str, Sequence[int]]] = []
        with self._lock:
            for i, (name, seq) in enumerate(items):
                key = self.key_fn(name, seq)
                if key in self._cache:
                    self._cache.move_to_end(key)
                    results[i] = self._cache[key]
                    self.hits += 1
                elif key in pending:
                    pending[key].append(i)
                    self.hits += 1  # within-batch duplicate: compiled once
                else:
                    pending[key] = [i]
                    work.append((name, seq))
                    self.misses += 1

        if work:
            if self._serial() or len(work) == 1:
                outs = [_timed_invoke(self.compile_fn, n, s) for n, s in work]
            else:
                pool = self._get_pool()
                fn = partial(_timed_invoke, self.compile_fn)
                outs = list(pool.map(fn, *zip(*work)))
            with self._lock:
                for (key, slots), (out, dt) in zip(pending.items(), outs):
                    self.n_compiles += 1
                    self.cpu_seconds += dt
                    self._cache_put(key, out)
                    for i in slots:
                        results[i] = out

        with self._lock:
            self.wall_seconds += time.perf_counter() - t_wall
        return results
