"""Parallel compile-and-featurize evaluation engine (§5.3's practicality claim).

The paper argues candidate compilation is "cheap and parallelisable": every
iteration CITROEN compiles ``per_strategy x strategies x hot_modules``
candidate sequences before a single expensive measurement, so the compile
stage is an embarrassingly parallel batch.  :class:`CompileEngine` makes
that batch explicit:

* **batch evaluation** — :meth:`compile_batch` takes ``(module_name,
  sequence)`` pairs and returns results *in input order* regardless of
  execution order, so tuner behaviour is identical at any ``jobs`` setting
  (the compile function must be a pure function of its inputs);
* **configurable executor** — ``jobs=1`` is a deterministic serial loop
  (no pool, no threads); ``jobs>1`` fans out over a thread pool by
  default, or a process pool when ``executor="process"`` and the compile
  function is picklable;
* **compilation cache** — a bounded LRU keyed by ``(module_name,
  decoded-sequence)`` so repeated candidates from DES/GA never recompile
  (distinct from statistics-signature dedup, which collapses *different*
  sequences producing identical binaries);
* **honest timing** — cumulative per-candidate compile seconds
  (``cpu_seconds``, summed across workers) versus wall-clock spent inside
  engine calls (``wall_seconds``), plus hit/miss/eviction counters, so
  ``timing_breakdown()``/Fig 5.12 can report the parallel speedup and the
  cache's contribution rather than pretending the batch ran serially;
* **fault tolerance** — real phase orders crash compilers, hang them, and
  fail transiently.  Every candidate runs through a bounded
  retry-with-backoff loop, an optional per-candidate ``timeout``, and a
  *quarantine*: keys that failed deterministically (crashed through every
  retry, or timed out) are never compiled again — later requests get
  their failure back instantly.  ``compile_batch(..., outcomes=True)``
  returns a :class:`CompileOutcome` per candidate instead of raising, so
  one failing worker can neither drop sibling results nor skew counters;
  failure/timeout/retry/quarantine counts flow into :meth:`stats`.

All counters, the cache and the quarantine are guarded by one lock; the
engine is safe to call from concurrent client threads (compiling the same
key twice in a race is harmless — the compile function is pure — and
counters stay consistent).

Observability: the counters live in a
:class:`~repro.obs.metrics.MetricsRegistry` (``engine.*`` names, including
streaming histograms of per-candidate compile seconds, per-batch wall
time, and queue wait), and every :meth:`compile_batch` runs inside a
``compile_batch`` span on the engine's
:class:`~repro.obs.trace.Tracer` carrying that batch's cache/fault
deltas.  The legacy attribute counters (``engine.hits``,
``engine.n_compiles``, ...) are retained as read-only properties over the
registry — prefer ``engine.metrics``/:meth:`stats` in new code.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from functools import partial
from threading import Lock
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["CompileEngine", "CompileOutcome", "CompileError"]


@dataclass
class CompileOutcome:
    """One candidate's compile result, failure included.

    ``status`` is ``"ok"``, ``"error"`` (raised through every retry),
    ``"timeout"`` (tripped the per-candidate timeout), or ``"quarantined"``
    (a key that already failed deterministically; never recompiled).
    ``attempts`` counts compile attempts actually made (0 for cache and
    quarantine hits); ``seconds`` is the worker time spent on them.
    """

    status: str
    value: object = None
    error: str = ""
    attempts: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class CompileError(RuntimeError):
    """A candidate failed to compile (legacy raising interface).

    Raised by ``compile_batch(..., outcomes=False)`` after the whole batch
    has been processed — sibling results are already cached and every
    counter updated, so nothing is lost besides this call's return value.
    Prefer ``outcomes=True`` to handle failures gracefully.
    """

    def __init__(self, outcome: CompileOutcome) -> None:
        super().__init__(f"compile {outcome.status}: {outcome.error}")
        self.outcome = outcome


def _timed_invoke(fn: Callable, name: str, seq) -> Tuple[object, float]:
    """Run ``fn(name, seq)`` and time it *inside the worker*, so the sum
    over workers is the cumulative compute the batch really consumed
    (module-level so process pools can pickle it)."""
    t0 = time.perf_counter()
    out = fn(name, seq)
    return out, time.perf_counter() - t0


def _attempt_invoke(
    fn: Callable, max_retries: int, backoff: float, artifact_fn: Optional[Callable],
    submit_t: float, name: str, seq
) -> Tuple[str, object, str, int, float, float, object]:
    """Run ``fn(name, seq)`` with bounded retry-with-backoff, inside the
    worker (module-level so process pools can pickle it).

    Returns ``(status, value, error, attempts, seconds, queue_wait,
    artifacts)`` — never raises, so one bad candidate cannot take its batch
    siblings down with it.  ``queue_wait`` is how long the item sat between
    batch submit (``submit_t``, the caller's ``perf_counter``) and its
    worker picking it up — on Linux ``perf_counter`` is
    ``CLOCK_MONOTONIC``, comparable across processes; clamped at zero
    elsewhere.  ``artifact_fn(value)`` runs after a successful compile and
    its result (e.g. freshly-built bytecode artifacts) rides back with the
    batch so the parent cache accretes; it is a pure optimisation — if it
    fails the compile still counts as ok with no artifacts.
    """
    t0 = time.perf_counter()
    wait = max(0.0, t0 - submit_t)
    attempts = 0
    while True:
        attempts += 1
        try:
            out = fn(name, seq)
        except Exception as exc:  # noqa: BLE001 - fault boundary by design
            if attempts > max_retries:
                err = f"{type(exc).__name__}: {exc}"
                return ("error", None, err, attempts, time.perf_counter() - t0, wait, None)
            time.sleep(backoff * (2 ** (attempts - 1)))
            continue
        artifacts = None
        if artifact_fn is not None:
            try:
                artifacts = artifact_fn(out)
            except Exception:  # noqa: BLE001 - artifacts must never fail a compile
                artifacts = None
        return ("ok", out, "", attempts, time.perf_counter() - t0, wait, artifacts)


class CompileEngine:
    """Batch compiler with a bounded LRU cache and a pluggable executor.

    Parameters
    ----------
    compile_fn:
        ``compile_fn(module_name, sequence) -> result``; must be pure
        (deterministic, no observable side effects) — the cache and the
        parallel executor both assume call order is irrelevant.
    jobs:
        worker count; ``1`` selects the deterministic serial path.
    cache_size:
        maximum cached results (``0`` disables caching).
    executor:
        ``"auto"`` (serial at ``jobs=1``, threads otherwise), ``"serial"``,
        ``"thread"``, or ``"process"``.
    key_fn:
        maps ``(module_name, sequence)`` to the hashable cache key;
        defaults to ``(module_name, tuple(sequence))``.
    timeout:
        per-candidate compile timeout in seconds (``None`` disables).
        Enforcing a timeout requires a pool, so when set the serial path
        routes through a single worker thread; a candidate that trips it
        is quarantined (a deterministic hang would only hang again) and
        its worker is abandoned — the pool is replaced and still-queued
        siblings are rescued onto the fresh one, so a hung candidate
        cannot starve the rest of the batch into spurious timeouts.
    max_retries:
        extra compile attempts for a candidate whose compile *raised*
        (transient faults); a candidate still failing after the last retry
        is quarantined.  Timeouts are never retried.
    retry_backoff:
        base sleep between attempts, doubled each retry.
    metrics:
        the :class:`~repro.obs.metrics.MetricsRegistry` holding the
        engine's counters/histograms (``engine.*`` names); defaults to a
        private registry.  Sharing a task-wide registry here makes the
        engine's numbers land in the run's ``metrics.json``.
    tracer:
        the :class:`~repro.obs.trace.Tracer` receiving per-batch
        ``compile_batch`` spans; defaults to the disabled
        :data:`~repro.obs.trace.NULL_TRACER` (zero overhead).
    """

    def __init__(
        self,
        compile_fn: Callable[[str, Sequence[int]], object],
        jobs: int = 1,
        cache_size: int = 2048,
        executor: str = "auto",
        key_fn: Optional[Callable[[str, Sequence[int]], Hashable]] = None,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.01,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        shared_artifacts: Optional[object] = None,
        artifact_fn: Optional[Callable[[object], object]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if executor not in ("auto", "serial", "thread", "process"):
            raise ValueError(f"unknown executor {executor!r}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.compile_fn = compile_fn
        self.jobs = int(jobs)
        self.cache_size = int(cache_size)
        self.executor = executor
        self.key_fn = key_fn or (lambda name, seq: (name, tuple(int(i) for i in seq)))
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        # process-shared bytecode artifact plumbing: workers run artifact_fn
        # after each successful compile, fresh artifacts ride back with the
        # batch and are absorbed here; process pools start warm-seeded
        self.shared_artifacts = shared_artifacts
        self.artifact_fn = artifact_fn

        self._cache: "OrderedDict[Hashable, object]" = OrderedDict()
        self._quarantine: Dict[Hashable, CompileOutcome] = {}
        self._lock = Lock()
        self._pool: Optional[Executor] = None

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = self.metrics
        self._m_compiles = m.counter("engine.compiles")
        self._m_cpu = m.counter("engine.compile_cpu_seconds")
        self._m_wall = m.counter("engine.compile_wall_seconds")
        self._m_hits = m.counter("engine.cache_hits")
        self._m_misses = m.counter("engine.cache_misses")
        self._m_evictions = m.counter("engine.cache_evictions")
        self._m_failures = m.counter("engine.compile_failures")
        self._m_timeouts = m.counter("engine.compile_timeouts")
        self._m_retries = m.counter("engine.compile_retries")
        self._m_qhits = m.counter("engine.quarantine_hits")
        self._m_qsize = m.gauge("engine.quarantine_size")
        self._m_cache_len = m.gauge("engine.cache_size")
        self._m_compile_hist = m.histogram("engine.compile_seconds")
        self._m_batch_wall = m.histogram("engine.batch_wall_seconds")
        self._m_batch_size = m.histogram("engine.batch_size")
        self._m_queue_wait = m.histogram("engine.queue_wait_seconds")
        self._m_artifacts = m.counter("engine.artifacts_absorbed")

    # -- legacy counter attributes (now registry-backed, read-only) ------------
    # Deprecated: these exist for back-compat with pre-observability callers;
    # prefer `engine.metrics` / `stats()`.
    @property
    def n_compiles(self) -> int:
        return int(self._m_compiles.value)

    @property
    def cpu_seconds(self) -> float:
        """Cumulative per-candidate compile time (sum over workers)."""
        return self._m_cpu.value

    @property
    def wall_seconds(self) -> float:
        """Wall clock spent inside engine calls."""
        return self._m_wall.value

    @property
    def hits(self) -> int:
        return int(self._m_hits.value)

    @property
    def misses(self) -> int:
        return int(self._m_misses.value)

    @property
    def evictions(self) -> int:
        return int(self._m_evictions.value)

    @property
    def n_failures(self) -> int:
        """Candidates that raised through every retry."""
        return int(self._m_failures.value)

    @property
    def n_timeouts(self) -> int:
        """Candidates that tripped the per-candidate timeout."""
        return int(self._m_timeouts.value)

    @property
    def n_retries(self) -> int:
        """Extra attempts beyond the first, across all candidates."""
        return int(self._m_retries.value)

    @property
    def quarantine_hits(self) -> int:
        """Requests served a stored failure without compiling."""
        return int(self._m_qhits.value)

    # -- executor plumbing ------------------------------------------------------
    def _serial(self) -> bool:
        return self.executor == "serial" or (self.executor == "auto" and self.jobs <= 1) or self.jobs <= 1

    def _get_pool(self) -> Executor:
        if self._pool is None:
            if self.executor == "process":
                if self.shared_artifacts is not None:
                    from repro.machine.artifacts import seed_worker_store

                    self._pool = ProcessPoolExecutor(
                        max_workers=self.jobs,
                        initializer=seed_worker_store,
                        initargs=(self.shared_artifacts.warm_entries(),),
                    )
                else:
                    self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="compile-engine"
                )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; engine stays usable —
        the pool is recreated on demand)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "CompileEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __getstate__(self):  # allow pickling compile_fn closures over us (process mode)
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_pool"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = Lock()
        self._pool = None

    # -- cache ----------------------------------------------------------------------
    def _cache_put(self, key: Hashable, value: object) -> None:
        if self.cache_size <= 0:
            return
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self._m_evictions.inc()
        self._m_cache_len.set(len(self._cache))

    def cache_clear(self) -> None:
        with self._lock:
            self._cache.clear()

    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._cache),
                "maxsize": self.cache_size,
            }

    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0.0 when none yet)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    # -- quarantine -------------------------------------------------------------
    def in_quarantine(self, module_name: str, seq: Sequence[int]) -> bool:
        """Whether this candidate's key holds a stored deterministic failure."""
        with self._lock:
            return self.key_fn(module_name, seq) in self._quarantine

    @property
    def quarantine_size(self) -> int:
        with self._lock:
            return len(self._quarantine)

    def quarantine_clear(self) -> None:
        with self._lock:
            self._quarantine.clear()

    def stats(self) -> Dict[str, float]:
        """Counters for ``timing_breakdown()`` / Fig 5.12 reporting.

        Reads from :attr:`metrics` (the
        :class:`~repro.obs.metrics.MetricsRegistry`); the dict keys are
        the historical ones, so Fig 5.12 tooling needs no changes."""
        with self._lock:
            qsize = len(self._quarantine)
        return {
            "n_compiles": self.n_compiles,
            "compile_cpu_seconds": self.cpu_seconds,
            "compile_wall_seconds": self.wall_seconds,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "jobs": self.jobs,
            "compile_failures": self.n_failures,
            "compile_timeouts": self.n_timeouts,
            "compile_retries": self.n_retries,
            "quarantine_size": qsize,
            "quarantine_hits": self.quarantine_hits,
        }

    # -- evaluation -------------------------------------------------------------------
    def compile_one(self, module_name: str, seq: Sequence[int], outcomes: bool = False):
        """Compile a single candidate (through the cache)."""
        return self.compile_batch([(module_name, seq)], outcomes=outcomes)[0]

    def compile_batch(
        self, items: Sequence[Tuple[str, Sequence[int]]], outcomes: bool = False
    ) -> List[object]:
        """Compile a batch of ``(module_name, sequence)`` candidates.

        Results come back in input order.  Cache hits (including duplicates
        *within* the batch) are served without recompiling; the remaining
        unique misses run on the configured executor with retry, timeout
        and quarantine handling.

        With ``outcomes=True`` every slot is a :class:`CompileOutcome`
        (failures included) and nothing raises.  With ``outcomes=False``
        (legacy) slots are the raw compile results; if any candidate
        failed, :class:`CompileError` is raised — but only *after* the
        whole batch ran, so sibling results are cached and all counters
        stay consistent.
        """
        t_wall = time.perf_counter()
        span = self.tracer.span("compile_batch", size=len(items))
        span.__enter__()
        results: List[Optional[CompileOutcome]] = [None] * len(items)
        # key -> result slots it must fill; insertion order == first-seen order
        pending: "OrderedDict[Hashable, List[int]]" = OrderedDict()
        work: List[Tuple[str, Sequence[int]]] = []
        b_hits = b_misses = b_qhits = 0  # this batch's deltas (span attrs)
        b_compiles = b_failures = b_timeouts = b_retries = 0
        b_cpu = b_wait = 0.0
        with self._lock:
            for i, (name, seq) in enumerate(items):
                key = self.key_fn(name, seq)
                if key in self._cache:
                    self._cache.move_to_end(key)
                    results[i] = CompileOutcome("ok", value=self._cache[key])
                    b_hits += 1
                elif key in self._quarantine:
                    results[i] = self._quarantine[key]
                    b_qhits += 1
                elif key in pending:
                    pending[key].append(i)
                    b_hits += 1  # within-batch duplicate: compiled once
                else:
                    pending[key] = [i]
                    work.append((name, seq))
                    b_misses += 1
        self._m_hits.inc(b_hits)
        self._m_misses.inc(b_misses)
        self._m_qhits.inc(b_qhits)

        if work:
            worker = partial(
                _attempt_invoke,
                self.compile_fn,
                self.max_retries,
                self.retry_backoff,
                self.artifact_fn,
                time.perf_counter(),
            )
            if self.timeout is None:
                if self._serial() or len(work) == 1:
                    outs = [worker(n, s) for n, s in work]
                else:
                    pool = self._get_pool()
                    outs = list(pool.map(worker, *zip(*work)))
            else:
                outs = self._run_with_timeout(worker, work)
            b_artifacts = []
            with self._lock:
                for (key, slots), (status, out, err, attempts, dt, wait, arts) in zip(
                    pending.items(), outs
                ):
                    b_cpu += dt
                    b_wait += wait
                    b_retries += max(0, attempts - 1)
                    self._m_compile_hist.observe(dt)
                    self._m_queue_wait.observe(wait)
                    if arts:
                        b_artifacts.extend(arts)
                    if status == "ok":
                        b_compiles += 1
                        self._cache_put(key, out)
                        outcome = CompileOutcome("ok", value=out, attempts=attempts, seconds=dt)
                    else:
                        if status == "timeout":
                            b_timeouts += 1
                        else:
                            b_failures += 1
                        outcome = CompileOutcome(status, error=err, attempts=attempts, seconds=dt)
                        # deterministic failure: compiling this key again
                        # would fail again — store the verdict instead
                        self._quarantine[key] = CompileOutcome(
                            "quarantined", error=err, attempts=0, seconds=0.0
                        )
                    for i in slots:
                        results[i] = outcome
                self._m_qsize.set(len(self._quarantine))
            if b_artifacts and self.shared_artifacts is not None:
                absorbed = self.shared_artifacts.absorb(b_artifacts)
                if absorbed:
                    self._m_artifacts.inc(absorbed)
            self._m_cpu.inc(b_cpu)
            self._m_compiles.inc(b_compiles)
            self._m_failures.inc(b_failures)
            self._m_timeouts.inc(b_timeouts)
            self._m_retries.inc(b_retries)

        batch_wall = time.perf_counter() - t_wall
        self._m_wall.inc(batch_wall)
        self._m_batch_wall.observe(batch_wall)
        self._m_batch_size.observe(len(items))
        span.set(
            compiles=b_compiles,
            cache_hits=b_hits,
            cache_misses=b_misses,
            failures=b_failures,
            timeouts=b_timeouts,
            retries=b_retries,
            quarantine_hits=b_qhits,
            worker_seconds=b_cpu,
            queue_wait_seconds=b_wait,
        )
        span.__exit__(None, None, None)
        if outcomes:
            return results
        failed = next((o for o in results if not o.ok), None)
        if failed is not None:
            raise CompileError(failed)
        return [o.value for o in results]

    def compile_configs(
        self,
        configs: Sequence[Dict[str, Sequence[int]]],
        outcomes: bool = True,
    ) -> List[Dict[str, object]]:
        """Compile many per-module configurations in ONE batch dispatch.

        Flattens every ``{module_name: sequence}`` mapping into a single
        :meth:`compile_batch` call — duplicates across configurations are
        deduped by the batch's pending-key machinery and the whole
        population pays one pool dispatch — then regroups the results per
        configuration, preserving each config's key order."""
        flat: List[Tuple[str, Sequence[int]]] = []
        spans: List[Tuple[int, List[str]]] = []
        for cfg in configs:
            names = list(cfg.keys())
            spans.append((len(flat), names))
            flat.extend((name, cfg[name]) for name in names)
        flat_results = self.compile_batch(flat, outcomes=outcomes)
        grouped: List[Dict[str, object]] = []
        for start, names in spans:
            grouped.append(
                {name: flat_results[start + i] for i, name in enumerate(names)}
            )
        return grouped

    def _run_with_timeout(
        self, worker: Callable, work: List[Tuple[str, Sequence[int]]]
    ) -> List[Tuple[str, object, str, int, float, float, object]]:
        """Run work items as individual futures with a per-candidate timeout.

        The timeout clock for item *i* starts when the engine begins
        waiting on it (items are awaited in input order, so earlier waits
        already covered most of its queue time).  On a timeout the pool is
        replaced and still-queued futures are resubmitted to the fresh
        one — the abandoned worker finishes (or sleeps) in the background
        without blocking anyone, and its late result is discarded.
        """
        pool = self._get_pool()
        futs = [pool.submit(worker, n, s) for n, s in work]
        outs: List[Tuple[str, object, str, int, float, float, object]] = [None] * len(work)
        for i in range(len(work)):
            try:
                outs[i] = futs[i].result(timeout=self.timeout)
            except _FuturesTimeout:
                outs[i] = (
                    "timeout",
                    None,
                    f"compile timed out after {self.timeout:.4g}s",
                    1,
                    float(self.timeout),
                    0.0,
                    None,
                )
                with self._lock:
                    old, self._pool = self._pool, None
                pool = self._get_pool()
                for j in range(i + 1, len(futs)):
                    if futs[j].cancel():
                        futs[j] = pool.submit(worker, work[j][0], work[j][1])
                if old is not None:
                    old.shutdown(wait=False)
        return outs
