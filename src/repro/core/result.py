"""Search traces shared by CITROEN and every baseline tuner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Measurement", "TuningResult"]


@dataclass
class Measurement:
    """One expensive runtime measurement (or an infeasible attempt).

    ``sequence`` is the changed module's pass sequence — or, for
    whole-config measurements (``module == "all"``), every module's passes
    concatenated in module-name order.  ``sequences`` holds the full
    per-module configuration when the tuner records it.

    ``status`` classifies the outcome: ``"ok"``; ``"incorrect"``
    (differential test failed — a miscompilation); ``"crash"`` (the
    measured binary crashed or ran out of fuel); ``"error"``/``"timeout"``/
    ``"quarantined"`` (the candidate never compiled).  Infeasible
    measurements carry ``runtime == inf`` and ``correct == False`` but
    still occupy a budget slot — a fault-tolerant tuner records them and
    keeps searching.
    """

    index: int
    module: str
    sequence: Tuple[str, ...]
    runtime: float
    speedup_vs_o3: float
    correct: bool = True
    sequences: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    status: str = "ok"


@dataclass
class TuningResult:
    """Outcome of one tuning run.

    ``best_history[i]`` is the best runtime after ``i + 1`` measurements —
    the convergence curves of Figs 5.6/5.7 are cuts through this.
    """

    program: str
    tuner: str
    measurements: List[Measurement] = field(default_factory=list)
    o3_runtime: float = float("nan")
    o0_runtime: float = float("nan")
    best_config: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    timing: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def runtimes(self) -> np.ndarray:
        return np.asarray([m.runtime for m in self.measurements])

    @property
    def interrupted(self) -> bool:
        """True when the run stopped before spending its budget (graceful
        SIGINT/SIGTERM shutdown); such traces are partial but valid, and
        resumable via ``repro tune --resume`` when a WAL was recorded."""
        return bool(self.extras.get("interrupted", False))

    @property
    def n_infeasible(self) -> int:
        """Budget slots spent on candidates that failed to compile, crashed,
        or miscompiled (recorded with ``runtime == inf``)."""
        return sum(1 for m in self.measurements if not m.correct)

    @property
    def best_history(self) -> np.ndarray:
        return np.minimum.accumulate(self.runtimes)

    @property
    def best_runtime(self) -> float:
        return float(self.best_history[-1])

    def speedup_over_o3(self, at: Optional[int] = None) -> float:
        """Speedup of the best-found binary relative to -O3 after ``at``
        measurements (defaults to the full budget)."""
        hist = self.best_history
        idx = min(at, len(hist)) - 1 if at is not None else len(hist) - 1
        return float(self.o3_runtime / hist[idx])

    def speedup_curve(self, points: Sequence[int]) -> List[float]:
        """Speedups over -O3 at each budget cut in ``points``."""
        return [self.speedup_over_o3(p) for p in points]

    def to_dict(self) -> Dict[str, object]:
        """JSON-facing form of the full trace (the RunRecorder's
        ``result.json``).  Non-finite floats are kept as-is here; the
        recorder stringifies them at serialisation time."""
        return {
            "program": self.program,
            "tuner": self.tuner,
            "o3_runtime": self.o3_runtime,
            "o0_runtime": self.o0_runtime,
            "best_runtime": self.best_runtime if self.measurements else None,
            "best_config": {m: list(s) for m, s in self.best_config.items()},
            "n_measurements": len(self.measurements),
            "n_infeasible": self.n_infeasible,
            "measurements": [
                {
                    "index": m.index,
                    "module": m.module,
                    "sequence": list(m.sequence),
                    "runtime": m.runtime,
                    "speedup_vs_o3": m.speedup_vs_o3,
                    "correct": m.correct,
                    "status": m.status,
                }
                for m in self.measurements
            ],
            "timing": dict(self.timing),
            "extras": {
                k: v
                for k, v in self.extras.items()
                # keep result.json scannable: drop the bulky per-iteration
                # lists (decision records live in events.jsonl)
                if k
                not in (
                    "winner_strategies",
                    "chosen_modules",
                    "chosen_coverage",
                    "decisions",
                )
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TuningResult":
        """Rebuild a result from :meth:`to_dict` output (or its JSON form).

        The recorder stringifies non-finite floats (``"inf"``/``"nan"``) at
        serialisation time; both the raw and stringified forms load, and
        ``best_config`` sequences come back as tuples — so the offline
        analyzer reads ``result.json`` without touching pickles.  Derived
        fields (``best_runtime``, ``n_measurements``, …) are recomputed,
        not trusted."""

        def _float(v, default=float("nan")) -> float:
            if v is None:
                return default
            return float(v)  # float("inf"/"-inf"/"nan") parses the strings

        result = cls(
            program=str(data.get("program", "")),
            tuner=str(data.get("tuner", "")),
            o3_runtime=_float(data.get("o3_runtime")),
            o0_runtime=_float(data.get("o0_runtime")),
        )
        result.best_config = {
            m: tuple(s) for m, s in (data.get("best_config") or {}).items()
        }
        # timing is mostly numeric, but carries annotation strings
        # (e.g. ``measure_engine``), toggle bools, and nested stats dicts
        # (``artifact_store``) — only numerics and the stringified
        # non-finite floats are coerced; everything else stays verbatim
        def _timing_value(v):
            if isinstance(v, str):
                return _float(v) if v in ("inf", "-inf", "nan") else v
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                return v
            return _float(v)

        result.timing = {
            k: _timing_value(v) for k, v in (data.get("timing") or {}).items()
        }
        result.extras = dict(data.get("extras") or {})
        for m in data.get("measurements") or []:
            result.measurements.append(
                Measurement(
                    index=int(m["index"]),
                    module=str(m["module"]),
                    sequence=tuple(m["sequence"]),
                    runtime=_float(m["runtime"]),
                    speedup_vs_o3=_float(m.get("speedup_vs_o3"), 0.0),
                    correct=bool(m.get("correct", True)),
                    sequences={
                        name: tuple(s)
                        for name, s in (m.get("sequences") or {}).items()
                    },
                    status=str(m.get("status", "ok")),
                )
            )
        return result
