"""CITROEN: compilation-statistics-guided BO for compiler phase ordering.

The paper's primary contribution (Chapter 5 / IPDPS 2025).  Public entry
points:

* :class:`AutotuningTask` — wraps a program + platform into the compile /
  measure / verify interface (the "user-friendly framework", §5.3.6);
* :class:`Citroen` — the tuner (cost model on compilation statistics,
  coverage-aware acquisition, DES/GA/random candidate generation, adaptive
  multi-module budget allocation);
* :class:`TuningResult` — the search trace shared with every baseline.
"""

from repro.core.task import AutotuningTask
from repro.core.eval_engine import CompileEngine, CompileError, CompileOutcome
from repro.core.faults import FaultInjector, corrupt_module, parse_fault_kinds
from repro.core.result import Measurement, TuningResult
from repro.core.cost_model import CitroenCostModel
from repro.core.generator import CandidateGenerator, base_strategy
from repro.core.citroen import Citroen
from repro.core.differential import differential_test
from repro.core.transfer import PassCorrelationPrior
from repro.core.wal import WriteAheadLog, read_wal

__all__ = [
    "AutotuningTask",
    "CandidateGenerator",
    "Citroen",
    "CitroenCostModel",
    "CompileEngine",
    "CompileError",
    "CompileOutcome",
    "FaultInjector",
    "Measurement",
    "PassCorrelationPrior",
    "TuningResult",
    "WriteAheadLog",
    "base_strategy",
    "corrupt_module",
    "differential_test",
    "parse_fault_kinds",
    "read_wal",
]
