"""Seeded fault injection for chaos-testing the evaluation pipeline.

Real phase-ordering searches hit unusual pass orders that crash ``opt``,
hang, fail transiently (file system, OOM-killer), or miscompile — the
entire reason the system carries differential testing (§1.1).  The
simulated compiler in this repo is too well-behaved to exercise those
paths, so :class:`FaultInjector` recreates them *deterministically*: every
``(module, sequence)`` candidate is hashed together with the injector seed
to decide whether — and how — it fails.  Two runs with the same seed see
exactly the same faults, so chaos runs stay reproducible and bisectable.

Fault taxonomy
--------------
``crash``
    the compile function raises :class:`CompilerCrash` on every attempt —
    a deterministic compiler bug.  The engine's retries cannot save it;
    the key lands in the quarantine set.
``hang``
    the compile function sleeps ``hang_seconds`` before returning — long
    enough to trip the engine's per-candidate timeout when one is set
    (without a timeout the candidate merely compiles late).
``transient``
    the first ``transient_failures`` attempts raise
    :class:`TransientCompileError`, then the compile succeeds — the case
    the engine's bounded retry-with-backoff exists for.
``miscompile``
    the compile succeeds but the returned binary's observable behaviour
    is corrupted (:func:`corrupt_module`), so differential testing flags
    the measurement and the tuner records it as infeasible.

The injector is generic: it wraps any ``fn(module_name, sequence) ->
result`` and only needs a ``corrupt_fn`` to implement ``miscompile`` for
the result type at hand (:class:`~repro.core.task.AutotuningTask` passes
one that corrupts the compiled :class:`~repro.compiler.ir.Module`).
"""

from __future__ import annotations

import hashlib
import time
from threading import Lock
from typing import Callable, Dict, Hashable, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "CompilerCrash",
    "TransientCompileError",
    "FaultInjector",
    "corrupt_module",
    "parse_fault_kinds",
]

#: The four injectable fault classes, in canonical order.
FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "transient", "miscompile")


class CompilerCrash(RuntimeError):
    """Injected deterministic compiler crash (fails on every attempt)."""


class TransientCompileError(RuntimeError):
    """Injected transient failure (succeeds after enough retries)."""


def parse_fault_kinds(spec: str) -> Tuple[str, ...]:
    """Parse a CLI fault list like ``"crash,transient"`` (or ``"all"``)."""
    spec = (spec or "").strip().lower()
    if spec in ("", "none"):
        return ()
    if spec == "all":
        return FAULT_KINDS
    kinds = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if part not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {part!r}; choose from {', '.join(FAULT_KINDS)}"
            )
        if part not in kinds:
            kinds.append(part)
    return tuple(kinds)


def corrupt_module(compiled):
    """Corrupt a compiled ``(Module, stats)`` pair observably.

    Prepends an ``output`` of a sentinel constant to every function's entry
    block (on a clone — the input is shared with the compile cache), so any
    execution of the module emits extra output values and its signature can
    no longer match the reference program's: differential testing is
    guaranteed to catch the miscompilation the moment the module runs.
    """
    from repro.compiler.ir import I32, Const, Instr

    module, stats = compiled
    bad = module.clone()
    for fn in bad.functions.values():
        entry = fn.entry
        insert_at = 0
        while insert_at < len(entry.instrs) and entry.instrs[insert_at].op == "phi":
            insert_at += 1
        entry.instrs.insert(
            insert_at, Instr("output", args=[Const(0x5EED, I32)])
        )
    return bad, stats


class FaultInjector:
    """Deterministic, seeded fault injection per ``(module, sequence)``.

    Parameters
    ----------
    rate:
        probability (per candidate key) of injecting a fault, in ``[0, 1]``.
    kinds:
        which fault classes may be injected; the class for a faulty key is
        itself chosen deterministically from this tuple.
    seed:
        the chaos seed — same seed, same faults, run after run.
    hang_seconds:
        sleep length of the ``hang`` fault (pick it above the engine's
        ``timeout`` to exercise the timeout path).
    transient_failures:
        how many attempts a ``transient`` key fails before succeeding
        (pair with the engine's ``max_retries``).
    corrupt_fn:
        maps a successful result to its miscompiled form; required for the
        ``miscompile`` kind to have any effect (``None`` leaves the result
        intact).
    """

    def __init__(
        self,
        rate: float = 0.05,
        kinds: Sequence[str] = FAULT_KINDS,
        seed: int = 0,
        hang_seconds: float = 0.25,
        transient_failures: int = 1,
        corrupt_fn: Optional[Callable[[object], object]] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        for k in kinds:
            if k not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {k!r}; choose from {', '.join(FAULT_KINDS)}"
                )
        self.rate = float(rate)
        self.kinds: Tuple[str, ...] = tuple(kinds)
        self.seed = int(seed)
        self.hang_seconds = float(hang_seconds)
        self.transient_failures = int(transient_failures)
        self.corrupt_fn = corrupt_fn

        self._lock = Lock()
        self._transient_attempts: Dict[Hashable, int] = {}
        self.injected: Dict[str, int] = {k: 0 for k in FAULT_KINDS}

    # -- deterministic fault assignment ------------------------------------
    def _digest(self, module_name: str, seq: Sequence[int]) -> bytes:
        key = repr((self.seed, str(module_name), tuple(int(i) for i in seq)))
        return hashlib.blake2b(key.encode("utf-8"), digest_size=16).digest()

    def fault_for(self, module_name: str, seq: Sequence[int]) -> Optional[str]:
        """The fault class injected for this candidate, or ``None``.

        A pure function of ``(seed, module_name, sequence)`` — the same
        candidate gets the same answer on every call, in every run.
        """
        if self.rate <= 0.0 or not self.kinds:
            return None
        d = self._digest(module_name, seq)
        u = int.from_bytes(d[:8], "big") / 2**64
        if u >= self.rate:
            return None
        return self.kinds[int.from_bytes(d[8:12], "big") % len(self.kinds)]

    # -- wrapping -----------------------------------------------------------
    def wrap(self, fn: Callable[[str, Sequence[int]], object]) -> Callable:
        """Wrap ``fn(module_name, seq)`` with fault injection.

        The wrapper raises for ``crash``/``transient`` faults, delays for
        ``hang``, and corrupts the successful result for ``miscompile``;
        fault-free keys pass straight through.
        """

        def faulty(module_name: str, seq: Sequence[int]):
            kind = self.fault_for(module_name, seq)
            if kind is None:
                return fn(module_name, seq)
            with self._lock:
                self.injected[kind] += 1
            if kind == "crash":
                raise CompilerCrash(
                    f"injected compiler crash on ({module_name}, seed={self.seed})"
                )
            if kind == "hang":
                time.sleep(self.hang_seconds)
                return fn(module_name, seq)
            if kind == "transient":
                key = (module_name, tuple(int(i) for i in seq))
                with self._lock:
                    n = self._transient_attempts.get(key, 0) + 1
                    self._transient_attempts[key] = n
                if n <= self.transient_failures:
                    raise TransientCompileError(
                        f"injected transient failure {n}/{self.transient_failures}"
                        f" on ({module_name}, seed={self.seed})"
                    )
                return fn(module_name, seq)
            # miscompile: succeed, but corrupt the observable behaviour
            out = fn(module_name, seq)
            return self.corrupt_fn(out) if self.corrupt_fn is not None else out

        return faulty

    def stats(self) -> Dict[str, int]:
        """Counts of faults actually injected so far, by kind."""
        with self._lock:
            return dict(self.injected)
