"""The CITROEN tuner (§5.3, Figs 5.2–5.4).

Per iteration:

1. every hot module's candidate generator (DES + GA + random, §5.3.5)
   proposes raw pass sequences;
2. each candidate is **compiled** — cheap and parallelisable — yielding its
   compilation statistics; the whole ``per_strategy x strategies x
   hot_modules`` population goes through ``task.compile_batch`` in one
   call, so the task's :class:`~repro.core.eval_engine.CompileEngine`
   fans it out over ``jobs`` workers and serves repeated candidates from
   its LRU cache;
3. candidates whose statistics signature matches an already-measured
   configuration are *deduplicated*: identical statistics ≈ identical
   binary, so the known runtime is reused without spending budget
   (Kulkarni-style redundancy elimination, §3.1.1).  The signature covers
   the **full configuration** (candidate module + current incumbent on
   every other module) — runtimes belong to whole programs, so a
   per-module signature would wrongly reuse a runtime measured under a
   different incumbent;
4. the coverage-aware acquisition function (§5.3.4) scores every remaining
   ``(module, candidate)`` pair under the global cost model — candidates
   whose statistics lie outside the observed feature coverage have their
   uncertainty bonus damped, curing the over-exploration the sparse
   feature space otherwise causes (Table 5.2);
5. the argmax pair is **measured** (expensive); the observation updates the
   cost model and that module's generators.

Because the AF argmax ranges over modules as well as sequences, the search
budget flows to whichever module currently promises the most improvement —
the adaptive multi-module budget allocation (§1.3), benchmarked against
round-robin in ``benchmarks/test_multimodule_budget.py``.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.ir import Module
from repro.compiler.pipelines import pipeline
from repro.core.cost_model import CitroenCostModel
from repro.core.generator import CandidateGenerator, base_strategy
from repro.core.result import Measurement, TuningResult
from repro.core.task import AutotuningTask
from repro.utils.rng import SeedLike, as_generator, spawn

__all__ = ["Citroen"]


class Citroen:
    """Compilation-statistics-guided Bayesian phase-ordering tuner."""

    def __init__(
        self,
        task: AutotuningTask,
        seed: SeedLike = None,
        n_init: int = 8,
        per_strategy: int = 6,
        beta: float = 1.96,
        coverage_floor: float = 0.3,
        coverage_gamma: float = 2.0,
        novelty_epsilon: float = 0.25,
        use_coverage: bool = True,
        use_dedup: bool = True,
        generators: Sequence[str] = ("des", "ga", "random"),
        feature_mode: str = "stats",
        refit_every: int = 1,
        seed_with_o3: bool = True,
        module_policy: str = "adaptive",
        pass_prior=None,
        diagnostics: bool = True,
        model_opts: Optional[Dict[str, object]] = None,
    ) -> None:
        """
        Parameters
        ----------
        feature_mode:
            ``"stats"`` (CITROEN), or the Fig 5.9 alternatives
            ``"autophase"``, ``"seq"``, ``"tokens"``.
        module_policy:
            ``"adaptive"`` (AF arbitrates between modules) or
            ``"round-robin"`` (the ablation for the 2.5x experiment).
        pass_prior:
            optional :class:`~repro.core.transfer.PassCorrelationPrior`
            trained on previous programs; biases candidate generation
            (§6.3.2 cross-program transfer).
        diagnostics:
            record per-iteration *decision records* (GP prediction vs
            realized speedup, acquisition value, winning provenance,
            coverage — the raw material of
            :mod:`repro.obs.diagnostics`) plus per-generator
            proposal/win/improvement counters.  Consumes no RNG either
            way, so tuner histories are bit-identical at the same seed
            whether on or off; off leaves every counter untouched.
        model_opts:
            extra keyword arguments forwarded to
            :class:`~repro.core.cost_model.CitroenCostModel` —
            ``repro bench`` uses this to pit the incremental surrogate
            against the legacy full-refit baseline.
        """
        self.task = task
        self.rng = as_generator(seed)
        self.n_init = n_init
        self.per_strategy = per_strategy
        self.beta = beta
        self.coverage_floor = coverage_floor
        self.coverage_gamma = coverage_gamma
        self.novelty_epsilon = novelty_epsilon
        self.use_coverage = use_coverage
        self.use_dedup = use_dedup
        self.feature_mode = feature_mode
        self.refit_every = refit_every
        self.seed_with_o3 = seed_with_o3
        self.module_policy = module_policy
        self.diagnostics = bool(diagnostics)
        self._pending_decision: Optional[Dict[str, object]] = None

        gene_weights = (
            pass_prior.pass_weights(task.passes) if pass_prior is not None else None
        )
        children = spawn(self.rng, len(task.hot_modules) + 1)
        self.generators: Dict[str, CandidateGenerator] = {
            name: CandidateGenerator(
                task.seq_length,
                task.alphabet,
                seed=r,
                strategies=generators,
                gene_weights=gene_weights,
                track_provenance=self.diagnostics,
            )
            for name, r in zip(task.hot_modules, children)
        }
        self.model = CitroenCostModel(
            seed=children[-1], metrics=task.metrics, **(model_opts or {})
        )
        self.model_seconds = 0.0
        self._rr_cursor = 0

        # incumbent configuration (per hot module)
        self._best_seq: Dict[str, np.ndarray] = {}
        self._best_stats: Dict[str, Dict[str, int]] = {}
        self._best_compiled: Dict[str, Module] = {}
        self._best_feats_cache: Dict[str, Dict[str, int]] = {}
        self._best_runtime = float("inf")
        self._sig_runtime: Dict[Tuple, float] = {}

    # -- feature extraction dispatch (Fig 5.9) --------------------------------
    def _features_of(self, module_name: str, seq: np.ndarray, compiled: Module, stats: Dict[str, int]) -> Dict[str, int]:
        if self.feature_mode == "stats":
            return stats
        if self.feature_mode == "autophase":
            from repro.features.autophase import autophase_features

            return autophase_features(compiled)
        if self.feature_mode == "tokens":
            from repro.features.tokens import token_histogram

            return token_histogram(compiled)
        if self.feature_mode == "seq":
            return {f"pos{i}": int(v) + 1 for i, v in enumerate(seq)}
        raise KeyError(f"unknown feature mode {self.feature_mode!r}")

    def _o3_seed_sequence(self) -> np.ndarray:
        """The -O3 pipeline encoded (and padded/cut) to the search length.

        With a pass alphabet disjoint from the -O3 pipeline (custom/reduced
        subsets, cf. the Fig 5.10 LLVM-10-like config) there is nothing to
        encode; fall back to a random seed sequence instead of dividing by
        zero."""
        index = {p: i for i, p in enumerate(self.task.passes)}
        ids = [index[p] for p in pipeline("-O3") if p in index]
        L = self.task.seq_length
        if not ids:
            warnings.warn(
                "no -O3 pipeline pass is in the search alphabet; "
                "seeding with a random sequence instead",
                stacklevel=2,
            )
            return self.rng.integers(0, self.task.alphabet, size=L)
        if len(ids) >= L:
            return np.asarray(ids[:L], dtype=int)
        reps = ids * (L // len(ids) + 1)
        return np.asarray(reps[:L], dtype=int)

    # -- main loop ----------------------------------------------------------------
    def tune(self, budget: int) -> TuningResult:
        """Run the CITROEN search for ``budget`` measurements."""
        task = self.task
        result = TuningResult(
            program=task.program.name,
            tuner=f"citroen[{self.feature_mode}]",
            o3_runtime=task.o3_runtime,
            o0_runtime=task.o0_runtime,
        )
        result.extras["winner_strategies"] = []
        result.extras["chosen_modules"] = []
        result.extras["dedup_hits"] = 0
        result.extras["chosen_coverage"] = []
        result.extras["compile_failures"] = 0
        if self.diagnostics:
            result.extras["decisions"] = []

        tracer = task.tracer

        # ---- initial design -------------------------------------------------
        n_init = min(self.n_init, budget)
        init_configs: List[Dict[str, np.ndarray]] = []
        if self.seed_with_o3:
            init_configs.append({m: self._o3_seed_sequence() for m in task.hot_modules})
        while len(init_configs) < n_init:
            cfg = {
                m: self.rng.integers(0, task.alphabet, size=task.seq_length)
                for m in task.hot_modules
            }
            init_configs.append(cfg)
        with tracer.span("init", n_configs=n_init):
            for cfg in init_configs[:n_init]:
                if task.stop_requested:
                    break
                self._measure_config(cfg, result, winner="init")

        # ---- BO loop ----------------------------------------------------------
        it = 0
        while len(result.measurements) < budget and not task.stop_requested:
            t0 = time.perf_counter()
            if it % self.refit_every == 0 or not self.model.ready:
                refits_before = self.model.n_refits
                with tracer.span("fit", n_observations=self.model.n_observations) as sp:
                    # usually a no-op: add_observation keeps the GP
                    # conditioned incrementally, and full (warm-started)
                    # refits happen only on the model's adaptive schedule
                    self.model.fit(optimize_hypers=True)
                    sp.set(full=self.model.n_refits > refits_before)
            self.model_seconds += time.perf_counter() - t0
            with tracer.span("propose", iteration=it) as sp:
                chosen = self._propose(result)
                sp.set(outcome="fallback" if chosen is None else chosen[4])
            prev_best = self._best_runtime
            if chosen is None:
                # model not ready or no fresh candidates: random fallback
                m = self._pick_module_random()
                cfg = dict(self._best_seq)
                cfg[m] = self.rng.integers(0, task.alphabet, size=task.seq_length)
                self._measure_config(cfg, result, winner="random-fallback", module=m)
                self._record_decision(result, it, m, "random-fallback", prev_best)
            else:
                module_name, seq, compiled, stats, provenance, cov = chosen
                cfg = dict(self._best_seq)
                cfg[module_name] = seq
                self._measure_config(
                    cfg,
                    result,
                    winner=provenance,
                    module=module_name,
                    precompiled=(module_name, compiled, stats),
                    coverage=cov,
                )
                self._record_decision(result, it, module_name, provenance, prev_best)
            it += 1

        if len(result.measurements) < budget:
            # stopped early (graceful SIGINT/SIGTERM): the partial trace is
            # still valid, analyzable, and — with a WAL — resumable
            result.extras["interrupted"] = True
        result.best_config = {
            m: tuple(task.decode(s)) for m, s in self._best_seq.items()
        }
        result.timing = dict(task.timing_breakdown())
        result.timing["model_seconds"] = self.model_seconds
        if not self.model.ready and self.model.n_observations >= 2:
            self.model.fit(optimize_hypers=True)
        result.extras["top_statistics"] = (
            self.model.top_statistics(5) if self.model.ready else []
        )
        result.extras["relevance"] = self.model.relevance()[:20] if self.model.ready else []
        result.extras["n_incorrect"] = task.n_incorrect
        result.extras["n_crashes"] = task.n_crashes
        if self.diagnostics:
            result.extras["provenance"] = self.provenance_summary()
        return result

    # -- search-introspection (repro.obs.diagnostics feeds on these) --------------
    def provenance_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-strategy proposal/win/improvement counters summed over the
        hot modules' generators (the live Fig 5.9 ablation)."""
        summary: Dict[str, Dict[str, int]] = {}
        for gen in self.generators.values():
            for name, counts in gen.provenance_stats().items():
                agg = summary.setdefault(
                    name, {"proposals": 0, "wins": 0, "improvements": 0}
                )
                for key, value in counts.items():
                    agg[key] = agg.get(key, 0) + value
        return summary

    def _record_decision(
        self,
        result: TuningResult,
        iteration: int,
        module: str,
        provenance: str,
        prev_best: float,
    ) -> None:
        """Complete this iteration's decision record with the realized
        outcome, credit the winning generator, and emit the record to the
        trace/metrics stream.  No RNG is consumed, so histories stay
        bit-identical whether diagnostics are on or off."""
        pending, self._pending_decision = self._pending_decision, None
        if not self.diagnostics:
            return
        meas = result.measurements[-1]
        improved = meas.correct and meas.runtime < prev_best
        record: Dict[str, object] = {
            "iteration": iteration,
            "measurement": meas.index,
            "module": module,
            "provenance": provenance,
            "strategy": base_strategy(provenance),
            "channel": "fallback",
            "pred_mu": None,
            "pred_sigma": None,
            "acq": None,
            "coverage": None,
            "coverage_damp": None,
            "n_candidates": None,
            "proposed": {},
        }
        if pending is not None:
            record.update(pending)
        record.update(
            runtime=float(meas.runtime),
            speedup_vs_o3=float(meas.speedup_vs_o3),
            status=meas.status,
            improved=bool(improved),
            realized_z=(
                self.model.transform_runtime(meas.runtime) if meas.correct else None
            ),
        )
        gen = self.generators.get(module)
        if gen is not None:
            gen.credit_win(provenance)
            if improved:
                gen.credit_improvement(provenance)
        metrics = self.task.metrics
        metrics.counter("citroen.decisions").inc()
        strategy = record["strategy"]
        if strategy is not None:
            metrics.counter(f"citroen.wins.{strategy}").inc()
            if improved:
                metrics.counter(f"citroen.improvements.{strategy}").inc()
        self.task.tracer.event("decision", **record)
        result.extras["decisions"].append(record)

    # -- proposal -------------------------------------------------------------------
    def _propose(self, result: TuningResult):
        """Generate, compile, dedup and score candidates; return the argmax."""
        task = self.task
        tracer = task.tracer
        self._pending_decision = None
        if not self.model.ready or not self._best_seq:
            return None
        modules = self._modules_to_consider()
        raw: List[Tuple[str, str, np.ndarray]] = []
        with tracer.span("candidate_gen", modules=len(modules)) as sp:
            for module_name in modules:
                for provenance, seq in self.generators[module_name].ask(
                    self.per_strategy
                ):
                    raw.append((module_name, provenance, seq))
            sp.set(candidates=len(raw))
        proposed: Dict[str, int] = {}
        for _m, prov, _s in raw:
            proposed[prov] = proposed.get(prov, 0) + 1
        # the whole candidate population compiles in one batch — the engine
        # fans it out over `jobs` workers and caches repeated candidates
        # (the engine traces this as its own `compile_batch` span)
        batch = task.compile_batch(
            [(m, seq) for m, _prov, seq in raw], outcomes=True
        )
        span_feat = tracer.span("featurize", candidates=len(batch))
        span_feat.__enter__()
        dedup_before = result.extras["dedup_hits"]
        failures_before = result.extras.get("compile_failures", 0)
        # merged incumbent statistics *excluding* each module, computed once
        # per iteration — every candidate then merges in O(|own stats|)
        prefixed_best = {
            m: self.model.prefix_stats(m, feats)
            for m, feats in self._best_feats().items()
        }
        base_without: Dict[str, Dict[str, int]] = {}
        for m in modules:
            base: Dict[str, int] = {}
            for name, pref in prefixed_best.items():
                if name != m:
                    base.update(pref)
            base_without[m] = base
        scored = []
        for (module_name, provenance, seq), outcome in zip(raw, batch):
            if not outcome.ok:
                # infeasible candidate (crash/timeout/quarantined): penalty
                # feedback steers its generator away; it never reaches the
                # cost model, the dedup table, or the acquisition function
                self.generators[module_name].tell(seq, task.penalty_runtime)
                result.extras["compile_failures"] = (
                    result.extras.get("compile_failures", 0) + 1
                )
                continue
            compiled, stats = outcome.value
            feats = self._features_of(module_name, seq, compiled, stats)
            merged = dict(base_without[module_name])
            merged.update(self.model.prefix_stats(module_name, feats))
            # full-config signature: the stored runtime belongs to the whole
            # program, so the key must cover the incumbent on every other
            # module too — a per-module key would resurrect runtimes
            # measured under a stale incumbent
            sig = self.model.signature_merged(merged)
            if self.use_dedup and sig in self._sig_runtime:
                # identical statistics => identical binary: reuse the
                # known runtime as generator feedback, skip profiling
                self.generators[module_name].tell(seq, self._sig_runtime[sig])
                result.extras["dedup_hits"] += 1
                continue
            scored.append((module_name, seq, compiled, stats, provenance, merged, sig))
        span_feat.set(
            scored=len(scored),
            dedup_hits=result.extras["dedup_hits"] - dedup_before,
            compile_failures=result.extras.get("compile_failures", 0)
            - failures_before,
        )
        span_feat.__exit__(None, None, None)
        if not scored:
            return None
        t0 = time.perf_counter()
        span_af = tracer.span("acquisition", candidates=len(scored))
        span_af.__enter__()
        # the whole surviving population scores in two batched array ops —
        # one design-matrix fill for the GP posterior, one for coverage
        merged_all = [s[5] for s in scored]
        mu, sigma = self.model.predict_merged(merged_all)
        coverages = self.model.coverage_many(merged_all)
        if self.use_coverage:
            # two-regime acquisition (§5.3.4): candidates inside the observed
            # feature coverage compete on a damped UCB — extrapolated
            # uncertainty cannot dominate — while a budgeted novelty channel
            # (epsilon of iterations) measures the most promising candidate
            # whose statistics introduce unseen feature values, preferring
            # those generated near the incumbent (DES/GA provenance), so new
            # statistic dimensions keep entering the model's coverage.
            damp = (
                self.coverage_floor
                + (1.0 - self.coverage_floor) * coverages**self.coverage_gamma
            )
            af = -mu + np.sqrt(self.beta) * sigma * damp
            novel_mask = coverages < 1.0 - 1e-9
            if novel_mask.any() and self.rng.random() < self.novelty_epsilon:
                af_novel = -mu + np.sqrt(self.beta) * sigma
                af_novel = af_novel + 0.25 * np.asarray(
                    [1.0 if s[4] in ("des", "ga") else 0.0 for s in scored]
                )
                af_novel[~novel_mask] = -np.inf
                best = int(np.argmax(af_novel))
                self.model_seconds += time.perf_counter() - t0
                span_af.set(channel="novelty")
                span_af.__exit__(None, None, None)
                module_name, seq, compiled, stats, provenance, _pm, _sig = scored[best]
                if self.diagnostics:
                    self._pending_decision = {
                        "channel": "novelty",
                        "pred_mu": float(mu[best]),
                        "pred_sigma": float(sigma[best]),
                        "acq": float(af_novel[best]),
                        "coverage": float(coverages[best]),
                        "coverage_damp": float(damp[best]),
                        "n_candidates": len(scored),
                        "proposed": proposed,
                    }
                return (
                    module_name,
                    seq,
                    compiled,
                    stats,
                    f"novel-{provenance}",
                    float(coverages[best]),
                )
        else:
            af = -mu + np.sqrt(self.beta) * sigma
        self.model_seconds += time.perf_counter() - t0
        span_af.set(channel="ucb")
        span_af.__exit__(None, None, None)
        best = int(np.argmax(af))
        module_name, seq, compiled, stats, provenance, _pm, _sig = scored[best]
        if self.diagnostics:
            self._pending_decision = {
                "channel": "ucb",
                "pred_mu": float(mu[best]),
                "pred_sigma": float(sigma[best]),
                "acq": float(af[best]),
                "coverage": float(coverages[best]),
                "coverage_damp": float(damp[best]) if self.use_coverage else None,
                "n_candidates": len(scored),
                "proposed": proposed,
            }
        return module_name, seq, compiled, stats, provenance, float(coverages[best])

    def _modules_to_consider(self) -> List[str]:
        if self.module_policy == "adaptive":
            return list(self.task.hot_modules)
        # round-robin: one module per iteration
        mods = list(self.task.hot_modules)
        m = mods[self._rr_cursor % len(mods)]
        self._rr_cursor += 1
        return [m]

    def _pick_module_random(self) -> str:
        mods = list(self.task.hot_modules)
        w = np.asarray([self.task.module_weights.get(m, 0.0) + 1e-9 for m in mods])
        return mods[int(self.rng.choice(len(mods), p=w / w.sum()))]

    def _best_feats(self) -> Dict[str, Dict[str, int]]:
        return self._best_feats_cache

    # -- measurement ------------------------------------------------------------------
    def _measure_config(
        self,
        cfg: Dict[str, np.ndarray],
        result: TuningResult,
        winner: str,
        module: Optional[str] = None,
        precompiled: Optional[Tuple[str, Module, Dict[str, int]]] = None,
        coverage: float = float("nan"),
    ) -> None:
        task = self.task
        compiled: Dict[str, Module] = {}
        stats_all: Dict[str, Dict[str, int]] = {}
        feats_all: Dict[str, Dict[str, int]] = {}
        missing: List[Tuple[str, np.ndarray]] = []
        for name, seq in cfg.items():
            if precompiled is not None and precompiled[0] == name:
                compiled[name], stats_all[name] = precompiled[1], precompiled[2]
            elif name in self._best_seq and np.array_equal(seq, self._best_seq[name]) and name in self._best_compiled:
                compiled[name], stats_all[name] = self._best_compiled[name], self._best_stats[name]
            else:
                missing.append((name, seq))
        status = "ok"
        if missing:  # init/fallback configs: compile every module in one batch
            for (name, _seq), outcome in zip(
                missing, task.compile_batch(missing, outcomes=True)
            ):
                if not outcome.ok:
                    if status == "ok":
                        status = outcome.status
                    continue
                compiled[name], stats_all[name] = outcome.value
        per_module_seqs = {name: tuple(task.decode(seq)) for name, seq in cfg.items()}
        if status == "ok":
            for name, seq in cfg.items():
                feats_all[name] = self._features_of(
                    name, seq, compiled[name], stats_all[name]
                )
            runtime, ok = task.measure(compiled, sequences=per_module_seqs)
            if not ok:
                status = task.last_failure or "incorrect"
        else:
            # a module failed to compile: the whole configuration is
            # infeasible — record it and keep searching
            runtime, ok = task.penalty_runtime, False
        idx = len(result.measurements)
        changed = module if module is not None else "all"
        if module is not None:
            seq_names = per_module_seqs[module]
        else:
            # whole-config measurement (init/fallback): the flat field holds
            # every module's passes, not an arbitrary module's presented as
            # representative
            seq_names = tuple(
                p for name in sorted(per_module_seqs) for p in per_module_seqs[name]
            )
        result.measurements.append(
            Measurement(
                index=idx,
                module=changed,
                sequence=seq_names,
                runtime=runtime if ok else float("inf"),
                speedup_vs_o3=task.o3_runtime / runtime if ok else 0.0,
                correct=ok,
                sequences=per_module_seqs,
                status=status,
            )
        )
        result.extras["winner_strategies"].append(winner)
        result.extras["chosen_modules"].append(changed)
        result.extras["chosen_coverage"].append(coverage)
        # one durable slot record per budget slot: what was tried and what
        # came back — the audit trail `repro analyze` reads off an
        # interrupted run (no-op without a WAL; suppressed during replay)
        task.wal_slot(
            {
                "index": idx,
                "module": changed,
                "winner": winner,
                "sequences": {n: list(s) for n, s in per_module_seqs.items()},
                "runtime": runtime if ok else float("inf"),
                "correct": ok,
                "status": status,
                "coverage": coverage,
            }
        )
        if not ok:
            # infeasible (failed compile, crash, or differential mismatch):
            # penalty feedback to the generators so the search moves away,
            # but the observation never enters the cost model, the dedup
            # table, or incumbent selection — and the budget loop continues
            for name, seq in cfg.items():
                self.generators[name].tell(seq, task.penalty_runtime)
            return

        t0 = time.perf_counter()
        self.model.add_observation(feats_all, runtime)
        self.model_seconds += time.perf_counter() - t0
        # dedup table: runtimes are whole-program facts, so the key is the
        # FULL configuration's statistics signature; assignment (not
        # setdefault) keeps the entry at the latest measurement
        self._sig_runtime[self.model.signature(feats_all)] = runtime
        for name, seq in cfg.items():
            self.generators[name].tell(seq, runtime)
        if runtime < self._best_runtime:
            self._best_runtime = runtime
            self._best_seq = {n: np.asarray(s, dtype=int).copy() for n, s in cfg.items()}
            self._best_compiled = dict(compiled)
            self._best_stats = dict(stats_all)
            self._best_feats_cache = dict(feats_all)
