"""The autotuning task framework (§5.3.6 and the practicality contribution).

``AutotuningTask`` owns everything a tuner needs and nothing more:

* **hot-module identification** — a one-off profile of the ``-O3`` binary
  (our ``perf`` stand-in) selects the modules covering 90% of runtime;
* **cheap compilation** — ``compile_module`` applies a pass sequence to one
  source module and returns its statistics (``opt -stats-json``);
  ``compile_batch`` evaluates a whole candidate population through the
  :class:`~repro.core.eval_engine.CompileEngine` — parallel workers
  (``jobs=N``) plus a bounded LRU compilation cache, the "cheap and
  parallelisable" claim of §5.3 made real;
* **expensive measurement** — ``measure`` links per-module binaries and
  runs the program on the simulated platform with noisy timing, with
  memoisation keyed by the full configuration;
* **correctness** — differential testing of every measured binary against
  the unoptimised program's output (§1.1).

Users point it at a :class:`~repro.workloads.Program`; no re-implementation
of the build process is needed — the practicality barrier of §1.2.3.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from functools import partial
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.ir import Module
from repro.compiler.opt_tool import run_opt
from repro.compiler.pass_manager import PassTrace
from repro.compiler.pipelines import SEARCH_PASSES, pipeline
from repro.core.eval_engine import CompileEngine, CompileOutcome
from repro.core.faults import FaultInjector, corrupt_module, parse_fault_kinds
from repro.machine.interp import InterpError
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.machine.artifacts import ArtifactStore, harvest_compile_result
from repro.machine.platforms import Platform, get_platform
from repro.machine.profiler import Profiler
from repro.utils.rng import SeedLike, as_generator
from repro.workloads.program import Program

__all__ = ["AutotuningTask"]


def _harvest_value(store: ArtifactStore, value) -> list:
    """Serial/thread-executor ``artifact_fn``: compile straight into the
    task's own store (same process, so no pickling and no merge step)."""
    module = getattr(value, "module", None)
    if module is None and isinstance(value, (tuple, list)) and value:
        module = value[0]
    if not isinstance(module, Module):
        return []
    store.harvest([module])
    return []


class AutotuningTask:
    """Compile/measure/verify interface over one program on one platform."""

    def __init__(
        self,
        program: Program,
        platform: str = "arm-a57",
        seed: SeedLike = None,
        passes: Optional[Sequence[str]] = None,
        seq_length: int = 32,
        repeats: int = 3,
        hot_coverage: float = 0.9,
        check_outputs: bool = True,
        objective: str = "runtime",
        jobs: int = 1,
        compile_cache_size: int = 2048,
        executor: str = "auto",
        fault_injector: Optional[FaultInjector] = None,
        compile_timeout: Optional[float] = None,
        compile_retries: int = 2,
        retry_backoff: float = 0.01,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        metrics_every: int = 0,
        measure_engine: str = "bytecode",
        pipeline_trace: str = "off",
        wal: Optional["WriteAheadLog"] = None,  # noqa: F821 (forward ref)
        kill_after_iter: Optional[int] = None,
        fuse: bool = True,
        execution_memo: bool = True,
        shared_artifacts: bool = True,
        artifact_spill_dir: Optional[str] = None,
    ) -> None:
        """``objective``: ``"runtime"`` (the paper's focus) or ``"codesize"``
        (the simpler static objective discussed in §1 — evaluated without
        executing the program, though differential testing still runs it
        once for correctness).

        ``jobs``/``compile_cache_size``/``executor`` configure the
        :class:`~repro.core.eval_engine.CompileEngine` behind
        :meth:`compile_module`/:meth:`compile_batch`: worker count
        (``jobs=1`` is a deterministic serial loop), the bounded LRU
        compilation cache, and the pool flavour (``"auto"``, ``"serial"``,
        ``"thread"``, ``"process"``).

        ``fault_injector`` wraps candidate compiles with seeded chaos
        (:mod:`repro.core.faults`); ``compile_timeout``/``compile_retries``/
        ``retry_backoff`` are the engine's per-candidate timeout and
        retry-with-backoff knobs.  Absent an explicit injector, the
        ``REPRO_INJECT_FAULTS``/``REPRO_FAULT_RATE``/``REPRO_FAULT_SEED``/
        ``REPRO_FAULT_HANG_SECONDS`` environment variables build one — the
        hook CI's chaos job uses to run whole suites under fault injection.

        ``tracer``/``metrics`` wire the observability stack
        (:mod:`repro.obs`) through the task: measurement spans and
        ``task.*`` metrics are recorded here, and both are shared with the
        :class:`~repro.core.eval_engine.CompileEngine` so compile-batch
        spans land in the same trace and the engine's ``engine.*``
        counters in the same registry.  ``metrics_every=N`` emits a
        ``metrics`` trace event (plus a debug log line) every N
        measurements.  Defaults are the disabled
        :data:`~repro.obs.trace.NULL_TRACER` and a private registry —
        tracing consumes no RNG, so instrumented and uninstrumented runs
        produce bit-identical tuner histories at the same seed.

        ``measure_engine`` selects the execution backend for measurements:
        ``"bytecode"`` (default) runs the flat register VM with a per-module
        bytecode cache keyed by the compile-cache config signature;
        ``"tree"`` runs the reference tree-walking interpreter.  Both are
        bit-identical in results and RNG consumption, so tuner histories do
        not depend on the engine.

        ``pipeline_trace`` samples per-pass compiler observability
        (``"off"``/``"incumbents"``/``"all"``): after a live measurement,
        the measured configuration's modules are recompiled once more with
        a :class:`~repro.compiler.pass_manager.PassTrace` and the per-pass
        timeline lands in the trace as the ``pass.*`` span family
        (``pass.trace`` > ``pass.pipeline`` > ``pass.run``).
        ``"incumbents"`` (the bounded default for traced tunes) traces
        only measurements that improve the task's best feasible runtime so
        far; ``"all"`` traces every live measurement.  The replay consumes
        no RNG and never touches the measurement path, so tuner histories
        are bit-identical across all three modes.

        ``wal`` attaches a :class:`~repro.core.wal.WriteAheadLog`: every
        live measurement appends one fsync'd ``measure`` record (verdict +
        profiler-RNG checkpoint) and tuners log one ``slot`` record per
        budget slot via :meth:`wal_slot` — the durable state ``repro tune
        --resume`` replays through :meth:`start_replay`.  ``kill_after_iter``
        is the chaos-test hook: SIGKILL this process the moment the Nth
        *live* measurement's WAL record is durable (so the harness kills at
        a point the log provably covers).

        ``fuse``/``execution_memo``/``shared_artifacts`` are the measurement
        throughput toggles: superblock-fused bytecode kernels, the
        IR-identity execution memo (skip re-executing byte-identical final
        IR; noise is still drawn exactly as live, so histories are
        bit-identical with each toggle on or off), and the content-addressed
        :class:`~repro.machine.artifacts.ArtifactStore` shared between the
        profiler and the compile engine's pool workers.
        ``artifact_spill_dir`` persists store entries on disk (one pickle
        per IR fingerprint) so ``--resume`` and daemon sessions start
        warm."""
        if objective not in ("runtime", "codesize"):
            raise ValueError(f"unknown objective {objective!r}")
        self.objective = objective
        self.program = program
        self.platform: Platform = get_platform(platform)
        self.target = self.platform.target_info()
        self.measure_engine = measure_engine
        self.fuse = bool(fuse)
        self.execution_memo = bool(execution_memo)
        # a spill dir implies the shared store: spilling IS sharing (on disk)
        self.artifacts: Optional[ArtifactStore] = (
            ArtifactStore(spill_dir=artifact_spill_dir)
            if shared_artifacts or artifact_spill_dir
            else None
        )
        self.profiler = Profiler(
            self.platform,
            seed=as_generator(seed),
            fuel=program.fuel,
            engine=measure_engine,
            fuse=self.fuse,
            execution_memo=self.execution_memo,
            artifacts=self.artifacts,
        )
        self.passes: List[str] = list(passes) if passes is not None else list(SEARCH_PASSES)
        self.seq_length = seq_length
        self.repeats = repeats
        self.check_outputs = check_outputs

        # one-off reference + O3/O0 anchors
        self._reference_sig = program.reference_output().output_signature()
        self._o3_modules: Dict[str, Module] = {}
        self._o3_stats: Dict[str, Dict[str, int]] = {}
        o3 = pipeline("-O3")
        for mod in program.modules:
            cr = run_opt(mod, o3, target=self.target)
            self._o3_modules[mod.name] = cr.module
            self._o3_stats[mod.name] = cr.stats_json()
        if self.objective == "codesize":
            self.o3_runtime = float(
                sum(self._o3_modules[m.name].num_instrs() for m in program.modules)
            )
            self.o0_runtime = float(sum(m.num_instrs() for m in program.modules))
        else:
            self.o3_runtime = self.profiler.measure(
                [self._o3_modules[m.name] for m in program.modules], repeats=repeats
            ).seconds
            self.o0_runtime = self.profiler.measure(
                list(program.modules), repeats=repeats
            ).seconds

        # hot module identification from the -O3 profile (perf stand-in)
        prof = self.profiler.function_profile(
            [self._o3_modules[m.name] for m in program.modules]
        )
        self.hot_modules: List[str] = prof.hot_modules(hot_coverage)
        self.module_weights: Dict[str, float] = {
            name: prof.module_seconds.get(name, 0.0) / max(prof.total_seconds, 1e-12)
            for name in self.hot_modules
        }

        # fault injection: an explicit injector wins; otherwise the chaos
        # environment variables may build one (CI's chaos job)
        if fault_injector is None:
            env_kinds = parse_fault_kinds(os.environ.get("REPRO_INJECT_FAULTS", ""))
            if env_kinds:
                fault_injector = FaultInjector(
                    rate=float(os.environ.get("REPRO_FAULT_RATE", "0.02")),
                    kinds=env_kinds,
                    seed=int(os.environ.get("REPRO_FAULT_SEED", "0")),
                    hang_seconds=float(
                        os.environ.get("REPRO_FAULT_HANG_SECONDS", "0.05")
                    ),
                )
        self.fault_injector = fault_injector
        if fault_injector is not None and fault_injector.corrupt_fn is None:
            fault_injector.corrupt_fn = corrupt_module
        compile_fn = (
            fault_injector.wrap(self._compile_uncached)
            if fault_injector is not None
            else self._compile_uncached
        )

        # observability: one tracer + one registry shared with the engine,
        # so compile spans and engine counters land in the run's artifacts
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics_every = int(metrics_every)
        self._m_measurements = self.metrics.counter("task.measurements")
        self._m_measure_cache_hits = self.metrics.counter("task.measure_cache_hits")
        self._m_replayed = self.metrics.counter("task.measure_replayed")
        self._m_crashes = self.metrics.counter("task.measure_crashes")
        self._m_incorrect = self.metrics.counter("task.measure_incorrect")
        self._m_memo_hits = self.metrics.counter("task.execution_memo_hits")
        self._m_artifact_hits = self.metrics.counter("task.artifact_hits")
        self._m_measure_hist = self.metrics.histogram("task.measure_seconds")

        # compile engine: parallel workers + bounded LRU compilation cache.
        # Keyed by the decoded pass-name tuple so distinct index encodings of
        # the same pipeline share one cache entry.
        self.jobs = int(jobs)
        artifact_fn = None
        if self.artifacts is not None:
            # Process pools need a picklable module-level fn harvesting into
            # the worker's own store (fresh artifacts ride back with the
            # batch result); serial/thread workers share our store directly.
            artifact_fn = (
                harvest_compile_result
                if executor == "process"
                else partial(_harvest_value, self.artifacts)
            )
        self.engine = CompileEngine(
            compile_fn,
            jobs=self.jobs,
            cache_size=compile_cache_size,
            executor=executor,
            key_fn=lambda name, seq: (name, tuple(self.decode(seq))),
            timeout=compile_timeout,
            max_retries=compile_retries,
            retry_backoff=retry_backoff,
            metrics=self.metrics,
            tracer=self.tracer,
            shared_artifacts=self.artifacts,
            artifact_fn=artifact_fn,
        )

        # pipeline observability: sampled per-pass trace replays
        if pipeline_trace not in ("off", "incumbents", "all"):
            raise ValueError(
                f"unknown pipeline_trace mode {pipeline_trace!r}; "
                "expected off, incumbents, or all"
            )
        self.pipeline_trace = pipeline_trace
        self._trace_best = float("inf")
        self.n_pass_traces = 0
        self.pass_trace_seconds = 0.0

        # bookkeeping / statistics the benches report (Fig 5.12);
        # n_compiles/compile_seconds live in the engine (thread-safe)
        self.n_measurements = 0
        self.n_incorrect = 0
        self.n_crashes = 0
        self.measure_seconds = 0.0
        self.last_failure = ""
        self._measure_cache: Dict[Tuple, Tuple[float, bool, str]] = {}

        # durable sessions: write-ahead log, replay stream, stop flag
        self.wal = wal
        if wal is not None and not wal.resume:
            # one anchor record up front: the -O3/-O0 runtimes that turn a
            # raw measured runtime into a speedup.  `repro watch` reads it
            # to render live speedup curves before result.json exists.
            # Replay ignores it (split_wal keeps measure/slot only).
            wal.append(
                {
                    "type": "anchor",
                    "o3_runtime": self.o3_runtime,
                    "o0_runtime": self.o0_runtime,
                    "hot_modules": list(self.hot_modules),
                }
            )
        self.kill_after_iter = (
            int(kill_after_iter) if kill_after_iter is not None else None
        )
        self._stop = threading.Event()
        self._replay: Deque[Dict[str, object]] = deque()
        self._suppress_slots = 0

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Shut the compile engine's worker pool down (idempotent)."""
        self.engine.close()

    # -- durable sessions --------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the tuner loop to stop at the next budget-slot boundary.

        Signal-handler safe (sets a :class:`threading.Event`); tuners poll
        :attr:`stop_requested` between measurements, finish the in-flight
        slot, and return a partial — but valid and resumable — result."""
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()

    @property
    def replaying(self) -> bool:
        """True while measurements are being served from a WAL replay."""
        return bool(self._replay)

    def start_replay(self, records: Sequence[Dict[str, object]]) -> int:
        """Arm WAL replay: the next ``len(measure records)`` non-cached
        measurements return recorded verdicts instead of running the
        profiler, and an equal number of tuner ``slot`` records are
        suppressed (the re-executed loop re-produces them verbatim).

        When the replay stream drains, the profiler's measurement-noise RNG
        is restored from the last record's checkpoint, so live measurements
        continue the exact noise stream of the killed run.  Returns the
        number of measurements that will be replayed."""
        from repro.core.wal import split_wal

        measures, slots = split_wal(list(records))
        self._replay = deque(measures)
        # suppress exactly the slot records already on disk — counting, not
        # a boolean, so a kill between a measure record and its slot record
        # re-logs only the genuinely missing slot
        self._suppress_slots = len(slots)
        return len(measures)

    def wal_slot(self, record: Dict[str, object]) -> None:
        """Tuner hook: log one budget slot to the WAL (no-op without one).

        During replay the first :attr:`_suppress_slots` calls are dropped —
        they duplicate records already recovered from disk."""
        if self._suppress_slots > 0:
            self._suppress_slots -= 1
            return
        if self.wal is not None:
            self.wal.append(dict(record, type="slot"))

    def __enter__(self) -> "AutotuningTask":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- sequence plumbing -----------------------------------------------------
    @property
    def alphabet(self) -> int:
        return len(self.passes)

    @property
    def penalty_runtime(self) -> float:
        """Finite fitness assigned to infeasible candidates (compile
        failures, crashes, miscompilations) — bad enough that no search
        strategy pursues them, finite so generator/surrogate updates stay
        numerically sane (AutoPhase-style invalid-sequence masking)."""
        return 10.0 * max(self.o3_runtime, self.o0_runtime)

    def decode(self, seq_indices: Sequence[int]) -> List[str]:
        """Map integer gene indices to pass names."""
        return [self.passes[int(i)] for i in seq_indices]

    # -- cheap compilation --------------------------------------------------------
    @property
    def n_compiles(self) -> int:
        """Actual compilations performed (cache hits excluded)."""
        return self.engine.n_compiles

    @property
    def compile_seconds(self) -> float:
        """Cumulative per-candidate compile time, summed across workers."""
        return self.engine.cpu_seconds

    def _compile_uncached(
        self, module_name: str, seq_indices: Sequence[int]
    ) -> Tuple[Module, Dict[str, int]]:
        """The raw compile — a pure function of its arguments, as the
        engine's cache and parallel executor both require."""
        src = self.program.get_module(module_name)
        cr = run_opt(src, self.decode(seq_indices), target=self.target)
        return cr.module, cr.stats_json()

    def compile_module(
        self, module_name: str, seq_indices: Sequence[int]
    ) -> Tuple[Module, Dict[str, int]]:
        """Compile one source module; returns optimised IR + statistics.

        Served through the engine's LRU cache: repeated candidates (DES/GA
        resampling, O3 re-seeds) never recompile.  Returned modules are
        shared with the cache and must be treated as immutable."""
        return self.engine.compile_one(module_name, seq_indices)

    def compile_batch(
        self, items: Sequence[Tuple[str, Sequence[int]]], outcomes: bool = False
    ) -> List[Tuple[Module, Dict[str, int]]]:
        """Compile a batch of ``(module_name, sequence)`` candidates.

        Results come back in input order regardless of ``jobs``, so tuner
        behaviour is bit-identical at any parallelism level.  With
        ``outcomes=True`` each slot is a
        :class:`~repro.core.eval_engine.CompileOutcome` and candidate
        failures (crash/timeout/quarantine) are returned, not raised — the
        fault-tolerant interface every tuner uses."""
        return self.engine.compile_batch(items, outcomes=outcomes)

    def o3_module(self, module_name: str) -> Module:
        """The module's reference -O3 binary."""
        return self._o3_modules[module_name]

    def o3_stats(self, module_name: str) -> Dict[str, int]:
        """Compilation statistics of the module's -O3 build."""
        return self._o3_stats[module_name]

    # -- expensive measurement ------------------------------------------------------
    def _bytecode_keys(
        self,
        compiled: Dict[str, Module],
        sequences: Optional[Dict[str, Tuple[str, ...]]],
    ) -> List[object]:
        """Per-module bytecode-cache keys for the linked module list.

        -O3 defaults get a stable per-program key; candidate modules are
        keyed by their compile-cache config signature when known, falling
        back to object identity (safe: the profiler cache holds a strong
        reference to the keyed module)."""
        keys: List[object] = []
        for m in self.program.modules:
            if m.name not in compiled:
                keys.append(("o3", self.program.name, m.name))
            elif sequences is not None and m.name in sequences:
                keys.append(("cfg", m.name, sequences[m.name]))
            else:
                keys.append(None)
        return keys

    def measure(
        self,
        compiled: Dict[str, Module],
        config_key: Optional[Tuple] = None,
        sequences: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> Tuple[float, bool]:
        """Link ``compiled`` modules over the -O3 defaults and measure.

        Modules not present in ``compiled`` use their -O3 binary (the
        default for non-hot modules).  Returns ``(seconds, outputs_ok)``.
        ``sequences`` (module name -> decoded pass tuple) keys the bytecode
        engine's compile cache so revisited configurations skip bytecode
        compilation.

        A binary that crashes or exhausts its fuel during execution
        (``InterpError``/``FuelExhausted`` — rare pass orders really do
        this, §1.1) is an *infeasible verdict*, not a tuner-killing
        exception: the return is ``(penalty_runtime, False)`` and
        :attr:`last_failure` is set to ``"crash"`` (``"incorrect"`` for
        differential-test mismatches).  Failure verdicts are cached under
        ``config_key`` alongside successes, so a known-bad configuration is
        never re-measured on a revisit.
        """
        if config_key is not None and config_key in self._measure_cache:
            value, ok, self.last_failure = self._measure_cache[config_key]
            self._m_measure_cache_hits.inc()
            self.tracer.event(
                "measure_cached", status=self.last_failure or "ok"
            )
            return value, ok
        if self._replay:
            # resume path: serve the recorded verdict instead of measuring.
            # Cache hits never reach here (checked above, and the rebuilt
            # cache replays them too), so live and replayed runs consume
            # WAL records in 1:1 lockstep.
            rec = self._replay.popleft()
            value = float(rec["value"])
            ok = bool(rec["ok"])
            failure = str(rec.get("status") or "")
            self.n_measurements += 1
            # metrics epoch accounting: a replayed verdict is NOT a fresh
            # profiler measurement — it was counted by the epoch that
            # performed it (and, resumed-run metrics being merged across
            # epochs, summing `task.measurements` must not double-count).
            # `task.measure_replayed` tracks the replay volume instead.
            self._m_replayed.inc()
            if failure == "incorrect":
                self.n_incorrect += 1
            elif failure == "crash":
                self.n_crashes += 1
            self.last_failure = failure
            if config_key is not None:
                self._measure_cache[config_key] = (value, ok, failure)
            self.tracer.event(
                "measure_replayed", n=self.n_measurements, status=failure or "ok"
            )
            if not self._replay:
                # seam: continue the killed run's measurement-noise stream
                state = rec.get("rng")
                if state is not None:
                    self.profiler.rng.bit_generator.state = state
            return value, ok
        t0 = time.perf_counter()
        with self.tracer.span(
            "measure",
            modules=len(compiled),
            repeats=self.repeats,
            engine=self.measure_engine,
        ) as sp:
            linked = [
                compiled.get(m.name, self._o3_modules[m.name])
                for m in self.program.modules
            ]
            keys = self._bytecode_keys(compiled, sequences)
            failure = ""
            memo0 = self.profiler.execution_memo_hits
            art0 = self.artifacts.hits if self.artifacts is not None else 0
            try:
                if self.objective == "codesize":
                    value = float(sum(mod.num_instrs() for mod in linked))
                    ok = True
                    if self.check_outputs:  # still verify semantics once
                        result = self.profiler.execute(linked, keys=keys)
                        ok = result.output_signature() == self._reference_sig
                else:
                    m = self.profiler.measure(linked, repeats=self.repeats, keys=keys)
                    value = m.seconds
                    ok = True
                    if self.check_outputs:
                        ok = m.result.output_signature() == self._reference_sig
                if not ok:
                    failure = "incorrect"
                    self.n_incorrect += 1
                    self._m_incorrect.inc()
            except InterpError:  # includes FuelExhausted
                value, ok, failure = self.penalty_runtime, False, "crash"
                self.n_crashes += 1
                self._m_crashes.inc()
            # deltas span the crash path too: a memoized crash is still a
            # memo hit, and the counters must say so
            memo_d = self.profiler.execution_memo_hits - memo0
            if memo_d:
                self._m_memo_hits.inc(memo_d)
            art_d = (
                self.artifacts.hits - art0 if self.artifacts is not None else 0
            )
            if art_d:
                self._m_artifact_hits.inc(art_d)
            sp.set(status=failure or "ok", memo_hits=memo_d)
        dt = time.perf_counter() - t0
        self.n_measurements += 1
        self.measure_seconds += dt
        self._m_measurements.inc()
        self._m_measure_hist.observe(dt)
        self.last_failure = failure
        if config_key is not None:
            self._measure_cache[config_key] = (value, ok, failure)
        if self.wal is not None:
            # the verdict plus the post-measurement RNG checkpoint: enough
            # to replay this measurement AND to resume the noise stream if
            # this turns out to be the last record before a kill
            self.wal.append(
                {
                    "type": "measure",
                    "n": self.n_measurements,
                    "value": value,
                    "ok": ok,
                    "status": failure,
                    "rng": self.profiler.rng.bit_generator.state,
                }
            )
        if (
            self.kill_after_iter is not None
            and self.n_measurements >= self.kill_after_iter
        ):
            # chaos-harness hook: die hard (no cleanup, no atexit) right
            # after the Nth live measurement is durable in the WAL
            os.kill(os.getpid(), signal.SIGKILL)
        if self.metrics_every and self.n_measurements % self.metrics_every == 0:
            flat = self.metrics.flat()
            self.tracer.event(
                "metrics", n_measurements=self.n_measurements, metrics=flat
            )
            get_logger(__name__).debug(
                "metrics @ %d measurements: %s", self.n_measurements, flat
            )
        if self.pipeline_trace != "off" and sequences:
            improved = ok and value < self._trace_best
            if improved:
                self._trace_best = value
            if improved or self.pipeline_trace == "all":
                self._emit_pass_trace(
                    sequences, runtime=value,
                    reason="incumbent" if improved else "all",
                )
        return value, ok

    def _emit_pass_trace(
        self,
        sequences: Dict[str, Tuple[str, ...]],
        runtime: float,
        reason: str,
    ) -> None:
        """Recompile a just-measured configuration with per-pass tracing.

        Runs *outside* the measurement path, after the verdict (and its
        WAL record) are final: the compile engine's cache, the profiler's
        RNG, and the measure cache are untouched, so sampled tracing
        cannot perturb the search.  Emits one ``pass.trace`` span holding
        a ``pass.pipeline`` span per module with nested ``pass.run``
        spans — each carrying the pass's ``changed`` flag, statistics
        delta, and IR fingerprint delta."""
        if not self.tracer.enabled:
            return
        t0 = time.perf_counter()
        with self.tracer.span(
            "pass.trace",
            n=self.n_measurements,
            runtime=runtime,
            reason=reason,
            modules=len(sequences),
        ):
            for name in sorted(sequences):
                seq_names = list(sequences[name])
                trace = PassTrace()
                with self.tracer.span(
                    "pass.pipeline", module=name, length=len(seq_names)
                ) as sp:
                    base = self.tracer.now()
                    run_opt(
                        self.program.get_module(name), seq_names,
                        target=self.target, trace=trace,
                    )
                    for e in trace.entries:
                        self.tracer.span_event(
                            "pass.run",
                            wall=e.wall,
                            cpu=e.cpu,
                            ts=base + e.offset,
                            index=e.index,
                            module=name,
                            changed=e.changed,
                            stats_delta=e.stats_delta,
                            ir_delta=e.ir_delta(),
                            **{"pass": e.name},
                        )
                    sp.set(**trace.summary())
        self.n_pass_traces += 1
        self.pass_trace_seconds += time.perf_counter() - t0

    def measure_config(self, config: Dict[str, Sequence[int]]) -> Tuple[float, bool]:
        """Compile every module in ``config`` and measure the linked binary.

        A configuration containing a candidate that fails to compile
        (crash, timeout, quarantined key) is infeasible: returns
        ``(penalty_runtime, False)`` without measuring."""
        compiled = {}
        items = [(name, seq) for name, seq in config.items()]
        for (name, _seq), outcome in zip(items, self.compile_batch(items, outcomes=True)):
            if not outcome.ok:
                self.last_failure = outcome.status
                return self.penalty_runtime, False
            compiled[name], _stats = outcome.value
        key = tuple(sorted((n, tuple(int(i) for i in s)) for n, s in config.items()))
        sequences = {n: tuple(self.decode(s)) for n, s in config.items()}
        return self.measure(compiled, config_key=key, sequences=sequences)

    def measure_batch(
        self, configs: Sequence[Dict[str, Sequence[int]]]
    ) -> List[Tuple[float, bool]]:
        """Measure many configurations with ONE compile-engine dispatch.

        All candidates across all configurations are flattened into a single
        ``compile_batch`` call — one pool dispatch amortises pickling and
        worker warm-up over the whole population, and the engine dedups
        repeated (module, sequence) pairs across configurations.
        Measurements then run in input order, so results (and the seeded
        noise stream) are bit-identical to calling :meth:`measure_config`
        in a loop."""
        grouped = self.engine.compile_configs(configs, outcomes=True)
        results: List[Tuple[float, bool]] = []
        for config, outcomes in zip(configs, grouped):
            bad = next((o for o in outcomes.values() if not o.ok), None)
            if bad is not None:
                self.last_failure = bad.status
                results.append((self.penalty_runtime, False))
                continue
            compiled = {name: o.value[0] for name, o in outcomes.items()}
            key = tuple(
                sorted((n, tuple(int(i) for i in s)) for n, s in config.items())
            )
            sequences = {n: tuple(self.decode(s)) for n, s in config.items()}
            results.append(self.measure(compiled, config_key=key, sequences=sequences))
        return results

    def timing_breakdown(self) -> Dict[str, float]:
        """Compile/measure time and counts (Fig 5.12).

        ``compile_seconds`` is the cumulative per-candidate compile time
        (summed across workers); ``compile_wall_seconds`` is wall clock
        spent inside the engine — their ratio is the honest parallel
        speedup at ``jobs > 1``.  Cache hits never recompile, so
        ``n_compiles`` counts real work only.  The fault-tolerance counters
        (failures/timeouts/retries/quarantine from the engine, plus crashed
        and incorrect measurements) make chaos runs auditable."""
        return {
            "compile_seconds": self.compile_seconds,
            "measure_seconds": self.measure_seconds,
            "n_compiles": self.n_compiles,
            "n_measurements": self.n_measurements,
            "compile_wall_seconds": self.engine.wall_seconds,
            "compile_cache_hits": self.engine.hits,
            "compile_cache_misses": self.engine.misses,
            "compile_cache_hit_rate": self.engine.hit_rate(),
            "jobs": self.jobs,
            "compile_failures": self.engine.n_failures,
            "compile_timeouts": self.engine.n_timeouts,
            "compile_retries": self.engine.n_retries,
            "quarantine_size": self.engine.quarantine_size,
            "quarantine_hits": self.engine.quarantine_hits,
            "measure_crashes": self.n_crashes,
            "measure_incorrect": self.n_incorrect,
            "measure_engine": self.measure_engine,
            "bytecode_compiles": self.profiler.bytecode_compiles,
            "bytecode_cache_hits": self.profiler.bytecode_cache_hits,
            "fuse": self.fuse,
            "execution_memo": self.execution_memo,
            "shared_artifacts": self.artifacts is not None,
            "execution_memo_hits": self.profiler.execution_memo_hits,
            "fused_kernels": self.profiler.fused_kernels,
            "fused_ops": self.profiler.fused_ops,
            "artifact_store": (
                self.artifacts.stats() if self.artifacts is not None else None
            ),
            "pipeline_trace": self.pipeline_trace,
            "n_pass_traces": self.n_pass_traces,
            "pass_trace_seconds": self.pass_trace_seconds,
        }
