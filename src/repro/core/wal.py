"""Write-ahead measurement log: durable incremental tuning state.

A tuning run spends its budget on *expensive measurements*; everything
else — candidate generation, compilation, the GP fit — is cheap and
deterministic given the seed.  The WAL therefore persists exactly the
expensive, irreproducible facts: one fsync'd JSONL record per completed
measurement, written *before* the tuner acts on the outcome, so a
SIGKILL'd or OOM'd process never loses more than the measurement it was
about to log.

Resume is **deterministic re-execution**: ``repro tune --resume`` rebuilds
the task and tuner from the recorded manifest (same seed, same program,
same fault injector), re-runs the search loop from iteration zero, and
serves the first *k* measurement verdicts from the WAL instead of the
profiler (:meth:`~repro.core.task.AutotuningTask.start_replay`).
Candidate compilation *is* re-executed — it is the paper's "cheap and
parallelisable" stage, pure by construction, and content-keyed fault
injection replays identically — so every RNG stream, generator
population, dedup table, and GP posterior is reconstructed bit-exactly by
the same code path that built it.  The only state that cannot be replayed
(the profiler's measurement-noise RNG, advanced solely by real
measurements) is checkpointed in every record and restored at the
replay/live seam.  The result: kill at any iteration *k*, resume, and the
final history is bit-identical to an uninterrupted run.

Record taxonomy (``"type"`` field):

``wal``
    header record — schema tag, written once at file creation;
``measure``
    one completed expensive measurement, written by
    :meth:`AutotuningTask.measure`: the raw verdict ``(value, ok,
    status)``, the running measurement counter, and the profiler RNG
    checkpoint.  These are the replay stream;
``slot``
    one budget slot, written by the tuner after recording a
    :class:`~repro.core.result.Measurement`: index, module, full
    per-module sequence configuration, runtime, status, provenance.
    Slot records make an interrupted run analyzable (``repro analyze``
    reports iterations-completed from them) and are suppressed — not
    re-written — during replay.

Durability contract: :meth:`WriteAheadLog.append` flushes and fsyncs every
record, so at most the final line of a killed run is torn;
:func:`read_wal` skips unparseable lines, and resume-mode opening
terminates a torn tail so the append seam stays parseable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["WAL_SCHEMA", "WriteAheadLog", "read_wal", "split_wal"]

#: Schema tag carried by the WAL header record.
WAL_SCHEMA = "repro.wal/v1"


class WriteAheadLog:
    """Append-only fsync'd JSONL log of completed measurements.

    Parameters
    ----------
    path:
        the log file (conventionally ``<run-dir>/wal.jsonl``); parent
        directories are created as needed.
    resume:
        ``False`` (a fresh run) truncates any stale log and writes a new
        header; ``True`` opens in append mode, first terminating a torn
        trailing line (a mid-write kill leaves at most one) so records
        appended across the seam parse cleanly.
    """

    def __init__(self, path: Union[str, Path], resume: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.resume = bool(resume)
        had_records = (
            resume and self.path.exists() and self.path.stat().st_size > 0
        )
        needs_newline = False
        if had_records:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        self._fh = open(self.path, "a" if resume else "w")
        self._closed = False
        self.n_appended = 0
        if needs_newline:
            self._fh.write("\n")
            self._fh.flush()
        if not had_records:
            self.append({"type": "wal", "schema": WAL_SCHEMA})

    def append(self, record: Dict[str, object]) -> None:
        """Write one record as a JSONL line, flushed and fsync'd.

        The fsync is the durability guarantee the whole resume story rests
        on: once this returns, the record survives SIGKILL, OOM, and
        power loss (to the extent the filesystem honours fsync)."""
        from repro.obs.recorder import _jsonable

        self._fh.write(json.dumps(_jsonable(record), sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.n_appended += 1

    def close(self) -> None:
        """Flush, fsync and close (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_wal(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a ``wal.jsonl`` back into its records, header excluded.

    Tolerant by design: a process killed mid-append leaves a truncated
    final line, and a resume seam may leave an empty line — both are
    skipped, never fatal.  A missing file reads as no records (a run that
    never measured)."""
    p = Path(path)
    if not p.exists():
        return []
    records: List[Dict[str, object]] = []
    with open(p) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a killed run
            if isinstance(rec, dict) and rec.get("type") != "wal":
                records.append(rec)
    return records


def split_wal(
    records: List[Dict[str, object]],
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Split records into ``(measure_records, slot_records)`` in order."""
    measures = [r for r in records if r.get("type") == "measure"]
    slots = [r for r in records if r.get("type") == "slot"]
    return measures, slots
