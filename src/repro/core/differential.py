"""Differential testing of optimised binaries (§1.1, §5.4).

Compares the observable behaviour (return value + output stream) of an
optimised module configuration against the unoptimised program.  The
:class:`~repro.core.task.AutotuningTask` applies this to every measured
binary; this standalone helper is the API users (and the test suite's
property-based pass-correctness tests) call directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.ir import Module
from repro.machine.interp import InterpError, run_program
from repro.workloads.program import Program

__all__ = ["differential_test"]


def differential_test(
    program: Program,
    sequences: Dict[str, Sequence[str]],
    target=None,
) -> Tuple[bool, str]:
    """Compile ``program`` with per-module ``sequences`` and compare outputs.

    Returns ``(equivalent, detail)``.  A crash in the optimised program (but
    not the reference) counts as a deviation, mirroring the paper's note
    that rare orderings can introduce crashes.
    """
    ref = program.reference_output().output_signature()
    try:
        linked, _ = program.compile(sequences, target=target)
        out = run_program(linked, program.entry, fuel=program.fuel)
    except InterpError as exc:
        return False, f"optimised program crashed: {exc}"
    if out.output_signature() != ref:
        return False, (
            f"output mismatch: reference {ref!r} vs optimised {out.output_signature()!r}"
        )
    return True, "outputs equivalent"
