"""CITROEN's candidate pass-sequence generator (§5.3.5, Fig 5.4).

The discrete adaptation of AIBO's heuristic AF-maximiser initialisation:
an ensemble of sequence optimisers — DES (1+lambda mutation of the
incumbent), a sequence GA, and uniform random — each warm-started from the
black-box history, proposes raw candidates every iteration.  The
acquisition function then picks among the *compiled* candidates; the
evaluated sample is told back to every strategy (Alg. 1's structure, on a
categorical space)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.heuristics.des import DiscreteES
from repro.heuristics.ga import SequenceGA
from repro.heuristics.random_search import RandomSequenceSearch
from repro.utils.rng import SeedLike, as_generator, spawn

__all__ = ["CandidateGenerator", "base_strategy"]


def base_strategy(provenance: Optional[str]) -> Optional[str]:
    """Map a winner-provenance label back to its generator strategy.

    ``"novel-des"`` → ``"des"`` (the novelty channel decorates, it does not
    generate); labels that no generator produced — ``"init"``,
    ``"random-fallback"`` — map to ``None`` so provenance accounting never
    credits a strategy for budget it did not earn.
    """
    if not provenance:
        return None
    name = provenance[len("novel-"):] if provenance.startswith("novel-") else provenance
    return name if name in ("des", "ga", "random") else None


class CandidateGenerator:
    """Per-module ensemble of sequence strategies."""

    def __init__(
        self,
        length: int,
        alphabet: int,
        seed: SeedLike = None,
        strategies: Sequence[str] = ("des", "ga", "random"),
        des_lambda_share: float = 0.5,
        ga_pop: int = 20,
        gene_weights=None,
        track_provenance: bool = False,
    ) -> None:
        """``track_provenance=True`` keeps per-strategy proposal / win /
        incumbent-improvement counters (the live Fig 5.9 ablation); off by
        default so undiagnosed runs carry no accounting at all."""
        self.length = length
        self.alphabet = alphabet
        self.track_provenance = bool(track_provenance)
        rng = as_generator(seed)
        children = spawn(rng, len(strategies))
        self.strategies: Dict[str, object] = {}
        for name, r in zip(strategies, children):
            if name == "des":
                self.strategies[name] = DiscreteES(
                    length, alphabet, seed=r, gene_weights=gene_weights
                )
            elif name == "ga":
                self.strategies[name] = SequenceGA(
                    length, alphabet, pop_size=ga_pop, seed=r, gene_weights=gene_weights
                )
            elif name == "random":
                self.strategies[name] = RandomSequenceSearch(
                    length, alphabet, seed=r, gene_weights=gene_weights
                )
            else:
                raise KeyError(f"unknown sequence strategy {name!r}")
        self.provenance_counts: Dict[str, Dict[str, int]] = {
            name: {"proposals": 0, "wins": 0, "improvements": 0}
            for name in strategies
        }

    def ask(self, per_strategy: int) -> List[Tuple[str, np.ndarray]]:
        """Raw candidates with provenance, deduplicated by content."""
        out: List[Tuple[str, np.ndarray]] = []
        seen = set()
        for name, opt in self.strategies.items():
            for seq in opt.ask(per_strategy):
                key = tuple(int(i) for i in seq)
                if key in seen:
                    continue
                seen.add(key)
                out.append((name, np.asarray(seq, dtype=int)))
                if self.track_provenance:
                    self.provenance_counts[name]["proposals"] += 1
        return out

    # -- provenance accounting (Fig 5.9, live) -----------------------------------
    def credit_win(self, provenance: str) -> None:
        """Count a strategy's candidate winning the acquisition argmax."""
        name = base_strategy(provenance)
        if self.track_provenance and name in self.provenance_counts:
            self.provenance_counts[name]["wins"] += 1

    def credit_improvement(self, provenance: str) -> None:
        """Count a strategy's winner actually improving the incumbent."""
        name = base_strategy(provenance)
        if self.track_provenance and name in self.provenance_counts:
            self.provenance_counts[name]["improvements"] += 1

    def provenance_stats(self) -> Dict[str, Dict[str, int]]:
        """Copy of the per-strategy proposal/win/improvement counters."""
        return {name: dict(c) for name, c in self.provenance_counts.items()}

    def tell(self, seq: np.ndarray, y: float) -> None:
        """Feed an evaluated sequence back to every strategy."""
        for opt in self.strategies.values():
            opt.tell(np.asarray(seq, dtype=int)[None, :], np.asarray([y]))

    def seed_incumbent(self, seq: np.ndarray, y: float) -> None:
        """Anchor DES's parent (and everyone's best) at a known-good point —
        CITROEN starts from the -O3 pipeline's sequence."""
        self.tell(seq, y)
        des = self.strategies.get("des")
        if isinstance(des, DiscreteES):
            des.seed_parent(np.asarray(seq, dtype=int))
