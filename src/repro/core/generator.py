"""CITROEN's candidate pass-sequence generator (§5.3.5, Fig 5.4).

The discrete adaptation of AIBO's heuristic AF-maximiser initialisation:
an ensemble of sequence optimisers — DES (1+lambda mutation of the
incumbent), a sequence GA, and uniform random — each warm-started from the
black-box history, proposes raw candidates every iteration.  The
acquisition function then picks among the *compiled* candidates; the
evaluated sample is told back to every strategy (Alg. 1's structure, on a
categorical space)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.heuristics.des import DiscreteES
from repro.heuristics.ga import SequenceGA
from repro.heuristics.random_search import RandomSequenceSearch
from repro.utils.rng import SeedLike, as_generator, spawn

__all__ = ["CandidateGenerator"]


class CandidateGenerator:
    """Per-module ensemble of sequence strategies."""

    def __init__(
        self,
        length: int,
        alphabet: int,
        seed: SeedLike = None,
        strategies: Sequence[str] = ("des", "ga", "random"),
        des_lambda_share: float = 0.5,
        ga_pop: int = 20,
        gene_weights=None,
    ) -> None:
        self.length = length
        self.alphabet = alphabet
        rng = as_generator(seed)
        children = spawn(rng, len(strategies))
        self.strategies: Dict[str, object] = {}
        for name, r in zip(strategies, children):
            if name == "des":
                self.strategies[name] = DiscreteES(
                    length, alphabet, seed=r, gene_weights=gene_weights
                )
            elif name == "ga":
                self.strategies[name] = SequenceGA(
                    length, alphabet, pop_size=ga_pop, seed=r, gene_weights=gene_weights
                )
            elif name == "random":
                self.strategies[name] = RandomSequenceSearch(
                    length, alphabet, seed=r, gene_weights=gene_weights
                )
            else:
                raise KeyError(f"unknown sequence strategy {name!r}")

    def ask(self, per_strategy: int) -> List[Tuple[str, np.ndarray]]:
        """Raw candidates with provenance, deduplicated by content."""
        out: List[Tuple[str, np.ndarray]] = []
        seen = set()
        for name, opt in self.strategies.items():
            for seq in opt.ask(per_strategy):
                key = tuple(int(i) for i in seq)
                if key in seen:
                    continue
                seen.add(key)
                out.append((name, np.asarray(seq, dtype=int)))
        return out

    def tell(self, seq: np.ndarray, y: float) -> None:
        """Feed an evaluated sequence back to every strategy."""
        for opt in self.strategies.values():
            opt.tell(np.asarray(seq, dtype=int)[None, :], np.asarray([y]))

    def seed_incumbent(self, seq: np.ndarray, y: float) -> None:
        """Anchor DES's parent (and everyone's best) at a known-good point —
        CITROEN starts from the -O3 pipeline's sequence."""
        self.tell(seq, y)
        des = self.strategies.get("des")
        if isinstance(des, DiscreteES):
            des.seed_parent(np.asarray(seq, dtype=int))
