"""CITROEN's cost model (§5.3.3).

A Gaussian process over *concatenated per-module compilation statistics*
predicting program runtime.  Each observation is the full program
configuration — the statistics dictionary of every hot module — so the one
global model both ranks candidate sequences within a module and arbitrates
*between* modules (the adaptive budget allocation of §5.3/§1.3).

The surrogate is the tuner's per-iteration overhead (§5.4), so its hot
path is incremental:

* :meth:`add_observation` *extends* the fitted GP in O(n^2) via the
  rank-1 Cholesky machinery (:meth:`repro.bo.gp.GaussianProcess.extend`)
  whenever the statistic-key registry is unchanged;
* full O(n^3) refits happen only when new statistic keys appear, on a
  doubling schedule, or when the standardized residuals of incoming
  observations drift (the model has gone stale);
* refits **warm-start** L-BFGS-B from the previous hyperparameters —
  length-scales carry over per key (the registry is append-only), new
  dimensions start at the default;
* prediction and coverage run batched over whole candidate populations
  (:meth:`predict`, :meth:`coverage_many`).

The model also exposes:

* per-candidate **coverage** (what fraction of a candidate's active
  statistic dimensions lie in the observed range — the Table 5.2 issue);
* ARD **relevance** per statistic (1 / length-scale), which regenerates
  Table 5.5's "top impactful statistics".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bo.gp import GaussianProcess
from repro.features.stats_features import StatsVectorizer
from repro.utils.rng import SeedLike, as_generator

__all__ = ["CitroenCostModel"]

#: default initial length-scale of a fresh GP dimension (Matérn-5/2 ARD)
_DEFAULT_LOG_LS = float(np.log(0.5))


def _prefixed(module: str, stats: Dict[str, int]) -> Dict[str, int]:
    return {f"{module}::{k}": v for k, v in stats.items()}


class CitroenCostModel:
    """GP over concatenated per-module statistics features.

    Parameters
    ----------
    incremental:
        condition the fitted GP on new observations in O(n^2) instead of
        marking it stale (full refits still happen on the adaptive
        schedule).  ``False`` restores the pre-optimisation behaviour —
        every observation invalidates the fit — which ``repro bench``
        uses as its baseline.
    warm_start:
        start hyperparameter optimisation from the previous fit's
        hyperparameters instead of defaults.
    vectorized:
        batch featurization/coverage through
        :meth:`StatsVectorizer.transform_many` /
        :meth:`~StatsVectorizer.coverage_many`; ``False`` keeps the
        per-candidate scalar loops (baseline mode).
    refit_growth:
        full-refit schedule: refit once ``n >= refit_growth * n_at_last_
        refit`` (doubling by default).
    drift_window / drift_threshold:
        refit early when the mean squared standardized residual of the
        last ``drift_window`` incoming observations exceeds
        ``drift_threshold`` — the frozen hyperparameters/transform no
        longer describe the data.
    metrics:
        optional :class:`~repro.obs.metrics.MetricsRegistry`; refits and
        extends are counted as ``citroen.gp.refits`` /
        ``citroen.gp.extends`` so ``repro analyze`` can report the ratio.
    """

    def __init__(
        self,
        seed: SeedLike = None,
        power_transform: bool = True,
        incremental: bool = True,
        warm_start: bool = True,
        vectorized: bool = True,
        refit_growth: float = 2.0,
        drift_window: int = 8,
        drift_threshold: float = 4.0,
        metrics=None,
    ) -> None:
        self.vectorizer = StatsVectorizer()
        self.rng = as_generator(seed)
        self.power_transform = power_transform
        self.incremental = bool(incremental)
        self.warm_start = bool(warm_start)
        self.vectorized = bool(vectorized)
        self.refit_growth = float(refit_growth)
        self.drift_window = int(drift_window)
        self.drift_threshold = float(drift_threshold)
        self._obs_stats: List[Dict[str, int]] = []
        self._obs_y: List[float] = []
        self.gp: Optional[GaussianProcess] = None
        self._fitted = False
        self._fitted_keys: List[str] = []
        self._n_at_refit = 0
        self._drift: Deque[float] = deque(maxlen=max(1, self.drift_window))
        self.n_refits = 0
        self.n_extends = 0
        self._m_refits = metrics.counter("citroen.gp.refits") if metrics is not None else None
        self._m_extends = metrics.counter("citroen.gp.extends") if metrics is not None else None

    # -- data ------------------------------------------------------------------
    @staticmethod
    def merge_config_stats(per_module: Dict[str, Dict[str, int]]) -> Dict[str, int]:
        """Concatenate per-module stats into one namespaced dict."""
        merged: Dict[str, int] = {}
        for module, stats in per_module.items():
            merged.update(_prefixed(module, stats))
        return merged

    @staticmethod
    def prefix_stats(module: str, stats: Dict[str, int]) -> Dict[str, int]:
        """One module's stats in the merged (namespaced) key space."""
        return _prefixed(module, stats)

    def add_observation(self, per_module: Dict[str, Dict[str, int]], runtime: float) -> None:
        """Record one measured configuration (per-module stats + runtime).

        On the incremental path the fitted GP absorbs the observation in
        O(n^2) and stays ready; otherwise (new statistic keys, scheduled
        refit due, residual drift, incremental mode off) the fit is marked
        stale and the next :meth:`fit` rebuilds it.
        """
        merged = self.merge_config_stats(per_module)
        self._obs_stats.append(merged)
        self._obs_y.append(float(runtime))
        if self._try_extend(merged, float(runtime)):
            self.n_extends += 1
            if self._m_extends is not None:
                self._m_extends.inc()
        else:
            self._fitted = False

    def _try_extend(self, merged: Dict[str, int], runtime: float) -> bool:
        if not (self.incremental and self._fitted and self.gp is not None):
            return False
        if not np.isfinite(runtime):
            return False
        if self._refit_due():
            return False
        index = self.vectorizer._key_index
        dim = self.vectorizer.fitted_dim
        for key, value in merged.items():
            if value:
                idx = index.get(key)
                if idx is None or idx >= dim:
                    return False  # new statistic key: the GP needs a new dim
        x = self.vectorizer.transform(merged)
        # drift tracking: standardized residual of the incoming point under
        # the frozen hyperparameters/transform, *before* conditioning on it
        z = self.gp.transform_targets(np.asarray([runtime]))[0]
        mu, sigma = self.gp.predict(x[None, :])
        self._drift.append(float(((z - mu[0]) / max(sigma[0], 1e-12)) ** 2))
        self.gp.extend(x, runtime)
        return True

    def _refit_due(self) -> bool:
        if len(self._obs_y) >= self.refit_growth * max(1, self._n_at_refit):
            return True
        if (
            len(self._drift) >= self.drift_window
            and float(np.mean(self._drift)) > self.drift_threshold
        ):
            return True
        return False

    @property
    def n_observations(self) -> int:
        return len(self._obs_y)

    # -- fitting ------------------------------------------------------------------
    def fit(
        self, optimize_hypers: bool = True, max_iter: int = 30, force: bool = False
    ) -> None:
        """(Re)build the design matrix and refit the GP — if it is stale.

        A ready model whose refit schedule is not due is left untouched
        (the per-iteration call from the tuner loop is then free); pass
        ``force=True`` to rebuild unconditionally.
        """
        if len(self._obs_y) < 2:
            self._fitted = False
            return
        if self.ready and not force and not self._refit_due():
            return
        prev = self.gp
        X = self.vectorizer.fit(self._obs_stats)
        self.gp = GaussianProcess(
            X.shape[1], power_transform=self.power_transform, seed=self.rng
        )
        if self.warm_start and prev is not None:
            self._warm_start_from(prev)
        self.gp.fit(
            X,
            np.asarray(self._obs_y),
            optimize_hypers=optimize_hypers,
            max_iter=max_iter,
        )
        self._fitted = True
        self._fitted_keys = list(self.vectorizer.keys)
        self._n_at_refit = len(self._obs_y)
        self._drift.clear()
        self.n_refits += 1
        if self._m_refits is not None:
            self._m_refits.inc()

    def _warm_start_from(self, prev: GaussianProcess) -> None:
        """Seed the new GP's hyperparameters from the previous fit.

        The key registry is append-only, so dimension ``i`` means the same
        statistic before and after a refit: per-key length-scales carry
        over and only genuinely new dimensions start from the default.
        """
        log_ls = np.full(self.gp.dim, _DEFAULT_LOG_LS)
        keep = min(prev.dim, self.gp.dim)
        log_ls[:keep] = prev.kernel.log_ls[:keep]
        self.gp.kernel.log_ls = log_ls
        self.gp.kernel.log_var = prev.kernel.log_var
        self.gp.log_noise = prev.log_noise

    @property
    def ready(self) -> bool:
        return self._fitted and self.gp is not None

    # -- prediction ------------------------------------------------------------------
    def _design(self, merged_list: Sequence[Dict[str, int]]) -> np.ndarray:
        if self.vectorized:
            return self.vectorizer.transform_many(merged_list)
        return np.asarray([self.vectorizer.transform(s) for s in merged_list])

    def predict(
        self, per_module_list: Sequence[Dict[str, Dict[str, int]]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean/std (transformed space) for candidate configs."""
        return self.predict_merged(
            [self.merge_config_stats(pm) for pm in per_module_list]
        )

    def predict_merged(
        self, merged_list: Sequence[Dict[str, int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batch posterior over already-merged stats dicts (hot path)."""
        assert self.ready
        return self.gp.predict(self._design(merged_list))

    def coverage(self, per_module: Dict[str, Dict[str, int]]) -> float:
        """Feature-coverage score of a candidate config (Table 5.2)."""
        merged = self.merge_config_stats(per_module)
        if self.vectorizer._lo is None:
            return 1.0
        return self.vectorizer.coverage(merged)

    def coverage_many(self, merged_list: Sequence[Dict[str, int]]) -> np.ndarray:
        """Batch coverage over already-merged stats dicts (hot path)."""
        if self.vectorizer._lo is None:
            return np.ones(len(merged_list))
        if self.vectorized:
            return self.vectorizer.coverage_many(merged_list)
        return np.asarray([self.vectorizer.coverage(s) for s in merged_list])

    def signature(self, per_module: Dict[str, Dict[str, int]]) -> Tuple:
        """Hashable statistics identity used for deduplication."""
        return self.signature_merged(self.merge_config_stats(per_module))

    def signature_merged(self, merged: Dict[str, int]) -> Tuple:
        """Signature of an already-merged stats dict (hot path)."""
        return self.vectorizer.signature(merged)

    def transformed_best(self) -> float:
        """Best observed target in the GP's transformed space."""
        assert self.ready
        return self.gp.transformed_best()

    def transform_runtime(self, runtime: float) -> Optional[float]:
        """A raw runtime in the GP's transformed target space, or ``None``
        when no transform has been fitted yet (or the runtime is the
        infeasibility sentinel).  Unlike :meth:`predict` this stays usable
        right after :meth:`add_observation` marks the fit stale — the
        transforms themselves only change on :meth:`fit`."""
        if self.gp is None or self.gp._X is None or not np.isfinite(runtime):
            return None
        return float(self.gp.transform_targets(np.asarray([runtime]))[0])

    # -- interpretability (Table 5.5) ------------------------------------------------
    def relevance(self) -> List[Tuple[str, float]]:
        """Statistics ranked by ARD relevance (inverse length-scale),
        filtered to dimensions that actually vary in the data.

        Aligned explicitly to the dimensionality the GP was fitted at: the
        key registry may have grown since (``observe_keys`` between fits),
        and a silent ``zip`` truncation against the longer key list would
        misattribute relevance scores to the wrong statistics.
        """
        if not self.ready:
            return []
        ls = self.gp.kernel.lengthscales
        keys = self._fitted_keys if self._fitted_keys else list(self.vectorizer.keys)
        dim = min(len(keys), len(ls), self.vectorizer.fitted_dim)
        spans = self.vectorizer._hi[:dim] - self.vectorizer._lo[:dim]
        out = []
        for key, scale, span in zip(keys[:dim], ls[:dim], spans):
            if span > 1e-12:
                out.append((key, float(1.0 / scale)))
        out.sort(key=lambda kv: -kv[1])
        return out

    def top_statistics(self, k: int = 5) -> List[str]:
        """The ``k`` most relevant statistics (Table 5.5)."""
        return [key for key, _ in self.relevance()[:k]]
