"""CITROEN's cost model (§5.3.3).

A Gaussian process over *concatenated per-module compilation statistics*
predicting program runtime.  Each observation is the full program
configuration — the statistics dictionary of every hot module — so the one
global model both ranks candidate sequences within a module and arbitrates
*between* modules (the adaptive budget allocation of §5.3/§1.3).

The model also exposes:

* per-candidate **coverage** (what fraction of a candidate's active
  statistic dimensions lie in the observed range — the Table 5.2 issue);
* ARD **relevance** per statistic (1 / length-scale), which regenerates
  Table 5.5's "top impactful statistics".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bo.gp import GaussianProcess
from repro.features.stats_features import StatsVectorizer
from repro.utils.rng import SeedLike, as_generator

__all__ = ["CitroenCostModel"]


def _prefixed(module: str, stats: Dict[str, int]) -> Dict[str, int]:
    return {f"{module}::{k}": v for k, v in stats.items()}


class CitroenCostModel:
    """GP over concatenated per-module statistics features."""

    def __init__(self, seed: SeedLike = None, power_transform: bool = True) -> None:
        self.vectorizer = StatsVectorizer()
        self.rng = as_generator(seed)
        self.power_transform = power_transform
        self._obs_stats: List[Dict[str, int]] = []
        self._obs_y: List[float] = []
        self.gp: Optional[GaussianProcess] = None
        self._fitted = False

    # -- data ------------------------------------------------------------------
    @staticmethod
    def merge_config_stats(per_module: Dict[str, Dict[str, int]]) -> Dict[str, int]:
        """Concatenate per-module stats into one namespaced dict."""
        merged: Dict[str, int] = {}
        for module, stats in per_module.items():
            merged.update(_prefixed(module, stats))
        return merged

    def add_observation(self, per_module: Dict[str, Dict[str, int]], runtime: float) -> None:
        """Record one measured configuration (per-module stats + runtime)."""
        self._obs_stats.append(self.merge_config_stats(per_module))
        self._obs_y.append(float(runtime))
        self._fitted = False

    @property
    def n_observations(self) -> int:
        return len(self._obs_y)

    # -- fitting ------------------------------------------------------------------
    def fit(self, optimize_hypers: bool = True, max_iter: int = 30) -> None:
        """(Re)build the design matrix and refit the GP."""
        if len(self._obs_y) < 2:
            self._fitted = False
            return
        X = self.vectorizer.fit(self._obs_stats)
        self.gp = GaussianProcess(
            X.shape[1], power_transform=self.power_transform, seed=self.rng
        )
        self.gp.fit(
            X,
            np.asarray(self._obs_y),
            optimize_hypers=optimize_hypers,
            max_iter=max_iter,
        )
        self._fitted = True

    @property
    def ready(self) -> bool:
        return self._fitted and self.gp is not None

    # -- prediction ------------------------------------------------------------------
    def predict(
        self, per_module_list: Sequence[Dict[str, Dict[str, int]]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean/std (transformed space) for candidate configs."""
        assert self.ready
        merged = [self.merge_config_stats(pm) for pm in per_module_list]
        X = np.asarray([self.vectorizer.transform(s) for s in merged])
        return self.gp.predict(X)

    def coverage(self, per_module: Dict[str, Dict[str, int]]) -> float:
        """Feature-coverage score of a candidate config (Table 5.2)."""
        merged = self.merge_config_stats(per_module)
        if self.vectorizer._lo is None:
            return 1.0
        return self.vectorizer.coverage(merged)

    def signature(self, per_module: Dict[str, Dict[str, int]]) -> Tuple:
        """Hashable statistics identity used for deduplication."""
        return self.vectorizer.signature(self.merge_config_stats(per_module))

    def transformed_best(self) -> float:
        """Best observed target in the GP's transformed space."""
        assert self.ready
        return self.gp.transformed_best()

    def transform_runtime(self, runtime: float) -> Optional[float]:
        """A raw runtime in the GP's transformed target space, or ``None``
        when no transform has been fitted yet (or the runtime is the
        infeasibility sentinel).  Unlike :meth:`predict` this stays usable
        right after :meth:`add_observation` marks the fit stale — the
        transforms themselves only change on :meth:`fit`."""
        if self.gp is None or self.gp._X is None or not np.isfinite(runtime):
            return None
        return float(self.gp.transform_targets(np.asarray([runtime]))[0])

    # -- interpretability (Table 5.5) ------------------------------------------------
    def relevance(self) -> List[Tuple[str, float]]:
        """Statistics ranked by ARD relevance (inverse length-scale),
        filtered to dimensions that actually vary in the data."""
        if not self.ready:
            return []
        ls = self.gp.kernel.lengthscales
        spans = self.vectorizer._hi - self.vectorizer._lo
        out = []
        for key, scale, span in zip(self.vectorizer.keys, ls, spans):
            if span > 1e-12:
                out.append((key, float(1.0 / scale)))
        out.sort(key=lambda kv: -kv[1])
        return out

    def top_statistics(self, k: int = 5) -> List[str]:
        """The ``k`` most relevant statistics (Table 5.5)."""
        return [key for key, _ in self.relevance()[:k]]
