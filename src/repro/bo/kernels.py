"""Stationary covariance kernels with ARD length scales.

Each kernel supplies the three derivative families exact GP regression and
gradient-based AF maximisation need:

* ``K(X, Z)`` — the covariance matrix;
* ``grad_hyper`` — dK/d(log lengthscale_i), dK/d(log signal variance) for
  marginal-likelihood fitting;
* ``grad_x`` — dk(x, Z)/dx for posterior-gradient computation.

The NLL hot path uses the allocation-light pair ``eval_with_cache`` /
``grad_hyper_quadform``: one evaluation shares the scaled-distance matrix
between the covariance and its hyperparameter gradients, and the per-dim
gradient traces ``sum(W * dK/dtheta_i)`` are accumulated with matrix
products instead of materialising ``dim`` separate ``n x n`` matrices.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["Kernel", "RBF", "Matern52"]

_SQRT5 = np.sqrt(5.0)


class Kernel:
    """Base: ARD kernel parameterised by log length-scales + log variance."""

    def __init__(self, dim: int, lengthscale: float = 0.5, variance: float = 1.0) -> None:
        self.dim = dim
        self.log_ls = np.full(dim, np.log(lengthscale))
        self.log_var = float(np.log(variance))

    # -- hyperparameter vector plumbing -------------------------------------
    def get_params(self) -> np.ndarray:
        """Hyperparameter vector (log length-scales + log variance)."""
        return np.concatenate([self.log_ls, [self.log_var]])

    def set_params(self, theta: np.ndarray) -> None:
        """Load a hyperparameter vector produced by :meth:`get_params`."""
        self.log_ls = np.asarray(theta[: self.dim], dtype=float).copy()
        self.log_var = float(theta[self.dim])

    def n_params(self) -> int:
        """Number of kernel hyperparameters."""
        return self.dim + 1

    def param_bounds(
        self, ls_bounds: Tuple[float, float] = (5e-3, 20.0), var_bounds: Tuple[float, float] = (0.05, 20.0)
    ) -> List[Tuple[float, float]]:
        """Box bounds for the log-hyperparameters (paper §4.3.2)."""
        lb = [(np.log(ls_bounds[0]), np.log(ls_bounds[1]))] * self.dim
        lb.append((np.log(var_bounds[0]), np.log(var_bounds[1])))
        return lb

    @property
    def lengthscales(self) -> np.ndarray:
        return np.exp(self.log_ls)

    @property
    def variance(self) -> float:
        return float(np.exp(self.log_var))

    # -- geometry helpers -----------------------------------------------------
    def _scaled_sq_dists(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        ls = self.lengthscales
        Xs = X / ls
        Zs = Z / ls
        d2 = (
            (Xs**2).sum(1)[:, None]
            + (Zs**2).sum(1)[None, :]
            - 2.0 * Xs @ Zs.T
        )
        return np.maximum(d2, 0.0)

    def copy(self) -> "Kernel":
        """Independent clone (own hyperparameter arrays)."""
        clone = self.__class__(self.dim)
        clone.set_params(self.get_params())
        return clone

    # -- interface ---------------------------------------------------------------
    def __call__(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of ``K(X, X)`` (prior variance at each point)."""
        return np.full(len(X), self.variance)

    def grad_hyper(self, X: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(param_index, dK/dtheta_index)`` over all hyperparams."""
        raise NotImplementedError

    def grad_x(self, x: np.ndarray, Z: np.ndarray) -> np.ndarray:
        """``d k(x, Z) / dx`` with shape ``(len(Z), dim)``."""
        raise NotImplementedError

    # -- allocation-light NLL support ----------------------------------------
    def eval_with_cache(self, X: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """``K(X, X)`` plus the geometry reusable by the gradient pass.

        The default recomputes nothing clever; subclasses cache the scaled
        distance matrix so one NLL evaluation never computes it twice.
        """
        return self(X, X), {}

    def grad_hyper_quadform(
        self, X: np.ndarray, W: np.ndarray, cache: Optional[Dict[str, np.ndarray]] = None
    ) -> np.ndarray:
        """``[sum(W * dK/dtheta_i)] for all i`` without per-dim matrices.

        ``W`` must be symmetric (it is ``alpha alpha^T - K^-1`` in the NLL
        gradient).  The generic fallback materialises each ``dK`` like
        :meth:`grad_hyper`; subclasses override with the einsum form.
        """
        out = np.zeros(self.n_params())
        for idx, dK in self.grad_hyper(X):
            out[idx] = float((W * dK).sum())
        return out

    def _ls_quadform(self, X: np.ndarray, B: np.ndarray) -> np.ndarray:
        """``[sum_pq B_pq (X_pi - X_qi)^2 / ls_i^2] for all dims i``.

        For symmetric ``B`` this collapses to two matrix products —
        ``2 rowsum(B) . X_i^2 - 2 X_i . (B X_i)`` — i.e. O(n^2 d) total
        with no ``(n, n)`` temporaries per dimension.
        """
        rowsum = B.sum(axis=1)
        quad = rowsum @ (X**2) - np.einsum("pi,pi->i", X, B @ X)
        return 2.0 * quad / self.lengthscales**2


class RBF(Kernel):
    """Squared-exponential kernel (eq 2.3, anisotropic)."""

    def __call__(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        return self.variance * np.exp(-0.5 * self._scaled_sq_dists(X, Z))

    def grad_hyper(self, X: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        K = self(X, X)
        ls = self.lengthscales
        for i in range(self.dim):
            di = (X[:, i : i + 1] - X[:, i : i + 1].T) / ls[i]
            # d/d(log ls_i) of exp(-0.5 d_i^2/ls_i^2 ...) = K * d_i^2/ls_i^2
            yield i, K * (di**2)
        yield self.dim, K.copy()  # d/d(log var) = K

    def grad_x(self, x: np.ndarray, Z: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(x)
        k = self(x, Z)[0]  # (m,)
        ls2 = self.lengthscales**2
        diff = x[0][None, :] - Z  # (m, d)
        return -k[:, None] * diff / ls2[None, :]

    def eval_with_cache(self, X: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        d2 = self._scaled_sq_dists(X, X)
        return self.variance * np.exp(-0.5 * d2), {"d2": d2}

    def grad_hyper_quadform(
        self, X: np.ndarray, W: np.ndarray, cache: Optional[Dict[str, np.ndarray]] = None
    ) -> np.ndarray:
        d2 = cache["d2"] if cache else self._scaled_sq_dists(X, X)
        K = self.variance * np.exp(-0.5 * d2)  # caller may have mutated its copy
        out = np.empty(self.n_params())
        # dK/d(log ls_i) = K * di2 -> accumulate via the shared quadform
        out[: self.dim] = self._ls_quadform(X, W * K)
        out[self.dim] = float((W * K).sum())  # dK/d(log var) = K
        return out


class Matern52(Kernel):
    """Matérn-5/2 ARD kernel (eq 2.2 with nu = 5/2), the thesis default."""

    def _r(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        return np.sqrt(self._scaled_sq_dists(X, Z) + 1e-300)

    def __call__(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        return self._k_from_r(self._r(X, Z), self.variance)

    @staticmethod
    def _dk_dr_over_r(r: np.ndarray, var: float) -> np.ndarray:
        """``(dk/dr)/r`` — finite at r=0, avoiding the 0/0 in chain rules."""
        return -var * (5.0 / 3.0) * (1.0 + _SQRT5 * r) * np.exp(-_SQRT5 * r)

    def grad_hyper(self, X: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        r = self._r(X, X)
        var = self.variance
        dk_r = self._dk_dr_over_r(r, var)  # (n, n)
        ls = self.lengthscales
        for i in range(self.dim):
            di2 = ((X[:, i : i + 1] - X[:, i : i + 1].T) / ls[i]) ** 2
            # dr/d(log ls_i) = -d_i^2 / (ls_i^2 r) * ls_i ... collapsing:
            # dK/d(log ls_i) = (dk/dr) * (-di2 / r) = -dk_r * di2
            yield i, -dk_r * di2
        yield self.dim, self._k_from_r(r, var)

    def grad_x(self, x: np.ndarray, Z: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(x)
        r = self._r(x, Z)[0]  # (m,)
        dk_r = self._dk_dr_over_r(r, self.variance)  # (m,)
        ls2 = self.lengthscales**2
        diff = x[0][None, :] - Z
        # dk/dx = (dk/dr) * dr/dx ; dr/dx_j = diff_j / (ls_j^2 r)
        return dk_r[:, None] * diff / ls2[None, :]

    @staticmethod
    def _k_from_r(r: np.ndarray, var: float) -> np.ndarray:
        return var * (1.0 + _SQRT5 * r + (5.0 / 3.0) * r**2) * np.exp(-_SQRT5 * r)

    def eval_with_cache(self, X: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        r = self._r(X, X)
        return self._k_from_r(r, self.variance), {"r": r}

    def grad_hyper_quadform(
        self, X: np.ndarray, W: np.ndarray, cache: Optional[Dict[str, np.ndarray]] = None
    ) -> np.ndarray:
        r = cache["r"] if cache else self._r(X, X)
        var = self.variance
        dk_r = self._dk_dr_over_r(r, var)
        out = np.empty(self.n_params())
        # dK/d(log ls_i) = -dk_r * di2 -> accumulate via the shared quadform
        out[: self.dim] = self._ls_quadform(X, -(W * dk_r))
        out[self.dim] = float((W * self._k_from_r(r, var)).sum())
        return out
