"""HeSBO-style hashing-embedding Bayesian optimisation (baseline).

Each high dimension ``i`` is tied to a random low dimension ``h(i)`` with a
random sign ``s(i)``; BO runs in the low-dimensional box and points are
lifted via ``x_high[i] = s(i) * z[h(i)]`` (Nayebi et al.).  The inner BO is
our standard BOGrad.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bo.aibo import AIBOResult, BOGrad
from repro.utils.rng import SeedLike, as_generator

__all__ = ["HeSBO"]


class HeSBO:
    """Hashing-enhanced subspace BO over the unit box (minimisation)."""

    def __init__(
        self,
        dim: int,
        low_dim: int = 10,
        seed: SeedLike = None,
        n_init: int = 20,
        **bo_kwargs,
    ) -> None:
        self.dim = dim
        self.low_dim = min(low_dim, dim)
        self.rng = as_generator(seed)
        self.h = self.rng.integers(0, self.low_dim, size=dim)
        self.s = self.rng.choice([-1.0, 1.0], size=dim)
        self.n_init = n_init
        self.bo_kwargs = bo_kwargs

    def lift(self, z: np.ndarray) -> np.ndarray:
        """Map a low-dim point in [0,1]^d_low to the high-dim box."""
        centred = 2.0 * z - 1.0  # [-1, 1]
        xh = self.s * centred[self.h]
        return (xh + 1.0) / 2.0

    def minimize(self, fn: Callable[[np.ndarray], float], budget: int) -> AIBOResult:
        """Minimise ``fn`` via BO in the low-dimensional embedding."""
        inner = BOGrad(self.low_dim, seed=self.rng, n_init=self.n_init, **self.bo_kwargs)
        lifted: list = []

        def wrapped(z: np.ndarray) -> float:
            x = self.lift(z)
            lifted.append(x)
            return float(fn(x))

        res = inner.minimize(wrapped, budget)
        return AIBOResult(np.asarray(lifted), res.y, res.best_history, res.diagnostics)
