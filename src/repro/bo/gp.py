"""Exact Gaussian-process regression with marginal-likelihood fitting.

Implements the surrogate configuration the thesis specifies (§4.3.2):
Matérn-5/2 ARD kernel, constant (zero, after standardisation) mean,
Yeo-Johnson + standardisation output transform, hyperparameters fitted by
L-BFGS-B on the exact log marginal likelihood with analytic gradients, and
the parameter bounds length-scale in [5e-3, 20], noise in [1e-6, 1e-2].
"""

from __future__ import annotations

import copy
from typing import Optional, Tuple

import numpy as np
from scipy import linalg, optimize

from repro.bo.kernels import Kernel, Matern52
from repro.bo.transforms import Standardizer, YeoJohnson
from repro.utils.rng import SeedLike, as_generator

__all__ = ["GaussianProcess"]


class GaussianProcess:
    """Exact GP regression on inputs in the unit box.

    Parameters
    ----------
    kernel:
        Covariance function (default Matérn-5/2 ARD).
    noise:
        Initial observation noise variance; fitted within ``noise_bounds``.
    power_transform:
        Apply Yeo-Johnson to targets before standardisation.
    """

    def __init__(
        self,
        dim: int,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-3,
        noise_bounds: Tuple[float, float] = (1e-6, 1e-2),
        power_transform: bool = True,
        seed: SeedLike = None,
    ) -> None:
        self.dim = dim
        self.kernel = kernel if kernel is not None else Matern52(dim)
        self.log_noise = float(np.log(noise))
        self.noise_bounds = noise_bounds
        self.power_transform = power_transform
        self.rng = as_generator(seed)
        self._X: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None
        self._L: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._yj = YeoJohnson()
        self._std = Standardizer()

    # -- data plumbing ---------------------------------------------------------
    @property
    def noise(self) -> float:
        return float(np.exp(self.log_noise))

    @property
    def n(self) -> int:
        return 0 if self._X is None else len(self._X)

    def _transform_y(self, y: np.ndarray, refit: bool) -> np.ndarray:
        if self.power_transform:
            z = self._yj.fit_transform(y) if refit else self._yj.transform(y)
        else:
            z = np.asarray(y, dtype=float)
        return self._std.fit_transform(z) if refit else self._std.transform(z)

    def _factorise(self) -> None:
        K = self.kernel(self._X, self._X)
        K[np.diag_indices_from(K)] += self.noise + 1e-8
        self._L = linalg.cholesky(K, lower=True)
        self._alpha = linalg.cho_solve((self._L, True), self._z)
        # cached inverse makes posterior gradients O(n^2) instead of O(n^2 d)
        self._Kinv = linalg.cho_solve((self._L, True), np.eye(len(self._X)))

    # -- fitting -------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        optimize_hypers: bool = True,
        n_restarts: int = 1,
        max_iter: int = 60,
    ) -> "GaussianProcess":
        """Condition on data; optionally refit hyperparameters."""
        self._X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float)
        self._z = self._transform_y(y, refit=True)
        if optimize_hypers and len(y) >= 3:
            self._optimize_hypers(n_restarts=n_restarts, max_iter=max_iter)
        self._factorise()
        return self

    def condition(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Re-condition on new data without refitting hyperparameters."""
        self._X = np.atleast_2d(np.asarray(X, dtype=float))
        self._z = self._transform_y(np.asarray(y, dtype=float), refit=True)
        self._factorise()
        return self

    def _pack(self) -> np.ndarray:
        return np.concatenate([self.kernel.get_params(), [self.log_noise]])

    def _unpack(self, theta: np.ndarray) -> None:
        self.kernel.set_params(theta[:-1])
        self.log_noise = float(theta[-1])

    def _nll_and_grad(self, theta: np.ndarray) -> Tuple[float, np.ndarray]:
        self._unpack(theta)
        X, z = self._X, self._z
        n = len(z)
        # one kernel evaluation shares its scaled-distance geometry with the
        # gradient pass below — the L-BFGS hot loop never computes it twice
        K, cache = self.kernel.eval_with_cache(X)
        K[np.diag_indices_from(K)] += self.noise + 1e-8
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e10, np.zeros_like(theta)
        alpha = linalg.cho_solve((L, True), z)
        nll = (
            0.5 * float(z @ alpha)
            + float(np.log(np.diag(L)).sum())
            + 0.5 * n * np.log(2.0 * np.pi)
        )
        # dNLL/dtheta = -0.5 tr((aa^T - K^-1) dK/dtheta); the kernel
        # accumulates every per-dim trace via matrix products instead of
        # materialising dim separate (n, n) derivative matrices
        Kinv = linalg.cho_solve((L, True), np.eye(n))
        W = np.outer(alpha, alpha) - Kinv
        grad = np.empty_like(theta)
        grad[:-1] = -0.5 * self.kernel.grad_hyper_quadform(X, W, cache)
        # noise: dK/d(log noise) = noise * I
        grad[-1] = -0.5 * float(np.trace(W)) * self.noise
        return nll, grad

    def _optimize_hypers(self, n_restarts: int, max_iter: int) -> None:
        bounds = self.kernel.param_bounds() + [
            (np.log(self.noise_bounds[0]), np.log(self.noise_bounds[1]))
        ]
        starts = [self._pack()]
        for _ in range(max(0, n_restarts - 1)):
            s = np.array([self.rng.uniform(lo, hi) for lo, hi in bounds])
            starts.append(s)
        best_theta, best_val = None, np.inf
        for s in starts:
            res = optimize.minimize(
                self._nll_and_grad,
                np.clip(s, [b[0] for b in bounds], [b[1] for b in bounds]),
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": max_iter},
            )
            if res.fun < best_val:
                best_val, best_theta = res.fun, res.x
        if best_theta is not None:
            self._unpack(best_theta)

    # -- prediction ------------------------------------------------------------------
    def predict(self, X: np.ndarray, include_noise: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation in the *transformed* space."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self._X is None or self._L is None:
            return np.zeros(len(X)), np.ones(len(X))
        Ks = self.kernel(X, self._X)
        mean = Ks @ self._alpha
        var = self.kernel.diag(X) - ((Ks @ self._Kinv) * Ks).sum(1)
        if include_noise:
            var = var + self.noise
        return mean, np.sqrt(np.maximum(var, 1e-14))

    def predict_grad(self, x: np.ndarray) -> Tuple[float, float, np.ndarray, np.ndarray]:
        """Posterior mean, std and their gradients at a single point.

        Returns ``(mu, sigma, dmu_dx, dsigma_dx)``; used by the analytic
        gradient-based AF maximiser.  Costs O(n^2 + n d) thanks to the
        cached kernel inverse.
        """
        x = np.asarray(x, dtype=float)
        ks = self.kernel(x[None, :], self._X)[0]  # (n,)
        mu = float(ks @ self._alpha)
        w = self._Kinv @ ks  # (n,)
        var = float(self.kernel.diag(x[None, :])[0] - ks @ w)
        sigma = float(np.sqrt(max(var, 1e-14)))
        dks = self.kernel.grad_x(x, self._X)  # (n, d)
        dmu = dks.T @ self._alpha
        # dvar/dx = -2 (K^-1 k)^T dk   (stationary kernel: d k(x,x)/dx = 0)
        dvar = -2.0 * (dks.T @ w)
        dsigma = dvar / (2.0 * sigma)
        return mu, sigma, dmu, dsigma

    def _rank1_extension(
        self, x: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Extend the Cholesky factor and cached inverse by one row.

        Returns ``(L_new, Kinv_new)`` for the (n+1)-point factorisation in
        O(n^2), or ``None`` when the new point is so close to an existing
        one that the rank-1 update would be numerically unsound (the caller
        should fall back to a full refactorisation).
        """
        n = len(self._X)
        ks = self.kernel(x[None, :], self._X)[0]
        v = linalg.solve_triangular(self._L, ks, lower=True)
        kxx = float(self.kernel.diag(x[None, :])[0]) + self.noise + 1e-8
        s2 = kxx - float(v @ v)
        if s2 < 1e-10 * kxx:
            return None
        s = np.sqrt(s2)
        L_new = np.zeros((n + 1, n + 1))
        L_new[:n, :n] = self._L
        L_new[n, :n] = v
        L_new[n, n] = s
        # O(n^2) block-inverse update of the cached kernel inverse
        w = self._Kinv @ ks
        Kinv_new = np.empty((n + 1, n + 1))
        Kinv_new[:n, :n] = self._Kinv + np.outer(w, w) / s2
        Kinv_new[:n, n] = -w / s2
        Kinv_new[n, :n] = -w / s2
        Kinv_new[n, n] = 1.0 / s2
        return L_new, Kinv_new

    def extend(self, x: np.ndarray, y: float) -> bool:
        """Condition on one more *raw* observation in place, in O(n^2).

        Reuses the rank-1 Cholesky + block-inverse machinery of
        :meth:`fantasize`, so hyperparameters, the output transform and the
        noise level all stay frozen — exactly equivalent to a full
        re-conditioning at the same hyperparameters/transform (property
        tested), at a fraction of the cost.  Returns ``True`` when the
        rank-1 path was used; a near-duplicate input degrades gracefully to
        an O(n^3) refactorisation (still no hyperparameter refit) and
        returns ``False``.
        """
        if self._X is None or self._L is None:
            raise ValueError("extend() requires a conditioned GP; call fit first")
        x = np.asarray(x, dtype=float)
        z_value = float(self._transform_y(np.asarray([y], dtype=float), refit=False)[0])
        ext = self._rank1_extension(x)
        self._X = np.vstack([self._X, x[None, :]])
        self._z = np.concatenate([self._z, [z_value]])
        if ext is None:
            self._factorise()
            return False
        self._L, self._Kinv = ext
        self._alpha = linalg.cho_solve((self._L, True), self._z)
        return True

    def fantasize(self, x: np.ndarray, z_value: float) -> "GaussianProcess":
        """Cheap conditioned copy with one extra (transformed-space) point.

        Uses a rank-1 Cholesky extension — O(n^2) instead of a full refit —
        for the Kriging-believer batch construction.  The clone owns its
        kernel, transforms and RNG: a later hyperparameter refit (or
        sampling) on the parent can no longer mutate the fantasy.
        """
        x = np.asarray(x, dtype=float)
        ext = self._rank1_extension(x)

        clone = GaussianProcess.__new__(GaussianProcess)
        clone.__dict__.update(self.__dict__)
        clone.kernel = self.kernel.copy()
        clone._yj = copy.deepcopy(self._yj)
        clone._std = copy.deepcopy(self._std)
        clone.rng = np.random.default_rng()
        clone.rng.bit_generator.state = self.rng.bit_generator.state
        clone._X = np.vstack([self._X, x[None, :]])
        clone._z = np.concatenate([self._z, [z_value]])
        if ext is None:  # near-duplicate input: full refactorisation
            clone._factorise()
            return clone
        clone._L, clone._Kinv = ext
        clone._alpha = linalg.cho_solve((clone._L, True), clone._z)
        return clone

    # -- transforms back to the original objective scale --------------------------------
    def transform_targets(self, y: np.ndarray) -> np.ndarray:
        """Map raw objective values into the fitted transformed space — the
        space :meth:`predict` reports in — without refitting the transform
        (calibration diagnostics compare predictions against realizations
        under the transform that produced the prediction)."""
        return self._transform_y(np.asarray(y, dtype=float), refit=False)

    def untransform_mean(self, mean_z: np.ndarray) -> np.ndarray:
        """Map transformed-space means back to raw objective values."""
        y = self._std.inverse(mean_z)
        if self.power_transform:
            y = self._yj.inverse(y)
        return y

    def transformed_best(self) -> float:
        """Best (minimum) observed target in the transformed space."""
        return float(np.min(self._z))

    def posterior_samples(self, X: np.ndarray, n_samples: int, rng=None) -> np.ndarray:
        """Joint posterior draws at ``X`` (shape ``(n_samples, len(X))``)."""
        rng = as_generator(rng if rng is not None else self.rng)
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self.kernel(X, self._X)
        mean = Ks @ self._alpha
        V = linalg.solve_triangular(self._L, Ks.T, lower=True)
        cov = self.kernel(X, X) - V.T @ V
        # near-duplicate candidate rows make the posterior covariance
        # numerically rank-deficient; escalate the jitter before giving up
        Lp = None
        for jitter in (1e-10, 1e-8, 1e-6, 1e-4):
            try:
                Lp = linalg.cholesky(
                    cov + jitter * np.eye(len(X)), lower=True
                )
                break
            except linalg.LinAlgError:
                continue
        if Lp is None:
            raise linalg.LinAlgError(
                "posterior covariance not positive definite even at jitter 1e-4"
            )
        eps = rng.standard_normal((n_samples, len(X)))
        return mean[None, :] + eps @ Lp.T
