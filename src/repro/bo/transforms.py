"""Output transforms: Yeo-Johnson power transform and standardisation.

The thesis (§4.3.2) applies a Yeo-Johnson transform to objective values to
reduce skew before GP fitting — important for heavy-tailed objectives like
Rosenbrock and, in CITROEN's case, runtimes (a few terrible sequences are
orders of magnitude slower than the bulk).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize, stats

__all__ = ["YeoJohnson", "Standardizer"]


class YeoJohnson:
    """Maximum-likelihood Yeo-Johnson transform with an exact inverse."""

    def __init__(self) -> None:
        self.lmbda: Optional[float] = None

    def fit(self, y: np.ndarray) -> "YeoJohnson":
        """Estimate the transform parameter by maximum likelihood."""
        y = np.asarray(y, dtype=float)
        if len(np.unique(y)) < 2:
            self.lmbda = 1.0  # degenerate data: identity transform
            return self
        try:
            _, lmbda = stats.yeojohnson(y)
            self.lmbda = float(np.clip(lmbda, -3.0, 5.0))
        except Exception:
            self.lmbda = 1.0
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        """Standardise ``y`` with the fitted statistics."""
        assert self.lmbda is not None, "call fit first"
        return stats.yeojohnson(np.asarray(y, dtype=float), lmbda=self.lmbda)

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(y).transform(y)

    def inverse(self, z: np.ndarray) -> np.ndarray:
        """Exact inverse of the Yeo-Johnson map."""
        lm = self.lmbda
        assert lm is not None
        z = np.asarray(z, dtype=float)
        out = np.empty_like(z)
        pos = z >= 0
        if abs(lm) > 1e-10:
            out[pos] = np.power(np.maximum(z[pos] * lm + 1.0, 1e-12), 1.0 / lm) - 1.0
        else:
            out[pos] = np.expm1(z[pos])
        two_lm = 2.0 - lm
        if abs(two_lm) > 1e-10:
            out[~pos] = 1.0 - np.power(np.maximum(1.0 - z[~pos] * two_lm, 1e-12), 1.0 / two_lm)
        else:
            out[~pos] = -np.expm1(-z[~pos])
        return out


class Standardizer:
    """Zero-mean / unit-variance scaling with inverse."""

    def __init__(self) -> None:
        self.mean = 0.0
        self.std = 1.0

    def fit(self, y: np.ndarray) -> "Standardizer":
        """Estimate mean and standard deviation."""
        y = np.asarray(y, dtype=float)
        self.mean = float(np.mean(y))
        self.std = float(np.std(y))
        if self.std < 1e-12:
            self.std = 1.0
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        """Standardise ``y`` with the fitted statistics."""
        return (np.asarray(y, dtype=float) - self.mean) / self.std

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(y).transform(y)

    def inverse(self, z: np.ndarray) -> np.ndarray:
        """Undo the standardisation."""
        return np.asarray(z, dtype=float) * self.std + self.mean

    def inverse_std(self, s: np.ndarray) -> np.ndarray:
        """Map a posterior standard deviation back to the original scale."""
        return np.asarray(s, dtype=float) * self.std
