"""Acquisition-function maximisation.

``multi_start_maximize`` is the "multi-start gradient-based AF maximiser"
of §4.2/§4.3: from a set of initial points (however produced — that is
AIBO's whole point) it runs bounded L-BFGS-B ascents using the analytic AF
gradients and returns the best point found.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import optimize

from repro.bo.acquisition import AcquisitionFunction

__all__ = ["gradient_maximize", "multi_start_maximize"]


def gradient_maximize(
    af: AcquisitionFunction,
    x0: np.ndarray,
    max_iter: int = 30,
) -> Tuple[np.ndarray, float]:
    """One bounded gradient ascent of the AF from ``x0``."""

    def neg(x: np.ndarray):
        v, g = af.value_and_grad(x)
        return -v, -g

    res = optimize.minimize(
        neg,
        np.clip(np.asarray(x0, dtype=float), 0.0, 1.0),
        jac=True,
        method="L-BFGS-B",
        bounds=[(0.0, 1.0)] * len(x0),
        options={"maxiter": max_iter},
    )
    return np.clip(res.x, 0.0, 1.0), float(-res.fun)


def multi_start_maximize(
    af: AcquisitionFunction,
    starts: np.ndarray,
    max_iter: int = 30,
) -> Tuple[np.ndarray, float]:
    """Gradient ascent from every start; return the best (x, AF value)."""
    starts = np.atleast_2d(starts)
    best_x, best_v = None, -np.inf
    for x0 in starts:
        x, v = gradient_maximize(af, x0, max_iter=max_iter)
        if v > best_v:
            best_x, best_v = x, v
    return best_x, best_v
