"""Bayesian optimisation machinery built from scratch on NumPy/SciPy.

Contents mirror the stack the thesis builds on GPyTorch/BoTorch: exact GP
regression with ARD Matérn-5/2 / RBF kernels and Yeo-Johnson output
transforms, analytic and Monte-Carlo acquisition functions, a multi-start
gradient AF maximiser, the AIBO framework (Ch. 4), and simplified TuRBO /
HeSBO references for the high-dimensional BO comparisons.
"""

from repro.bo.kernels import Matern52, RBF, Kernel
from repro.bo.transforms import Standardizer, YeoJohnson
from repro.bo.gp import GaussianProcess
from repro.bo.acquisition import (
    AcquisitionFunction,
    ExpectedImprovement,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    make_acquisition,
    mc_qei,
    mc_qucb,
)
from repro.bo.maximizer import gradient_maximize, multi_start_maximize
from repro.bo.aibo import AIBO, BOGrad, AIBOResult
from repro.bo.turbo import TuRBO
from repro.bo.hesbo import HeSBO
from repro.bo.random_forest import RandomForestRegressor

__all__ = [
    "AIBO",
    "AIBOResult",
    "AcquisitionFunction",
    "BOGrad",
    "ExpectedImprovement",
    "GaussianProcess",
    "HeSBO",
    "Kernel",
    "Matern52",
    "ProbabilityOfImprovement",
    "RBF",
    "RandomForestRegressor",
    "Standardizer",
    "TuRBO",
    "UpperConfidenceBound",
    "YeoJohnson",
    "gradient_maximize",
    "make_acquisition",
    "mc_qei",
    "mc_qucb",
    "multi_start_maximize",
]
