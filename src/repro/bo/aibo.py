"""AIBO: heuristic Acquisition-function-maximiser Initialisation for BO.

Implements Algorithm 1 of the thesis.  Each BO iteration:

1. every initialisation strategy (CMA-ES, GA, random, …) is *asked* for
   ``k`` raw candidates from its own search distribution — built from the
   black-box history, **not** from the AF;
2. the top ``n_top`` candidates of each strategy by AF value seed a
   multi-start gradient AF maximiser;
3. the strategy whose maximised candidate has the highest AF value wins
   and its point is evaluated on the black box;
4. the evaluated sample is *told* to every strategy.

``BOGrad`` (standard BO with random initialisation, the main baseline) is
AIBO restricted to the random strategy with a larger random pool.

Diagnostics recorded per iteration — winning strategy, AF value /
posterior mean / posterior variance per strategy — regenerate Figs 4.8–4.10
(the over-exploration analysis) and Fig 4.15 (GA population diversity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bo.acquisition import AcquisitionFunction, make_acquisition
from repro.bo.gp import GaussianProcess
from repro.bo.maximizer import multi_start_maximize
from repro.heuristics.cmaes import CMAES
from repro.heuristics.ga import ContinuousGA
from repro.heuristics.random_search import RandomSearch
from repro.utils.rng import SeedLike, as_generator, spawn

__all__ = ["AIBO", "BOGrad", "AIBOResult"]


@dataclass
class AIBOResult:
    """Search trace of one AIBO run."""

    X: np.ndarray
    y: np.ndarray
    best_history: np.ndarray
    diagnostics: Dict[str, List] = field(default_factory=dict)

    @property
    def best_y(self) -> float:
        return float(self.best_history[-1])

    @property
    def best_x(self) -> np.ndarray:
        return self.X[int(np.argmin(self.y))]


class AIBO:
    """Heuristic-initialised high-dimensional Bayesian optimisation.

    Parameters mirror §4.3.2: ``k`` raw candidates per strategy, top
    ``n_top`` seeds for the gradient maximiser, UCB(1.96) by default,
    ``n_init`` uniform warm-up samples.
    """

    def __init__(
        self,
        dim: int,
        seed: SeedLike = None,
        strategies: Sequence[str] = ("cmaes", "ga", "random"),
        af: str = "ucb",
        beta: float = 1.96,
        n_init: int = 20,
        k: int = 100,
        n_top: int = 1,
        batch_size: int = 1,
        maximizer: str = "grad",
        ga_pop: int = 50,
        cmaes_sigma: float = 0.2,
        refit_every: int = 1,
        gp_power_transform: bool = True,
        gp_restarts: int = 1,
    ) -> None:
        self.dim = dim
        self.rng = as_generator(seed)
        self.strategy_names = list(strategies)
        self.af_name = af
        self.beta = beta
        self.n_init = n_init
        self.k = k
        self.n_top = n_top
        self.batch_size = batch_size
        self.maximizer = maximizer
        self.ga_pop = ga_pop
        self.cmaes_sigma = cmaes_sigma
        self.refit_every = refit_every
        self.gp_power_transform = gp_power_transform
        self.gp_restarts = gp_restarts
        child = spawn(self.rng, len(self.strategy_names) + 2)
        self.optimizers = {}
        for name, r in zip(self.strategy_names, child):
            self.optimizers[name] = self._make_strategy(name, r)
        self.gp = GaussianProcess(
            dim, power_transform=gp_power_transform, seed=child[-2]
        )
        self._maximizer_rng = child[-1]

    def _make_strategy(self, name: str, rng: np.random.Generator):
        if name == "cmaes":
            return CMAES(self.dim, sigma0=self.cmaes_sigma, seed=rng)
        if name == "ga":
            return ContinuousGA(self.dim, pop_size=self.ga_pop, seed=rng)
        if name == "random":
            return RandomSearch(self.dim, seed=rng)
        if name == "boltzmann":
            return _BoltzmannInit(self.dim, seed=rng)
        if name == "gaussian-spray":
            return _GaussianSpray(self.dim, seed=rng)
        if name == "cmaes-on-af":
            return _CMAESOnAF(self.dim, seed=rng)
        raise KeyError(f"unknown AIBO strategy {name!r}")

    # -- main loop --------------------------------------------------------------
    def minimize(
        self,
        fn: Callable[[np.ndarray], float],
        budget: int,
        callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
    ) -> AIBOResult:
        """Minimise ``fn`` over the unit box using ``budget`` evaluations."""
        X: List[np.ndarray] = []
        y: List[float] = []
        diagnostics: Dict[str, List] = {
            "winner": [],
            "af_values": [],
            "posterior_mean": [],
            "posterior_var": [],
            "ga_diversity": [],
        }

        n_init = min(self.n_init, budget)
        X0 = self.rng.random((n_init, self.dim))
        for x in X0:
            yv = float(fn(x))
            X.append(x)
            y.append(yv)
        for opt in self.optimizers.values():
            opt.tell(np.asarray(X), np.asarray(y))
        if "cmaes" in self.optimizers:
            self.optimizers["cmaes"].seed_mean(X[int(np.argmin(y))])

        it = 0
        while len(y) < budget:
            q = min(self.batch_size, budget - len(y))
            refit = it % self.refit_every == 0
            self.gp.fit(
                np.asarray(X),
                np.asarray(y),
                optimize_hypers=refit,
                n_restarts=self.gp_restarts,
            )
            batch_X, info = self._select_batch(q)
            batch_y = []
            for x in batch_X:
                yv = float(fn(x))
                batch_y.append(yv)
                X.append(np.asarray(x, dtype=float))
                y.append(yv)
                if callback is not None:
                    callback(len(y), x, yv)
            for opt in self.optimizers.values():
                opt.tell(np.asarray(batch_X), np.asarray(batch_y))
            diagnostics["winner"].append(info["winner"])
            diagnostics["af_values"].append(info["af_values"])
            diagnostics["posterior_mean"].append(info["posterior_mean"])
            diagnostics["posterior_var"].append(info["posterior_var"])
            ga = self.optimizers.get("ga")
            diagnostics["ga_diversity"].append(
                ga.population_diversity() if ga is not None else 0.0
            )
            it += 1

        y_arr = np.asarray(y)
        return AIBOResult(
            np.asarray(X), y_arr, np.minimum.accumulate(y_arr), diagnostics
        )

    # -- candidate selection ------------------------------------------------------
    def _strategy_candidate(self, name: str, af: AcquisitionFunction):
        opt = self.optimizers[name]
        if isinstance(opt, _CMAESOnAF):
            raw = opt.ask_af(self.k, af)
        elif isinstance(opt, _BoltzmannInit):
            opt.set_af(af)
            raw = opt.ask(self.k)
        else:
            raw = opt.ask(self.k)
        vals = af(raw)
        top_idx = np.argsort(-vals)[: self.n_top]
        starts = raw[top_idx]
        if self.maximizer == "grad":
            x, v = multi_start_maximize(af, starts)
        else:  # 'none': pick the best raw candidate (AIBO-none variant)
            x, v = starts[0], float(vals[top_idx[0]])
        return x, v

    def _select_one(self, af: AcquisitionFunction):
        info = {"af_values": {}, "posterior_mean": {}, "posterior_var": {}}
        best_name, best_x, best_v = None, None, -np.inf
        for name in self.strategy_names:
            x, v = self._strategy_candidate(name, af)
            mu, sigma = self.gp.predict(x[None, :])
            info["af_values"][name] = float(v)
            info["posterior_mean"][name] = float(mu[0])
            info["posterior_var"][name] = float(sigma[0] ** 2)
            if v > best_v:
                best_name, best_x, best_v = name, x, v
        info["winner"] = best_name
        return best_x, info

    def _select_batch(self, q: int) -> Tuple[np.ndarray, Dict]:
        af = make_acquisition(self.af_name, self.gp, beta=self.beta)
        x0, info = self._select_one(af)
        batch = [x0]
        if q > 1:
            # greedy Kriging-believer fantasies: condition the GP on its own
            # mean prediction at each chosen point (rank-1 update) and
            # re-select — the greedy sequential MC-batch scheme of §4.3.2
            saved_gp = self.gp
            gp_f = self.gp
            try:
                for _ in range(q - 1):
                    mu, _ = gp_f.predict(batch[-1][None, :])
                    gp_f = gp_f.fantasize(batch[-1], float(mu[0]))
                    self.gp = gp_f
                    af_f = make_acquisition(self.af_name, gp_f, beta=self.beta)
                    xq, _info_q = self._select_one(af_f)
                    batch.append(xq)
            finally:
                self.gp = saved_gp
        return np.asarray(batch), info


class BOGrad(AIBO):
    """Standard BO with random AF-maximiser initialisation (the baseline).

    Uses a larger random pool (k=2000, n_top=10 in §4.5.1) to give random
    initialisation every chance.
    """

    def __init__(self, dim: int, seed: SeedLike = None, k: int = 2000, n_top: int = 10, **kw) -> None:
        kw.setdefault("strategies", ("random",))
        super().__init__(dim, seed=seed, k=k, n_top=n_top, **kw)


# -- alternative initialisation strategies (Fig 4.13) ---------------------------


class _BoltzmannInit(RandomSearch):
    """BoTorch-style: sample starts from random points via Boltzmann weights.

    The AF-weighted sampling happens in ``AIBO._strategy_candidate`` via the
    top-n rule; to emulate Boltzmann sampling we over-ask and softmax-sample
    inside ``ask`` using the most recent AF — injected by AIBO through
    ``set_af``.  Without an AF it degenerates to uniform sampling.
    """

    def __init__(self, dim: int, seed: SeedLike = None, temperature: float = 1.0) -> None:
        super().__init__(dim, seed)
        self.temperature = temperature
        self._af: Optional[AcquisitionFunction] = None

    def set_af(self, af: AcquisitionFunction) -> None:
        self._af = af

    def ask(self, n: int) -> np.ndarray:
        pool = self.rng.random((max(8 * n, 64), self.dim))
        if self._af is None:
            return pool[:n]
        vals = self._af(pool)
        z = (vals - vals.max()) / max(self.temperature, 1e-9)
        p = np.exp(z)
        p /= p.sum()
        idx = self.rng.choice(len(pool), size=n, replace=False, p=p)
        return pool[idx]


class _GaussianSpray(RandomSearch):
    """Spearmint-style: Gaussian spray around the incumbent best."""

    def __init__(self, dim: int, seed: SeedLike = None, scale: float = 0.05) -> None:
        super().__init__(dim, seed)
        self.scale = scale

    def ask(self, n: int) -> np.ndarray:
        if self.best_x is None:
            return self.rng.random((n, self.dim))
        prop = self.best_x[None, :] + self.scale * self.rng.standard_normal((n, self.dim))
        return np.clip(prop, 0.0, 1.0)


class _CMAESOnAF(RandomSearch):
    """Directly optimise the AF with CMA-ES to produce initial points
    (BO-cmaes_grad in Fig 4.13) — no black-box history is used."""

    def __init__(self, dim: int, seed: SeedLike = None, gens: int = 10, lam: int = 16) -> None:
        super().__init__(dim, seed)
        self.gens = gens
        self.lam = lam

    def ask_af(self, n: int, af: AcquisitionFunction) -> np.ndarray:
        es = CMAES(self.dim, sigma0=0.3, lam=self.lam, seed=self.rng)
        for _ in range(self.gens):
            cand = es.ask(self.lam)
            vals = -af(cand)  # CMA-ES minimises
            es.tell(cand, vals)
        return es.ask(n)
