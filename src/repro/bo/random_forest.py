"""Random-forest regression from scratch (surrogate for the BOCA baseline).

BOCA (Chen et al.) replaces the GP with a random forest whose per-tree
spread provides the uncertainty estimate; this module supplies that:
bagged CART regression trees with feature subsampling, ``predict``
returning mean and across-tree standard deviation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator

__all__ = ["RandomForestRegressor"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _Tree:
    def __init__(
        self,
        max_depth: int,
        min_samples_leaf: int,
        max_features: Optional[int],
        rng: np.random.Generator,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.root: Optional[_Node] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Fit bagged trees on ``(X, y)``."""
        self.root = self._build(X, y, depth=0)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf or np.ptp(y) < 1e-12:
            return node
        n, d = X.shape
        feats = (
            self.rng.choice(d, size=min(self.max_features or d, d), replace=False)
            if self.max_features
            else np.arange(d)
        )
        best = None  # (score, feat, thr, mask)
        base_var = y.var() * n
        for f in feats:
            xs = X[:, f]
            order = np.argsort(xs, kind="stable")
            xs_sorted = xs[order]
            ys = y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            total_sum, total_sq = csum[-1], csq[-1]
            for split in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if xs_sorted[split - 1] == xs_sorted[min(split, n - 1)]:
                    continue
                ls, lq = csum[split - 1], csq[split - 1]
                rs, rq = total_sum - ls, total_sq - lq
                sse = (lq - ls * ls / split) + (rq - rs * rs / (n - split))
                if best is None or sse < best[0]:
                    thr = 0.5 * (xs_sorted[split - 1] + xs_sorted[split])
                    best = (sse, f, thr)
        if best is None or best[0] >= base_var - 1e-12:
            return node
        _, f, thr = best
        mask = X[:, f] <= thr
        if mask.all() or not mask.any():
            return node
        node.feature = int(f)
        node.threshold = float(thr)
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(len(X))
        for i, x in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if x[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class RandomForestRegressor:
    """Bagged regression trees with mean/std prediction."""

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 10,
        min_samples_leaf: int = 2,
        max_features: Optional[str] = "third",
        seed: SeedLike = None,
    ) -> None:
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = as_generator(seed)
        self._trees: List[_Tree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit bagged trees on ``(X, y)``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float)
        n, d = X.shape
        if self.max_features == "third":
            mf = max(1, d // 3)
        elif self.max_features == "sqrt":
            mf = max(1, int(np.sqrt(d)))
        else:
            mf = None
        self._trees = []
        for _ in range(self.n_trees):
            idx = self.rng.integers(0, n, size=n)  # bootstrap
            tree = _Tree(self.max_depth, self.min_samples_leaf, mf, self.rng)
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Mean prediction and across-tree standard deviation."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        preds = np.stack([t.predict(X) for t in self._trees])
        return preds.mean(0), preds.std(0)
