"""TuRBO-1-style trust-region local Bayesian optimisation (baseline).

Simplified from Eriksson et al.: one trust region centred on the incumbent
best, side length doubled after ``succ_tol`` consecutive improvements and
halved after ``fail_tol`` consecutive failures; restarts from scratch when
the region collapses.  Candidates are scored with a UCB over the local GP
(standing in for the original's Thompson sampling, which needs scalable
joint draws).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.bo.aibo import AIBOResult
from repro.bo.gp import GaussianProcess
from repro.utils.rng import SeedLike, as_generator

__all__ = ["TuRBO"]


class TuRBO:
    """Single-trust-region local BO over the unit box (minimisation)."""

    def __init__(
        self,
        dim: int,
        seed: SeedLike = None,
        n_init: int = 20,
        length_init: float = 0.8,
        length_min: float = 0.5**7,
        length_max: float = 1.6,
        succ_tol: int = 3,
        fail_tol: Optional[int] = None,
        n_candidates: int = 512,
        beta: float = 1.96,
    ) -> None:
        self.dim = dim
        self.rng = as_generator(seed)
        self.n_init = n_init
        self.length_init = length_init
        self.length_min = length_min
        self.length_max = length_max
        self.succ_tol = succ_tol
        self.fail_tol = fail_tol if fail_tol is not None else max(4, dim // 10)
        self.n_candidates = n_candidates
        self.beta = beta

    def minimize(self, fn: Callable[[np.ndarray], float], budget: int) -> AIBOResult:
        """Minimise ``fn`` over the unit box within ``budget`` evaluations."""
        X: List[np.ndarray] = []
        y: List[float] = []

        def restart_state():
            return {
                "length": self.length_init,
                "succ": 0,
                "fail": 0,
                "X": [],
                "y": [],
            }

        state = restart_state()
        n_init = min(self.n_init, budget)
        for x in self.rng.random((n_init, self.dim)):
            v = float(fn(x))
            X.append(x)
            y.append(v)
            state["X"].append(x)
            state["y"].append(v)

        gp = GaussianProcess(self.dim, seed=self.rng)
        while len(y) < budget:
            lx = np.asarray(state["X"])
            ly = np.asarray(state["y"])
            gp.fit(lx, ly, optimize_hypers=True)
            centre = lx[int(np.argmin(ly))]
            # anisotropic box from ARD length-scales (TuRBO's weighting)
            ls = gp.kernel.lengthscales
            w = ls / np.prod(ls) ** (1.0 / self.dim)
            half = 0.5 * state["length"] * w
            lo = np.clip(centre - half, 0.0, 1.0)
            hi = np.clip(centre + half, 0.0, 1.0)
            cand = lo + (hi - lo) * self.rng.random((self.n_candidates, self.dim))
            mu, sigma = gp.predict(cand)
            score = -mu + np.sqrt(self.beta) * sigma
            x_new = cand[int(np.argmax(score))]
            v = float(fn(x_new))
            X.append(x_new)
            y.append(v)
            improved = v < ly.min() - 1e-3 * abs(ly.min())
            state["X"].append(x_new)
            state["y"].append(v)
            if improved:
                state["succ"] += 1
                state["fail"] = 0
            else:
                state["succ"] = 0
                state["fail"] += 1
            if state["succ"] >= self.succ_tol:
                state["length"] = min(self.length_max, 2.0 * state["length"])
                state["succ"] = 0
            elif state["fail"] >= self.fail_tol:
                state["length"] /= 2.0
                state["fail"] = 0
            if state["length"] < self.length_min and len(y) < budget:
                state = restart_state()
                n0 = min(self.n_init, budget - len(y))
                for x in self.rng.random((n0, self.dim)):
                    v = float(fn(x))
                    X.append(x)
                    y.append(v)
                    state["X"].append(x)
                    state["y"].append(v)
                if not state["X"]:
                    break

        y_arr = np.asarray(y)
        return AIBOResult(np.asarray(X), y_arr, np.minimum.accumulate(y_arr), {})
