"""Acquisition functions (minimisation convention).

Analytic UCB / EI / PI with gradients (for the multi-start gradient
maximiser) and Monte-Carlo batch estimators (qEI / qUCB via the
reparameterisation trick, §2.1.2) used for batch selection and testing.
All operate in the GP's transformed target space; since the transforms are
monotone, the argmin is preserved.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import stats

from repro.bo.gp import GaussianProcess
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "AcquisitionFunction",
    "UpperConfidenceBound",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "make_acquisition",
    "mc_qei",
    "mc_qucb",
]

_SQRT2PI = np.sqrt(2.0 * np.pi)


def _phi(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z * z) / _SQRT2PI


def _Phi(z: np.ndarray) -> np.ndarray:
    return stats.norm.cdf(z)


class AcquisitionFunction:
    """Base AF: higher is better; built over a GP minimising the target."""

    def __init__(self, gp: GaussianProcess) -> None:
        self.gp = gp

    def __call__(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def value_and_grad(self, x: np.ndarray) -> Tuple[float, np.ndarray]:
        """AF value and gradient at a single point ``x``."""
        raise NotImplementedError


class UpperConfidenceBound(AcquisitionFunction):
    """LCB for minimisation, presented as eq 4.1: ``-mu + sqrt(beta) sigma``."""

    def __init__(self, gp: GaussianProcess, beta: float = 1.96) -> None:
        super().__init__(gp)
        self.beta = beta

    def __call__(self, X: np.ndarray) -> np.ndarray:
        mu, sigma = self.gp.predict(X)
        return -mu + np.sqrt(self.beta) * sigma

    def value_and_grad(self, x: np.ndarray) -> Tuple[float, np.ndarray]:
        """AF value and gradient at a single point ``x``."""
        mu, sigma, dmu, dsigma = self.gp.predict_grad(x)
        sb = np.sqrt(self.beta)
        return -mu + sb * sigma, -dmu + sb * dsigma


class ExpectedImprovement(AcquisitionFunction):
    """EI over the incumbent best (eq 2.5, minimisation)."""

    def __init__(self, gp: GaussianProcess, xi: float = 0.0) -> None:
        super().__init__(gp)
        self.xi = xi

    def _z(self, mu, sigma):
        best = self.gp.transformed_best()
        return (best - self.xi - mu) / np.maximum(sigma, 1e-12)

    def __call__(self, X: np.ndarray) -> np.ndarray:
        mu, sigma = self.gp.predict(X)
        z = self._z(mu, sigma)
        return sigma * (z * _Phi(z) + _phi(z))

    def value_and_grad(self, x: np.ndarray) -> Tuple[float, np.ndarray]:
        """AF value and gradient at a single point ``x``."""
        mu, sigma, dmu, dsigma = self.gp.predict_grad(x)
        best = self.gp.transformed_best()
        s = max(sigma, 1e-12)
        z = (best - self.xi - mu) / s
        Phi_z = float(_Phi(np.asarray(z)))
        phi_z = float(_phi(np.asarray(z)))
        val = s * (z * Phi_z + phi_z)
        # dEI/dx = -Phi(z) dmu/dx + phi(z) dsigma/dx
        grad = -Phi_z * dmu + phi_z * dsigma
        return val, grad


class ProbabilityOfImprovement(AcquisitionFunction):
    """PI over the incumbent best (eq 2.6, minimisation)."""

    def __init__(self, gp: GaussianProcess, xi: float = 0.0) -> None:
        super().__init__(gp)
        self.xi = xi

    def __call__(self, X: np.ndarray) -> np.ndarray:
        mu, sigma = self.gp.predict(X)
        best = self.gp.transformed_best()
        z = (best - self.xi - mu) / np.maximum(sigma, 1e-12)
        return _Phi(z)

    def value_and_grad(self, x: np.ndarray) -> Tuple[float, np.ndarray]:
        """AF value and gradient at a single point ``x``."""
        mu, sigma, dmu, dsigma = self.gp.predict_grad(x)
        best = self.gp.transformed_best()
        s = max(sigma, 1e-12)
        z = (best - self.xi - mu) / s
        phi_z = float(_phi(np.asarray(z)))
        grad = phi_z * (-dmu / s - z * dsigma / s)
        return float(_Phi(np.asarray(z))), grad


def make_acquisition(name: str, gp: GaussianProcess, beta: float = 1.96) -> AcquisitionFunction:
    """Factory: ``"ucb"`` (beta param), ``"ei"``, ``"pi"``."""
    if name == "ucb":
        return UpperConfidenceBound(gp, beta=beta)
    if name == "ei":
        return ExpectedImprovement(gp)
    if name == "pi":
        return ProbabilityOfImprovement(gp)
    raise KeyError(f"unknown acquisition function {name!r}")


def mc_qei(
    gp: GaussianProcess, X: np.ndarray, n_samples: int = 256, rng: SeedLike = None
) -> float:
    """Monte-Carlo batch EI (qEI) via joint posterior samples (§2.1.2)."""
    rng = as_generator(rng)
    draws = gp.posterior_samples(X, n_samples, rng)  # (s, q)
    best = gp.transformed_best()
    imp = np.maximum(best - draws, 0.0).max(axis=1)
    return float(imp.mean())


def mc_qucb(
    gp: GaussianProcess,
    X: np.ndarray,
    beta: float = 1.96,
    n_samples: int = 256,
    rng: SeedLike = None,
) -> float:
    """Monte-Carlo batch UCB following Wilson et al.'s reparameterisation."""
    rng = as_generator(rng)
    X = np.atleast_2d(X)
    mu, _ = gp.predict(X)
    draws = gp.posterior_samples(X, n_samples, rng)
    # |deviation| scaled by sqrt(beta pi / 2) reproduces analytic UCB in
    # expectation for q = 1
    dev = np.sqrt(beta * np.pi / 2.0) * np.abs(draws - mu[None, :])
    vals = (-mu[None, :] + dev).max(axis=1)
    return float(vals.mean())
