"""CITROEN reproduction: compilation-statistics-guided Bayesian
optimisation for compiler phase ordering.

Reproduces Zhao, Xia & Wang, "Leveraging Compilation Statistics for
Compiler Phase Ordering" (IPDPS 2025), including its AIBO substrate
(Zhao et al., TMLR 2024) and the complete compiler/machine stack the
evaluation needs.

Quickstart
----------
>>> from repro import AutotuningTask, Citroen, cbench_program
>>> task = AutotuningTask(cbench_program("telecom_gsm"), platform="arm-a57", seed=0)
>>> result = Citroen(task, seed=1).tune(budget=60)
>>> result.speedup_over_o3() > 1.0
True
"""

from repro.core import (
    AutotuningTask,
    Citroen,
    CitroenCostModel,
    CompileEngine,
    CompileOutcome,
    FaultInjector,
    TuningResult,
    differential_test,
)
from repro.baselines import BOCATuner, EnsembleTuner, GATuner, RandomSearchTuner
from repro.bo import AIBO, BOGrad, GaussianProcess, HeSBO, TuRBO
from repro.compiler import available_passes, pipeline, run_opt
from repro.machine import PLATFORMS, Profiler, get_platform, run_program
from repro.obs import MetricsRegistry, RunRecorder, Tracer
from repro.workloads import Program, cbench_names, cbench_program, random_program, spec_names, spec_program

__version__ = "1.0.0"

__all__ = [
    "AIBO",
    "AutotuningTask",
    "BOCATuner",
    "BOGrad",
    "Citroen",
    "CitroenCostModel",
    "CompileEngine",
    "CompileOutcome",
    "EnsembleTuner",
    "FaultInjector",
    "GATuner",
    "GaussianProcess",
    "HeSBO",
    "MetricsRegistry",
    "PLATFORMS",
    "Profiler",
    "Program",
    "RandomSearchTuner",
    "RunRecorder",
    "Tracer",
    "TuRBO",
    "TuningResult",
    "available_passes",
    "cbench_names",
    "cbench_program",
    "differential_test",
    "get_platform",
    "pipeline",
    "random_program",
    "run_opt",
    "run_program",
    "spec_names",
    "spec_program",
]
