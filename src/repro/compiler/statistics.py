"""Per-pass compilation statistics, the paper's central signal.

Mirrors LLVM's ``opt -stats -stats-json`` output: each pass increments named
counters while it transforms the IR (``mem2reg.NumPromoted``,
``slp-vectorizer.NumVectorInstructions``, …).  CITROEN vectorises these
counters into the feature space its cost model is trained on (§5.3.3).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Tuple

__all__ = ["StatsCollector"]


class StatsCollector:
    """Accumulates ``(pass, counter) -> int`` statistics during compilation."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, str], int] = {}

    def bump(self, pass_name: str, counter: str, amount: int = 1) -> None:
        """Increment ``<pass_name>.<counter>`` by ``amount`` (no-op if 0)."""
        if amount == 0:
            return
        key = (pass_name, counter)
        self._counters[key] = self._counters.get(key, 0) + amount

    def get(self, pass_name: str, counter: str) -> int:
        """Current value of ``<pass_name>.<counter>`` (0 if unset)."""
        return self._counters.get((pass_name, counter), 0)

    def items(self) -> Iterator[Tuple[Tuple[str, str], int]]:
        """Iterate over ``((pass, counter), value)`` pairs."""
        return iter(self._counters.items())

    def as_dict(self) -> Dict[str, int]:
        """Flat ``{"pass.Counter": value}`` dict, like ``-stats-json``."""
        return {f"{p}.{c}": v for (p, c), v in sorted(self._counters.items())}

    def to_json(self) -> str:
        """JSON rendering of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def merge(self, other: "StatsCollector") -> None:
        """Add every counter of ``other`` into this collector."""
        for (p, c), v in other.items():
            self.bump(p, c, v)

    def scoped(self, pass_name: str) -> "ScopedStats":
        """A view bound to one pass name."""
        return ScopedStats(self, pass_name)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsCollector({self.as_dict()})"


class ScopedStats:
    """A view of the collector bound to one pass name."""

    __slots__ = ("_parent", "_pass")

    def __init__(self, parent: StatsCollector, pass_name: str) -> None:
        self._parent = parent
        self._pass = pass_name

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment ``counter`` for the bound pass."""
        self._parent.bump(self._pass, counter, amount)
