"""Per-pass compilation statistics, the paper's central signal.

Mirrors LLVM's ``opt -stats -stats-json`` output: each pass increments named
counters while it transforms the IR (``mem2reg.NumPromoted``,
``slp-vectorizer.NumVectorInstructions``, …).  CITROEN vectorises these
counters into the feature space its cost model is trained on (§5.3.3).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Tuple

__all__ = ["StatsCollector", "flat_stat_key", "split_stat_key"]


def flat_stat_key(pass_name: str, counter: str) -> str:
    """The flat ``"pass.Counter"`` key of one statistic.

    Dots inside the *pass name* are backslash-escaped (as are literal
    backslashes), so a parameterized pass like ``"slp-vectorizer.w4"``
    cannot collide with ``("slp-vectorizer", "w4.Counter")`` once the
    tuple key is flattened for the vectorizer or the warehouse.  Counter
    names keep their dots verbatim: :func:`split_stat_key` splits at the
    first *unescaped* dot.
    """
    escaped = pass_name.replace("\\", "\\\\").replace(".", "\\.")
    return f"{escaped}.{counter}"


def split_stat_key(key: str) -> Tuple[str, str]:
    """Invert :func:`flat_stat_key`: ``"pass.Counter"`` -> ``(pass, counter)``."""
    out: List[str] = []
    i = 0
    while i < len(key):
        ch = key[i]
        if ch == "\\" and i + 1 < len(key):
            out.append(key[i + 1])
            i += 2
            continue
        if ch == ".":
            return "".join(out), key[i + 1:]
        out.append(ch)
        i += 1
    raise ValueError(f"not a flat pass.Counter key: {key!r}")


class StatsCollector:
    """Accumulates ``(pass, counter) -> int`` statistics during compilation."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, str], int] = {}

    def bump(self, pass_name: str, counter: str, amount: int = 1) -> None:
        """Increment ``<pass_name>.<counter>`` by ``amount`` (no-op if 0)."""
        if amount == 0:
            return
        key = (pass_name, counter)
        self._counters[key] = self._counters.get(key, 0) + amount

    def get(self, pass_name: str, counter: str) -> int:
        """Current value of ``<pass_name>.<counter>`` (0 if unset)."""
        return self._counters.get((pass_name, counter), 0)

    def items(self) -> Iterator[Tuple[Tuple[str, str], int]]:
        """Iterate over ``((pass, counter), value)`` pairs."""
        return iter(self._counters.items())

    def as_dict(self) -> Dict[str, int]:
        """Flat ``{"pass.Counter": value}`` dict, like ``-stats-json``.

        Keys come from :func:`flat_stat_key`, so pass names containing
        ``.`` are escaped rather than silently aliasing another pass's
        counter (no registered pass carries a dot today, which is why
        this stays byte-compatible with earlier runs)."""
        return {
            flat_stat_key(p, c): v for (p, c), v in sorted(self._counters.items())
        }

    def to_json(self) -> str:
        """JSON rendering of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def snapshot(self) -> Dict[Tuple[str, str], int]:
        """A point-in-time copy of the raw counters, for :meth:`diff`."""
        return dict(self._counters)

    def diff(self, before: Dict[Tuple[str, str], int]) -> Dict[str, int]:
        """Flat counter deltas accumulated since ``before`` was snapshot.

        Only non-zero deltas are returned — the per-pass statistics delta
        a :class:`~repro.compiler.pass_manager.PassTrace` records is
        usually a handful of counters out of hundreds."""
        out: Dict[str, int] = {}
        for (p, c), v in sorted(self._counters.items()):
            d = v - before.get((p, c), 0)
            if d != 0:
                out[flat_stat_key(p, c)] = d
        return out

    def merge(self, other: "StatsCollector") -> None:
        """Add every counter of ``other`` into this collector."""
        for (p, c), v in other.items():
            self.bump(p, c, v)

    def scoped(self, pass_name: str) -> "ScopedStats":
        """A view bound to one pass name."""
        return ScopedStats(self, pass_name)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsCollector({self.as_dict()})"


class ScopedStats:
    """A view of the collector bound to one pass name."""

    __slots__ = ("_parent", "_pass")

    def __init__(self, parent: StatsCollector, pass_name: str) -> None:
        self._parent = parent
        self._pass = pass_name

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment ``counter`` for the bound pass."""
        self._parent.bump(self._pass, counter, amount)
