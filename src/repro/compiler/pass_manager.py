"""Pass base classes, the pass registry, and the sequencing pass manager.

A *pass sequence* — the genome that CITROEN and every baseline search over —
is simply a list of registered pass names.  The pass manager applies them in
order to a module, collecting statistics, exactly like
``opt -passes=p1,p2,... -stats``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.compiler.analysis import module_profile, profile_delta
from repro.compiler.ir import Function, Module
from repro.compiler.statistics import StatsCollector
from repro.compiler.verify import verify_module

__all__ = [
    "Pass",
    "FunctionPass",
    "ModulePass",
    "PassRegistry",
    "registry",
    "register",
    "PassManager",
    "PassTrace",
    "PassTraceEntry",
    "TargetInfo",
]


class TargetInfo:
    """Target knobs visible to profitability heuristics inside passes.

    ``vector_bits`` bounds the widest vector the SLP/loop vectorisers may
    form; ``unroll_threshold`` bounds full unrolling; ``inline_threshold``
    bounds inlining.  Different platforms expose different values, which is
    why the best pass sequence is platform-dependent (§5.4.2).
    """

    def __init__(
        self,
        vector_bits: int = 128,
        unroll_threshold: int = 192,
        inline_threshold: int = 45,
        min_vector_lanes: int = 4,
    ) -> None:
        self.vector_bits = vector_bits
        self.unroll_threshold = unroll_threshold
        self.inline_threshold = inline_threshold
        self.min_vector_lanes = min_vector_lanes


class Pass:
    """Base class: subclasses set ``name`` and implement ``run_on_module``."""

    name: str = "<abstract>"
    #: whether the pass only analyses / normalises (listed but cheap)
    is_analysis: bool = False

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        """Apply the pass to ``module``; returns whether the IR changed."""
        raise NotImplementedError


class FunctionPass(Pass):
    """A pass applied independently to every function in the module."""

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        changed = False
        for fn in list(module.functions.values()):
            if self.run_on_function(fn, module, stats, target):
                changed = True
        return changed

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        """Apply the pass to one function; returns whether it changed."""
        raise NotImplementedError


class ModulePass(Pass):
    """A pass that needs whole-module scope (inlining, IPO)."""


class PassRegistry:
    """Name -> pass factory registry; the search space enumerates its keys."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], Pass]] = {}

    def add(self, name: str, factory: Callable[[], Pass]) -> None:
        """Register a pass factory under ``name``."""
        if name in self._factories:
            raise ValueError(f"pass {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str) -> Pass:
        """Instantiate the pass registered under ``name``."""
        try:
            return self._factories[name]()
        except KeyError:
            raise KeyError(f"unknown pass {name!r}") from None

    def names(self) -> List[str]:
        """All registered pass names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


registry = PassRegistry()


def register(cls):
    """Class decorator: register a Pass subclass under its ``name``."""
    registry.add(cls.name, cls)
    return cls


@dataclass
class PassTraceEntry:
    """One pass application inside a traced :meth:`PassManager.run`.

    ``offset`` is seconds from the start of the traced run (so entries can
    be laid out on a timeline); ``stats_delta`` holds the flat
    :meth:`~repro.compiler.statistics.StatsCollector.diff` of counters the
    pass bumped; ``ir_before``/``ir_after`` are
    :func:`~repro.compiler.analysis.module_profile` fingerprints.
    """

    index: int
    name: str
    offset: float
    wall: float
    cpu: float
    changed: bool
    stats_delta: Dict[str, int]
    ir_before: Dict[str, object]
    ir_after: Dict[str, object]

    def ir_delta(self) -> Dict[str, object]:
        """Compact IR fingerprint delta (non-zero entries only)."""
        return profile_delta(self.ir_before, self.ir_after)


class PassTrace:
    """Per-pass application records for one :meth:`PassManager.run`.

    Pass an instance via ``PassManager.run(module, trace=...)`` (or
    ``run_opt(..., trace=...)``) and it fills with one
    :class:`PassTraceEntry` per pass: wall+CPU time, the ``changed`` flag,
    the statistics delta, and the IR fingerprint before/after.  Successive
    entries share fingerprints (pass N's ``ir_after`` is pass N+1's
    ``ir_before``), so tracing costs one :func:`module_profile` walk per
    pass, not two.  Consumes no RNG — traced and untraced compiles produce
    bit-identical modules and statistics.
    """

    def __init__(self) -> None:
        self.entries: List[PassTraceEntry] = []
        self._t0 = 0.0
        self._profile: Optional[Dict[str, object]] = None

    def begin(self, module: Module) -> None:
        """Start the trace clock and take the initial IR fingerprint."""
        self._t0 = time.perf_counter()
        self._profile = module_profile(module)

    def record(
        self,
        index: int,
        name: str,
        start: float,
        wall: float,
        cpu: float,
        changed: bool,
        stats_delta: Dict[str, int],
        module: Module,
    ) -> None:
        before = self._profile if self._profile is not None else module_profile(module)
        after = module_profile(module)
        self._profile = after
        self.entries.append(
            PassTraceEntry(
                index=index,
                name=name,
                offset=start - self._t0,
                wall=wall,
                cpu=cpu,
                changed=changed,
                stats_delta=stats_delta,
                ir_before=before,
                ir_after=after,
            )
        )

    def summary(self) -> Dict[str, object]:
        """Aggregate view: totals the span/report layers attach."""
        entries = self.entries
        return {
            "passes": len(entries),
            "n_changed": sum(1 for e in entries if e.changed),
            "pass_wall": sum(e.wall for e in entries),
            "instrs_before": entries[0].ir_before["instrs"] if entries else None,
            "instrs_after": entries[-1].ir_after["instrs"] if entries else None,
        }

    def __len__(self) -> int:
        return len(self.entries)


class PassManager:
    """Applies a named pass sequence to a module.

    Parameters
    ----------
    sequence:
        Pass names, applied in order (repeats allowed — a pass may usefully
        run many times, §1.1).
    target:
        Profitability knobs for the platform being compiled for.
    verify_each:
        Run the structural verifier after every pass (used by the test
        suite; off by default for speed).
    """

    def __init__(
        self,
        sequence: Sequence[str],
        target: Optional[TargetInfo] = None,
        verify_each: bool = False,
    ) -> None:
        unknown = [n for n in sequence if n not in registry]
        if unknown:
            raise KeyError(f"unknown passes: {unknown}")
        self.sequence = list(sequence)
        self.target = target if target is not None else TargetInfo()
        self.verify_each = verify_each

    def run(
        self,
        module: Module,
        stats: Optional[StatsCollector] = None,
        trace: Optional[PassTrace] = None,
    ) -> StatsCollector:
        """Apply the sequence to ``module`` in place; returns the statistics.

        With a :class:`PassTrace`, every pass application additionally
        records timing, the ``changed`` flag, its statistics delta, and
        the IR fingerprint delta; the optimised module and statistics are
        bit-identical with or without the trace.
        """
        if stats is None:
            stats = StatsCollector()
        if trace is not None:
            trace.begin(module)
        for i, name in enumerate(self.sequence):
            pss = registry.create(name)
            if trace is None:
                pss.run_on_module(module, stats, self.target)
            else:
                before = stats.snapshot()
                start = time.perf_counter()
                cpu0 = time.thread_time()
                changed = pss.run_on_module(module, stats, self.target)
                wall = time.perf_counter() - start
                cpu = time.thread_time() - cpu0
                trace.record(
                    i, name, start, wall, cpu,
                    changed=bool(changed),
                    stats_delta=stats.diff(before),
                    module=module,
                )
            if self.verify_each:
                try:
                    verify_module(module)
                except AssertionError as exc:
                    # repeats are legal, so the name alone is ambiguous:
                    # report the failing *position* and the exact prefix
                    # that reproduces the corruption
                    prefix = " -> ".join(self.sequence[: i + 1])
                    raise AssertionError(
                        f"IR invalid after pass {name!r} at position {i} "
                        f"of {len(self.sequence)} (prefix: {prefix}): {exc}"
                    ) from exc
        return stats
