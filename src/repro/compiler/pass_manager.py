"""Pass base classes, the pass registry, and the sequencing pass manager.

A *pass sequence* — the genome that CITROEN and every baseline search over —
is simply a list of registered pass names.  The pass manager applies them in
order to a module, collecting statistics, exactly like
``opt -passes=p1,p2,... -stats``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.compiler.ir import Function, Module
from repro.compiler.statistics import StatsCollector
from repro.compiler.verify import verify_module

__all__ = [
    "Pass",
    "FunctionPass",
    "ModulePass",
    "PassRegistry",
    "registry",
    "register",
    "PassManager",
    "TargetInfo",
]


class TargetInfo:
    """Target knobs visible to profitability heuristics inside passes.

    ``vector_bits`` bounds the widest vector the SLP/loop vectorisers may
    form; ``unroll_threshold`` bounds full unrolling; ``inline_threshold``
    bounds inlining.  Different platforms expose different values, which is
    why the best pass sequence is platform-dependent (§5.4.2).
    """

    def __init__(
        self,
        vector_bits: int = 128,
        unroll_threshold: int = 192,
        inline_threshold: int = 45,
        min_vector_lanes: int = 4,
    ) -> None:
        self.vector_bits = vector_bits
        self.unroll_threshold = unroll_threshold
        self.inline_threshold = inline_threshold
        self.min_vector_lanes = min_vector_lanes


class Pass:
    """Base class: subclasses set ``name`` and implement ``run_on_module``."""

    name: str = "<abstract>"
    #: whether the pass only analyses / normalises (listed but cheap)
    is_analysis: bool = False

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        """Apply the pass to ``module``; returns whether the IR changed."""
        raise NotImplementedError


class FunctionPass(Pass):
    """A pass applied independently to every function in the module."""

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        changed = False
        for fn in list(module.functions.values()):
            if self.run_on_function(fn, module, stats, target):
                changed = True
        return changed

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        """Apply the pass to one function; returns whether it changed."""
        raise NotImplementedError


class ModulePass(Pass):
    """A pass that needs whole-module scope (inlining, IPO)."""


class PassRegistry:
    """Name -> pass factory registry; the search space enumerates its keys."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], Pass]] = {}

    def add(self, name: str, factory: Callable[[], Pass]) -> None:
        """Register a pass factory under ``name``."""
        if name in self._factories:
            raise ValueError(f"pass {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str) -> Pass:
        """Instantiate the pass registered under ``name``."""
        try:
            return self._factories[name]()
        except KeyError:
            raise KeyError(f"unknown pass {name!r}") from None

    def names(self) -> List[str]:
        """All registered pass names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


registry = PassRegistry()


def register(cls):
    """Class decorator: register a Pass subclass under its ``name``."""
    registry.add(cls.name, cls)
    return cls


class PassManager:
    """Applies a named pass sequence to a module.

    Parameters
    ----------
    sequence:
        Pass names, applied in order (repeats allowed — a pass may usefully
        run many times, §1.1).
    target:
        Profitability knobs for the platform being compiled for.
    verify_each:
        Run the structural verifier after every pass (used by the test
        suite; off by default for speed).
    """

    def __init__(
        self,
        sequence: Sequence[str],
        target: Optional[TargetInfo] = None,
        verify_each: bool = False,
    ) -> None:
        unknown = [n for n in sequence if n not in registry]
        if unknown:
            raise KeyError(f"unknown passes: {unknown}")
        self.sequence = list(sequence)
        self.target = target if target is not None else TargetInfo()
        self.verify_each = verify_each

    def run(self, module: Module, stats: Optional[StatsCollector] = None) -> StatsCollector:
        """Apply the sequence to ``module`` in place; returns the statistics."""
        if stats is None:
            stats = StatsCollector()
        for name in self.sequence:
            pss = registry.create(name)
            pss.run_on_module(module, stats, self.target)
            if self.verify_each:
                try:
                    verify_module(module)
                except AssertionError as exc:  # pragma: no cover - bug trap
                    raise AssertionError(f"IR invalid after pass {name!r}: {exc}") from exc
        return stats
