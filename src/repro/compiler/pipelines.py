"""Reference optimisation pipelines (``-O0`` … ``-O3``, ``-Oz``).

The ``-O3`` sequence mirrors the shape of LLVM's default pipeline: early
cleanup (sroa/early-cse), a simplification core repeated around the inliner,
loop canonicalisation and transformation, vectorisation, and late cleanup.
It is the baseline every speedup in the evaluation is measured against, so
it needs to be genuinely strong on the workload suite.

``LLVM10_PASSES`` is a reduced pass alphabet used by the Fig 5.10 bench
(comparing behaviour under an older compiler with fewer passes).
"""

from __future__ import annotations

from typing import Dict, List

from repro.compiler import passes as _passes  # noqa: F401  (registers passes)
from repro.compiler.pass_manager import registry

__all__ = [
    "O0",
    "O1",
    "O2",
    "O3",
    "OZ",
    "pipeline",
    "PIPELINES",
    "SEARCH_PASSES",
    "LLVM10_PASSES",
]

O0: List[str] = []

O1: List[str] = [
    "mem2reg",
    "instcombine",
    "simplifycfg",
    "early-cse",
    "sccp",
    "dce",
    "simplifycfg",
]

O2: List[str] = [
    "sroa",
    "early-cse",
    "simplifycfg",
    "instcombine",
    "function-attrs",
    "inline",
    "sroa",
    "instcombine",
    "simplifycfg",
    "sccp",
    "gvn",
    "reassociate",
    "loop-simplify",
    "loop-rotate",
    "licm",
    "indvars",
    "loop-idiom",
    "loop-deletion",
    "loop-unroll",
    "gvn",
    "dse",
    "adce",
    "simplifycfg",
    "instcombine",
]

O3: List[str] = [
    "sroa",
    "early-cse",
    "simplifycfg",
    "instcombine",
    "function-attrs",
    "ipsccp",
    "globalopt",
    "inline",
    "deadargelim",
    "argpromotion",
    "sroa",
    "instcombine",
    "simplifycfg",
    "jump-threading",
    "correlated-propagation",
    "sccp",
    "gvn",
    "reassociate",
    "tailcallelim",
    "loop-simplify",
    "lcssa",
    "loop-rotate",
    "licm",
    "loop-unswitch",
    "indvars",
    "loop-idiom",
    "loop-deletion",
    "loop-unroll",
    "gvn",
    "memcpyopt",
    "sccp",
    "bdce",
    "instcombine",
    "dse",
    "licm",
    "adce",
    "simplifycfg",
    "loop-vectorize",
    "slp-vectorizer",
    "vector-combine",
    "instcombine",
    "early-cse",
    "div-rem-pairs",
    "adce",
    "simplifycfg",
    "globaldce",
    "constmerge",
    "mergefunc",
]

OZ: List[str] = [
    "sroa",
    "early-cse",
    "simplifycfg",
    "instcombine",
    "function-attrs",
    "ipsccp",
    "globalopt",
    "deadargelim",
    "sccp",
    "gvn",
    "dse",
    "adce",
    "simplifycfg",
    "globaldce",
    "constmerge",
    "mergefunc",
]

PIPELINES: Dict[str, List[str]] = {
    "-O0": O0,
    "-O1": O1,
    "-O2": O2,
    "-O3": O3,
    "-Oz": OZ,
}


def pipeline(level: str) -> List[str]:
    """The pass sequence for an ``-O`` level (copy; callers may mutate)."""
    try:
        return list(PIPELINES[level])
    except KeyError:
        raise KeyError(f"unknown optimisation level {level!r}") from None


#: the full phase-ordering search alphabet: every registered transformation
SEARCH_PASSES: List[str] = sorted(registry.names())

#: reduced pass set standing in for an older compiler (Fig 5.10's LLVM 10)
LLVM10_PASSES: List[str] = [
    p
    for p in SEARCH_PASSES
    if p
    not in {
        "memcpyopt",
        "vector-combine",
        "bdce",
        "div-rem-pairs",
        "aggressive-instcombine",
        "correlated-propagation",
        "loop-unswitch",
        "mergefunc",
        "argpromotion",
    }
]
