"""The mini-LLVM compiler substrate: IR, analyses, passes, pipelines."""

from repro.compiler.ir import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    PTR,
    VOID,
    Block,
    Const,
    Function,
    GlobalVar,
    Instr,
    Module,
    Type,
    vec,
)
from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.opt_tool import CompileResult, available_passes, run_opt
from repro.compiler.pass_manager import PassManager, TargetInfo, registry
from repro.compiler.pipelines import LLVM10_PASSES, O3, PIPELINES, SEARCH_PASSES, pipeline
from repro.compiler.statistics import StatsCollector
from repro.compiler.textual import IRParseError, parse_module, print_function, print_module
from repro.compiler.verify import VerifyError, verify_function, verify_module

__all__ = [
    "Block",
    "CompileResult",
    "Const",
    "Function",
    "FunctionBuilder",
    "GlobalVar",
    "Instr",
    "LLVM10_PASSES",
    "Module",
    "O3",
    "PIPELINES",
    "PassManager",
    "SEARCH_PASSES",
    "StatsCollector",
    "IRParseError",
    "parse_module",
    "print_function",
    "print_module",
    "TargetInfo",
    "Type",
    "VerifyError",
    "available_passes",
    "c",
    "pipeline",
    "registry",
    "run_opt",
    "verify_function",
    "verify_module",
    "F32",
    "F64",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "PTR",
    "VOID",
    "vec",
]
