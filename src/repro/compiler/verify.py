"""Structural IR verifier.

Run after every pass in tests (and optionally inside the pass manager) to
catch malformed IR early: missing terminators, uses of undefined registers,
phi edges that do not match the CFG, branches to unknown blocks, multiple
definitions of a register.  A pass that produces IR failing verification is
a pass with a bug — the differential tests then localise *semantic* bugs.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.compiler.analysis import dominators, reachable_blocks
from repro.compiler.ir import Const, Function, Module

__all__ = ["VerifyError", "verify_function", "verify_module"]


class VerifyError(AssertionError):
    """Raised when the IR violates a structural invariant."""


def verify_function(fn: Function, module: Module = None) -> None:
    """Check structural and SSA invariants of one function."""
    if not fn.blocks:
        raise VerifyError(f"@{fn.name}: no blocks")
    defined: Dict[str, str] = {p: "<param>" for p in fn.param_names()}
    for bname, blk in fn.blocks.items():
        if not blk.instrs:
            raise VerifyError(f"@{fn.name}:{bname}: empty block")
        term = blk.instrs[-1]
        if not term.is_terminator:
            raise VerifyError(f"@{fn.name}:{bname}: missing terminator (ends with {term.op})")
        for i, inst in enumerate(blk.instrs):
            if inst.is_terminator and i != len(blk.instrs) - 1:
                raise VerifyError(f"@{fn.name}:{bname}: terminator {inst.op} mid-block")
            if inst.op == "phi" and i > 0 and blk.instrs[i - 1].op != "phi":
                raise VerifyError(f"@{fn.name}:{bname}: phi after non-phi")
            if inst.res is not None:
                if inst.res in defined:
                    raise VerifyError(
                        f"@{fn.name}: register {inst.res} defined twice "
                        f"({defined[inst.res]} and {bname})"
                    )
                defined[inst.res] = bname
    preds = fn.predecessors()
    reach = reachable_blocks(fn)
    for bname in reach:
        for succ in fn.blocks[bname].successors():
            if succ not in fn.blocks:
                raise VerifyError(f"@{fn.name}:{bname}: branch to unknown block {succ!r}")
    for bname, blk in fn.blocks.items():
        if bname not in reach:
            continue  # unreachable blocks may be temporarily inconsistent
        incoming_preds = {p for p in preds[bname] if p in reach}
        for inst in blk.instrs:
            if inst.op == "phi":
                sources = [b for b, _ in inst.attrs["incoming"]]
                if len(set(sources)) != len(sources):
                    raise VerifyError(f"@{fn.name}:{bname}: phi has duplicate incoming block")
                src_set = {b for b in sources if b in reach}
                if src_set != incoming_preds:
                    raise VerifyError(
                        f"@{fn.name}:{bname}: phi incoming {sorted(src_set)} != "
                        f"preds {sorted(incoming_preds)}"
                    )
            for reg in inst.reg_operands():
                if reg not in defined:
                    raise VerifyError(f"@{fn.name}:{bname}: use of undefined {reg!r}")
            if inst.op == "call" and module is not None:
                callee = inst.attrs["callee"]
                if callee in module.functions:
                    nparams = len(module.functions[callee].params)
                    if len(inst.args) != nparams:
                        raise VerifyError(
                            f"@{fn.name}:{bname}: call @{callee} with {len(inst.args)} "
                            f"args, expects {nparams}"
                        )

    _verify_dominance(fn, defined, reach)


def _verify_dominance(fn: Function, defined: Dict[str, str], reach: Set[str]) -> None:
    """Every use must be dominated by its definition (SSA invariant)."""
    doms = dominators(fn)
    # position of each defining instruction within its block
    pos: Dict[str, int] = {}
    for blk in fn.blocks.values():
        for i, inst in enumerate(blk.instrs):
            if inst.res is not None:
                pos[inst.res] = i
    for bname in reach:
        blk = fn.blocks[bname]
        for i, inst in enumerate(blk.instrs):
            if inst.op == "phi":
                # phi uses must dominate the *incoming edge*, i.e. be
                # available at the end of the incoming block
                for src_blk, val in inst.attrs["incoming"]:
                    if not isinstance(val, str) or src_blk not in reach:
                        continue
                    def_blk = defined.get(val)
                    if def_blk == "<param>":
                        continue
                    if def_blk is None or def_blk not in doms.get(src_blk, set()):
                        raise VerifyError(
                            f"@{fn.name}:{bname}: phi operand {val} (def in {def_blk}) "
                            f"does not dominate incoming edge from {src_blk}"
                        )
                continue
            for reg in inst.reg_operands():
                def_blk = defined.get(reg)
                if def_blk == "<param>":
                    continue
                if def_blk == bname:
                    if pos[reg] >= i:
                        raise VerifyError(
                            f"@{fn.name}:{bname}: {reg} used before defined in-block"
                        )
                elif def_blk not in doms.get(bname, set()):
                    raise VerifyError(
                        f"@{fn.name}:{bname}: use of {reg} not dominated by its "
                        f"definition in {def_blk}"
                    )


def verify_module(module: Module) -> None:
    """Verify every function of the module."""
    for fn in module.functions.values():
        verify_function(fn, module)
    for inst_fn in module.functions.values():
        for inst in inst_fn.instructions():
            if inst.op == "gaddr":
                name = inst.attrs["name"]
                if name not in module.globals:
                    # may be resolved at link time against another module
                    continue
