"""A small SSA-style intermediate representation.

The IR deliberately mirrors the slice of LLVM IR that matters for the phase
ordering problem studied in the paper: stack slots (``alloca``/``load``/
``store``) that ``mem2reg`` can promote, integer widths that ``instcombine``
can widen (changing SLP-vectorisation profitability, Fig 5.1), explicit
control flow with phi nodes, calls that ``inline`` can flatten, and vector
instructions that ``slp-vectorizer``/``loop-vectorize`` introduce.

Design notes
------------
* Values are virtual registers named by strings (``"%t3"``) or ``Const``
  immediates.  Instruction results are registers; the IR is "SSA-lite":
  registers are single-assignment, while mutable state lives in memory
  created by ``alloca`` or module globals.
* Instructions are small mutable objects (``op``, ``res``, ``ty``, ``args``,
  ``attrs``) so passes can rewrite in place; structural helpers live on
  :class:`Function` and :class:`Module`.
* Every construct here is executable by :mod:`repro.machine.interp`, which
  is what makes differential testing of pass pipelines meaningful.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Type",
    "VOID",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "F32",
    "F64",
    "PTR",
    "vec",
    "Const",
    "Instr",
    "Block",
    "GlobalVar",
    "Function",
    "Module",
    "TERMINATORS",
    "BIN_OPS",
    "INT_BIN_OPS",
    "FLOAT_BIN_OPS",
    "CMP_PREDS",
    "is_commutative",
]


@dataclass(frozen=True)
class Type:
    """An IR type: integer, float, pointer, vector or void.

    ``bits`` is the scalar bit width; vectors carry an element type and lane
    count.  Types are immutable and hashable so they can key cost tables.
    """

    kind: str  # 'int' | 'float' | 'ptr' | 'vec' | 'void'
    bits: int = 0
    elem: Optional["Type"] = None
    lanes: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "int":
            return f"i{self.bits}"
        if self.kind == "float":
            return f"f{self.bits}"
        if self.kind == "ptr":
            return "ptr"
        if self.kind == "vec":
            return f"<{self.lanes} x {self.elem!r}>"
        return "void"

    @property
    def is_int(self) -> bool:
        return self.kind == "int"

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_vec(self) -> bool:
        return self.kind == "vec"

    @property
    def is_ptr(self) -> bool:
        return self.kind == "ptr"

    def byte_size(self) -> int:
        """Storage size in bytes (pointers are 8 bytes)."""
        if self.kind in ("int", "float"):
            return max(1, self.bits // 8)
        if self.kind == "ptr":
            return 8
        if self.kind == "vec":
            return self.elem.byte_size() * self.lanes
        return 0


VOID = Type("void")
I1 = Type("int", 1)
I8 = Type("int", 8)
I16 = Type("int", 16)
I32 = Type("int", 32)
I64 = Type("int", 64)
F32 = Type("float", 32)
F64 = Type("float", 64)
PTR = Type("ptr", 64)

_VEC_CACHE: Dict[Tuple[Type, int], Type] = {}


def vec(elem: Type, lanes: int) -> Type:
    """Interned vector type constructor."""
    key = (elem, lanes)
    cached = _VEC_CACHE.get(key)
    if cached is None:
        cached = Type("vec", elem.bits * lanes, elem, lanes)
        _VEC_CACHE[key] = cached
    return cached


@dataclass(frozen=True)
class Const:
    """An immediate operand. ``value`` is int, float, or tuple (vectors)."""

    value: Union[int, float, Tuple]
    ty: Type

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.ty!r} {self.value}"


Operand = Union[str, Const]

#: Binary integer arithmetic/logical opcodes.
INT_BIN_OPS = frozenset(
    {"add", "sub", "mul", "sdiv", "srem", "udiv", "urem", "and", "or", "xor", "shl", "ashr", "lshr"}
)
#: Binary float opcodes.
FLOAT_BIN_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv"})
BIN_OPS = INT_BIN_OPS | FLOAT_BIN_OPS
#: icmp/fcmp predicates.
CMP_PREDS = frozenset({"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"})
#: Block-terminating opcodes.
TERMINATORS = frozenset({"br", "jmp", "ret", "unreachable"})

_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})


def is_commutative(op: str) -> bool:
    """Whether swapping the two operands of ``op`` preserves semantics."""
    return op in _COMMUTATIVE


class Instr:
    """One IR instruction.

    Attributes
    ----------
    op:
        Opcode string (see the opcode families in this module's docstring).
    res:
        Result register name or ``None`` for void-producing instructions.
    ty:
        Result type (``VOID`` when ``res`` is ``None``).
    args:
        Operand list of registers / constants.  For ``phi`` the operands live
        in ``attrs['incoming']`` instead.
    attrs:
        Opcode-specific payload: branch targets, call callee, icmp predicate,
        phi incoming edges, gep element size, vector lane counts, etc.
    """

    __slots__ = ("op", "res", "ty", "args", "attrs")

    def __init__(
        self,
        op: str,
        res: Optional[str] = None,
        ty: Type = VOID,
        args: Sequence[Operand] = (),
        **attrs,
    ) -> None:
        self.op = op
        self.res = res
        self.ty = ty
        self.args: List[Operand] = list(args)
        self.attrs: Dict[str, object] = attrs

    def clone(self) -> "Instr":
        """Deep copy of the instruction."""
        inst = Instr(self.op, self.res, self.ty, list(self.args))
        inst.attrs = copy.deepcopy(self.attrs)
        return inst

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    def operands(self) -> Iterator[Operand]:
        """Iterate over all value operands, including phi incomings."""
        yield from self.args
        if self.op == "phi":
            for _, val in self.attrs["incoming"]:
                yield val

    def reg_operands(self) -> Iterator[str]:
        """Iterate over register (non-constant) operands."""
        for v in self.operands():
            if isinstance(v, str):
                yield v

    def replace_uses(self, mapping: Dict[str, Operand]) -> bool:
        """Rewrite register operands through ``mapping``; returns changed."""
        changed = False
        for i, a in enumerate(self.args):
            if isinstance(a, str) and a in mapping:
                self.args[i] = mapping[a]
                changed = True
        if self.op == "phi":
            inc = self.attrs["incoming"]
            for i, (blk, val) in enumerate(inc):
                if isinstance(val, str) and val in mapping:
                    inc[i] = (blk, mapping[val])
                    changed = True
        return changed

    def successors(self) -> Tuple[str, ...]:
        """Branch target block names (empty for non-terminators / ret)."""
        if self.op == "br":
            return self.attrs["targets"]
        if self.op == "jmp":
            return (self.attrs["target"],)
        return ()

    def retarget(self, old: str, new: str) -> None:
        """Replace branch target ``old`` with ``new``."""
        if self.op == "br":
            self.attrs["targets"] = tuple(new if t == old else t for t in self.attrs["targets"])
        elif self.op == "jmp" and self.attrs["target"] == old:
            self.attrs["target"] = new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = f"{self.res} = " if self.res else ""
        extra = f" {self.attrs}" if self.attrs else ""
        return f"{head}{self.op} {self.args}{extra}"


class Block:
    """A basic block: a label plus an instruction list ending in a terminator."""

    __slots__ = ("name", "instrs")

    def __init__(self, name: str, instrs: Optional[List[Instr]] = None) -> None:
        self.name = name
        self.instrs: List[Instr] = instrs if instrs is not None else []

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def phis(self) -> List[Instr]:
        """Leading phi instructions of the block."""
        out = []
        for inst in self.instrs:
            if inst.op != "phi":
                break
            out.append(inst)
        return out

    def non_phi_instrs(self) -> List[Instr]:
        """All instructions except phis."""
        return [i for i in self.instrs if i.op != "phi"]

    def successors(self) -> Tuple[str, ...]:
        """Successor block names from the terminator."""
        term = self.terminator
        return term.successors() if term is not None else ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block({self.name}, {len(self.instrs)} instrs)"


@dataclass
class GlobalVar:
    """A module-level array variable.

    ``init`` is a list of Python numbers used to initialise the array; the
    interpreter materialises it into simulated memory at program start.
    """

    name: str
    elem_ty: Type
    init: List[Union[int, float]]
    const: bool = False

    @property
    def count(self) -> int:
        return len(self.init)


class Function:
    """A function: parameters, return type, ordered basic blocks, attributes.

    ``attrs`` holds LLVM-like function attributes the passes manipulate
    (``readnone``, ``noinline``, ``alwaysinline``), which is what makes the
    ``function-attrs`` pass observable — a property the paper highlights as
    invisible to code-characterisation baselines (§3.4).
    """

    def __init__(self, name: str, params: Sequence[Tuple[str, Type]], ret_ty: Type) -> None:
        self.name = name
        self.params: List[Tuple[str, Type]] = list(params)
        self.ret_ty = ret_ty
        self.blocks: Dict[str, Block] = {}
        self.attrs: set = set()
        self._counter = 0

    # -- construction -----------------------------------------------------
    def add_block(self, name: str) -> Block:
        """Create and append a new (empty) basic block."""
        if name in self.blocks:
            raise ValueError(f"duplicate block {name!r} in @{self.name}")
        blk = Block(name)
        self.blocks[name] = blk
        return blk

    def fresh(self, hint: str = "t") -> str:
        """Allocate a fresh register name."""
        self._counter += 1
        return f"%{hint}.{self._counter}"

    def fresh_block_name(self, hint: str = "bb") -> str:
        """Allocate a fresh, unused block name."""
        self._counter += 1
        name = f"{hint}.{self._counter}"
        while name in self.blocks:
            self._counter += 1
            name = f"{hint}.{self._counter}"
        return name

    # -- queries ----------------------------------------------------------
    @property
    def entry(self) -> Block:
        return next(iter(self.blocks.values()))

    def instructions(self) -> Iterator[Instr]:
        """Iterate over every instruction in block order."""
        for blk in self.blocks.values():
            yield from blk.instrs

    def num_instrs(self) -> int:
        """Total instruction count."""
        return sum(len(b.instrs) for b in self.blocks.values())

    def defs(self) -> Dict[str, Instr]:
        """Map register name -> defining instruction."""
        out: Dict[str, Instr] = {}
        for inst in self.instructions():
            if inst.res is not None:
                out[inst.res] = inst
        return out

    def param_names(self) -> List[str]:
        """Parameter register names."""
        return [p for p, _ in self.params]

    def predecessors(self) -> Dict[str, List[str]]:
        """Map block name -> predecessor block names."""
        preds: Dict[str, List[str]] = {name: [] for name in self.blocks}
        for blk in self.blocks.values():
            for succ in blk.successors():
                # branches in unreachable code may dangle after a block
                # deletion; they are cleaned up by simplifycfg
                if succ in preds:
                    preds[succ].append(blk.name)
        return preds

    # -- mutation helpers --------------------------------------------------
    def replace_all_uses(self, mapping: Dict[str, Operand]) -> int:
        """Rewrite uses across the whole function; returns #instrs changed."""
        if not mapping:
            return 0
        n = 0
        for inst in self.instructions():
            if inst.replace_uses(mapping):
                n += 1
        return n

    def remove_blocks(self, names: Iterable[str]) -> None:
        """Delete blocks and prune phi edges referencing them."""
        doomed = set(names)
        for name in doomed:
            del self.blocks[name]
        for blk in self.blocks.values():
            for inst in blk.instrs:
                if inst.op == "phi":
                    inst.attrs["incoming"] = [
                        (b, v) for b, v in inst.attrs["incoming"] if b not in doomed
                    ]

    def reorder_blocks(self, order: Sequence[str]) -> None:
        """Reorder ``self.blocks`` to follow ``order`` (must be a permutation)."""
        assert set(order) == set(self.blocks)
        self.blocks = {name: self.blocks[name] for name in order}

    def clone(self) -> "Function":
        """Deep copy of the function."""
        fn = Function(self.name, list(self.params), self.ret_ty)
        fn.attrs = set(self.attrs)
        fn._counter = self._counter
        for name, blk in self.blocks.items():
            nb = fn.add_block(name)
            nb.instrs = [inst.clone() for inst in blk.instrs]
        return fn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Function(@{self.name}, {len(self.blocks)} blocks, {self.num_instrs()} instrs)"


class Module:
    """A translation unit: functions plus global arrays.

    Programs in :mod:`repro.workloads` consist of several modules linked by
    name; per-module pass sequences are the unit of phase ordering (§1.1).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVar] = {}

    def add_function(self, fn: Function) -> Function:
        """Add a function (name must be unique)."""
        if fn.name in self.functions:
            raise ValueError(f"duplicate function @{fn.name}")
        self.functions[fn.name] = fn
        return fn

    def add_global(self, gv: GlobalVar) -> GlobalVar:
        """Add a global variable (name must be unique)."""
        if gv.name in self.globals:
            raise ValueError(f"duplicate global @{gv.name}")
        self.globals[gv.name] = gv
        return gv

    def num_instrs(self) -> int:
        """Total instruction count."""
        return sum(f.num_instrs() for f in self.functions.values())

    def clone(self) -> "Module":
        """Deep copy of the whole module."""
        mod = Module(self.name)
        for fn in self.functions.values():
            mod.functions[fn.name] = fn.clone()
        for gv in self.globals.values():
            mod.globals[gv.name] = GlobalVar(gv.name, gv.elem_ty, list(gv.init), gv.const)
        return mod

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Module({self.name}, {len(self.functions)} fns, {self.num_instrs()} instrs)"
