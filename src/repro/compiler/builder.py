"""Ergonomic construction API for IR modules.

Workload programs (:mod:`repro.workloads`) are written against this builder.
It intentionally produces *front-end style* (``-O0``) code: local variables
live in ``alloca`` slots accessed through loads and stores, loops carry their
induction variable in memory, and no cleanups are applied.  That leaves real
work for ``mem2reg``/``sroa``/``licm``/… so that phase ordering actually
matters, exactly as with clang-emitted IR.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.compiler.ir import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    PTR,
    VOID,
    Block,
    Const,
    Function,
    GlobalVar,
    Instr,
    Module,
    Operand,
    Type,
)

__all__ = ["FunctionBuilder", "c"]


def c(value: Union[int, float], ty: Type = I32) -> Const:
    """Shorthand constant constructor."""
    return Const(value, ty)


class FunctionBuilder:
    """Builds one function instruction-by-instruction.

    The builder tracks a *current block*; emission methods append to it and
    return the result register (or ``None`` for void instructions).
    """

    def __init__(
        self,
        module: Module,
        name: str,
        params: Sequence[Tuple[str, Type]] = (),
        ret_ty: Type = VOID,
    ) -> None:
        self.module = module
        self.fn = Function(name, params, ret_ty)
        module.add_function(self.fn)
        self._cur: Optional[Block] = None
        self.block("entry")

    # -- block management --------------------------------------------------
    def block(self, name: str) -> Block:
        """Create a new block and make it current."""
        blk = self.fn.add_block(name)
        self._cur = blk
        return blk

    def switch_to(self, block: Block) -> None:
        """Make an existing block current."""
        self._cur = block

    @property
    def current(self) -> Block:
        assert self._cur is not None
        return self._cur

    def emit(self, instr: Instr) -> Optional[str]:
        """Append a prebuilt instruction to the current block."""
        self.current.instrs.append(instr)
        return instr.res

    def _emit(self, op: str, ty: Type, args: Sequence[Operand], hint: str = "t", **attrs) -> str:
        res = self.fn.fresh(hint)
        self.emit(Instr(op, res, ty, args, **attrs))
        return res

    # -- memory -------------------------------------------------------------
    def alloca(self, elem_ty: Type, count: int = 1, hint: str = "slot") -> str:
        """Emit a stack allocation; returns the pointer register."""
        return self._emit("alloca", PTR, (), hint=hint, elem_ty=elem_ty, count=count)

    def load(self, ty: Type, ptr: Operand) -> str:
        """Emit a load of ``ty`` from ``ptr``."""
        return self._emit("load", ty, (ptr,))

    def store(self, val: Operand, ptr: Operand) -> None:
        """Emit a store of ``val`` to ``ptr``."""
        self.emit(Instr("store", None, VOID, (val, ptr)))

    def gep(self, ptr: Operand, index: Operand, elem_ty: Type) -> str:
        """Emit pointer arithmetic: ``ptr + index * sizeof(elem_ty)``."""
        return self._emit("gep", PTR, (ptr, index), elem_ty=elem_ty)

    def gaddr(self, name: str) -> str:
        """Address of a module global."""
        return self._emit("gaddr", PTR, (), name=name)

    # -- arithmetic ----------------------------------------------------------
    def binop(self, op: str, a: Operand, b: Operand, ty: Type) -> str:
        """Emit a binary operation ``op`` of type ``ty``."""
        return self._emit(op, ty, (a, b))

    def add(self, a: Operand, b: Operand, ty: Type = I32) -> str:
        """Emit an integer ``add``."""
        return self.binop("add", a, b, ty)

    def sub(self, a: Operand, b: Operand, ty: Type = I32) -> str:
        """Emit an integer ``sub``."""
        return self.binop("sub", a, b, ty)

    def mul(self, a: Operand, b: Operand, ty: Type = I32) -> str:
        """Emit an integer ``mul``."""
        return self.binop("mul", a, b, ty)

    def sdiv(self, a: Operand, b: Operand, ty: Type = I32) -> str:
        """Emit a signed division."""
        return self.binop("sdiv", a, b, ty)

    def srem(self, a: Operand, b: Operand, ty: Type = I32) -> str:
        """Emit a signed remainder."""
        return self.binop("srem", a, b, ty)

    def and_(self, a: Operand, b: Operand, ty: Type = I32) -> str:
        """Emit a bitwise ``and``."""
        return self.binop("and", a, b, ty)

    def or_(self, a: Operand, b: Operand, ty: Type = I32) -> str:
        """Emit a bitwise ``or``."""
        return self.binop("or", a, b, ty)

    def xor(self, a: Operand, b: Operand, ty: Type = I32) -> str:
        """Emit a bitwise ``xor``."""
        return self.binop("xor", a, b, ty)

    def shl(self, a: Operand, b: Operand, ty: Type = I32) -> str:
        """Emit a left shift."""
        return self.binop("shl", a, b, ty)

    def ashr(self, a: Operand, b: Operand, ty: Type = I32) -> str:
        """Emit an arithmetic right shift."""
        return self.binop("ashr", a, b, ty)

    def fadd(self, a: Operand, b: Operand, ty: Type = F64) -> str:
        """Emit a floating add."""
        return self.binop("fadd", a, b, ty)

    def fsub(self, a: Operand, b: Operand, ty: Type = F64) -> str:
        """Emit a floating subtract."""
        return self.binop("fsub", a, b, ty)

    def fmul(self, a: Operand, b: Operand, ty: Type = F64) -> str:
        """Emit a floating multiply."""
        return self.binop("fmul", a, b, ty)

    def fdiv(self, a: Operand, b: Operand, ty: Type = F64) -> str:
        """Emit a floating division."""
        return self.binop("fdiv", a, b, ty)

    # -- casts ----------------------------------------------------------------
    def sext(self, a: Operand, ty: Type) -> str:
        """Emit a sign extension to ``ty``."""
        return self._emit("sext", ty, (a,))

    def zext(self, a: Operand, ty: Type) -> str:
        """Emit a zero extension to ``ty``."""
        return self._emit("zext", ty, (a,))

    def trunc(self, a: Operand, ty: Type) -> str:
        """Emit an integer truncation to ``ty``."""
        return self._emit("trunc", ty, (a,))

    def sitofp(self, a: Operand, ty: Type = F64) -> str:
        """Emit a signed int -> float conversion."""
        return self._emit("sitofp", ty, (a,))

    def fptosi(self, a: Operand, ty: Type = I32) -> str:
        """Emit a float -> signed int conversion."""
        return self._emit("fptosi", ty, (a,))

    # -- comparison / select ---------------------------------------------------
    def icmp(self, pred: str, a: Operand, b: Operand) -> str:
        """Emit an integer comparison with predicate ``pred``."""
        return self._emit("icmp", I1, (a, b), pred=pred)

    def fcmp(self, pred: str, a: Operand, b: Operand) -> str:
        """Emit a float comparison with predicate ``pred``."""
        return self._emit("fcmp", I1, (a, b), pred=pred)

    def select(self, cond: Operand, a: Operand, b: Operand, ty: Type) -> str:
        """Emit a ``cond ? a : b`` select."""
        return self._emit("select", ty, (cond, a, b))

    # -- control flow ------------------------------------------------------------
    def br(self, cond: Operand, then_blk: str, else_blk: str) -> None:
        """Terminate the block with a conditional branch."""
        self.emit(Instr("br", None, VOID, (cond,), targets=(then_blk, else_blk)))

    def jmp(self, target: str) -> None:
        """Terminate the block with an unconditional jump."""
        self.emit(Instr("jmp", None, VOID, (), target=target))

    def ret(self, val: Optional[Operand] = None) -> None:
        """Terminate the block with a return."""
        args = (val,) if val is not None else ()
        self.emit(Instr("ret", None, VOID, args))

    def phi(self, ty: Type, incoming: List[Tuple[str, Operand]]) -> str:
        """Emit a phi node with the given incoming edges."""
        return self._emit("phi", ty, (), incoming=list(incoming))

    def call(self, callee: str, args: Sequence[Operand], ret_ty: Type = VOID) -> Optional[str]:
        """Emit a direct call; returns the result register or ``None``."""
        if ret_ty.kind == "void":
            self.emit(Instr("call", None, VOID, args, callee=callee))
            return None
        return self._emit("call", ret_ty, args, callee=callee)

    def output(self, val: Operand) -> None:
        """Append ``val`` to the program's observable output stream."""
        self.emit(Instr("output", None, VOID, (val,)))

    # -- structured helpers -------------------------------------------------------
    def counted_loop(
        self,
        start: Operand,
        end: Operand,
        body: Callable[["FunctionBuilder", str], None],
        step: int = 1,
        index_ty: Type = I32,
        tag: str = "loop",
    ) -> None:
        """Emit a front-end style counted loop ``for (i = start; i < end; i += step)``.

        The induction variable is kept in an ``alloca`` slot (as clang -O0
        would), so ``mem2reg`` has to run before any loop pass can reason
        about the loop.  ``body`` receives the builder and the register
        holding the current index (freshly loaded each iteration).  The
        builder is left positioned in the loop's exit block.
        """
        i_slot = self.alloca(index_ty, hint=f"{tag}.i")
        self.store(start, i_slot)
        header = self.fn.fresh_block_name(f"{tag}.header")
        body_bb = self.fn.fresh_block_name(f"{tag}.body")
        latch = self.fn.fresh_block_name(f"{tag}.latch")
        exit_bb = self.fn.fresh_block_name(f"{tag}.exit")
        self.jmp(header)

        self.block(header)
        i_val = self.load(index_ty, i_slot)
        cond = self.icmp("slt", i_val, end)
        self.br(cond, body_bb, exit_bb)

        self.block(body_bb)
        i_cur = self.load(index_ty, i_slot)
        body(self, i_cur)
        if self.current.terminator is None:
            self.jmp(latch)

        self.block(latch)
        i_next = self.add(self.load(index_ty, i_slot), Const(step, index_ty), index_ty)
        self.store(i_next, i_slot)
        self.jmp(header)

        self.block(exit_bb)

    def if_then(
        self,
        cond: Operand,
        then_body: Callable[["FunctionBuilder"], None],
        else_body: Optional[Callable[["FunctionBuilder"], None]] = None,
        tag: str = "if",
    ) -> None:
        """Emit ``if (cond) { then } [else { else }]``; continues in the merge block."""
        then_bb = self.fn.fresh_block_name(f"{tag}.then")
        merge_bb = self.fn.fresh_block_name(f"{tag}.end")
        else_bb = self.fn.fresh_block_name(f"{tag}.else") if else_body else merge_bb
        self.br(cond, then_bb, else_bb)

        self.block(then_bb)
        then_body(self)
        if self.current.terminator is None:
            self.jmp(merge_bb)

        if else_body is not None:
            self.block(else_bb)
            else_body(self)
            if self.current.terminator is None:
                self.jmp(merge_bb)

        self.block(merge_bb)
