"""Program analyses shared by the optimisation passes.

Provides CFG reachability, dominator trees, natural-loop detection with
trip-count pattern matching, use counting, and side-effect/purity queries.
These mirror the LLVM analyses the corresponding transformation passes
consume (DominatorTree, LoopInfo, ScalarEvolution's constant trip counts,
AAResults in a crude alloca-escape form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.compiler.ir import Const, Function, Instr, Module, Operand

__all__ = [
    "reachable_blocks",
    "dominators",
    "immediate_dominators",
    "dominates",
    "Loop",
    "find_loops",
    "constant_trip_count",
    "use_counts",
    "has_side_effects",
    "is_pure_instr",
    "function_may_write",
    "function_may_read",
    "escaped_allocas",
    "module_profile",
    "profile_delta",
    "rpo_order",
]

#: Opcodes that read memory.
_READS = frozenset({"load", "vload", "memcpy"})
#: Opcodes that write memory or otherwise have observable effects.
_WRITES = frozenset({"store", "vstore", "memset", "memcpy", "output"})


def reachable_blocks(fn: Function) -> Set[str]:
    """Block names reachable from the entry block."""
    entry = fn.entry.name
    seen = {entry}
    stack = [entry]
    while stack:
        for succ in fn.blocks[stack.pop()].successors():
            # dangling targets (deleted blocks referenced from unreachable
            # code) are skipped; the verifier flags them when reachable
            if succ not in seen and succ in fn.blocks:
                seen.add(succ)
                stack.append(succ)
    return seen


def rpo_order(fn: Function) -> List[str]:
    """Reverse post-order over reachable blocks (good pass iteration order)."""
    seen: Set[str] = set()
    post: List[str] = []

    entry = fn.entry.name
    stack: List[Tuple[str, int]] = [(entry, 0)]
    seen.add(entry)
    while stack:
        node, idx = stack[-1]
        succs = fn.blocks[node].successors()
        if idx < len(succs):
            stack[-1] = (node, idx + 1)
            nxt = succs[idx]
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, 0))
        else:
            post.append(node)
            stack.pop()
    return post[::-1]


def immediate_dominators(fn: Function) -> Dict[str, Optional[str]]:
    """Cooper-Harvey-Kennedy iterative idom computation over reachable blocks."""
    order = rpo_order(fn)
    index = {name: i for i, name in enumerate(order)}
    preds = fn.predecessors()
    entry = fn.entry.name
    idom: Dict[str, Optional[str]] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            candidates = [p for p in preds[node] if p in idom and p in index]
            if not candidates:
                continue
            new = candidates[0]
            for p in candidates[1:]:
                new = intersect(new, p)
            if idom.get(node) != new:
                idom[node] = new
                changed = True
    idom[entry] = None
    return idom


def dominators(fn: Function) -> Dict[str, Set[str]]:
    """Full dominator sets (block -> blocks that dominate it, inclusive)."""
    idom = immediate_dominators(fn)
    doms: Dict[str, Set[str]] = {}
    for node in idom:
        cur: Optional[str] = node
        chain: Set[str] = set()
        while cur is not None:
            chain.add(cur)
            cur = idom[cur]
        doms[node] = chain
    return doms


def dominates(doms: Dict[str, Set[str]], a: str, b: str) -> bool:
    """Whether block ``a`` dominates block ``b`` given precomputed sets."""
    return a in doms.get(b, set())


@dataclass
class Loop:
    """A natural loop: header plus the set of body blocks (header included).

    ``latches`` are blocks inside the loop branching back to the header;
    ``preheader`` is the unique out-of-loop predecessor of the header when one
    exists; ``exits`` are out-of-loop successor blocks.
    """

    header: str
    blocks: Set[str]
    latches: List[str] = field(default_factory=list)
    preheader: Optional[str] = None
    exits: Set[str] = field(default_factory=set)
    depth: int = 1
    parent: Optional["Loop"] = None

    def is_innermost(self, loops: Sequence["Loop"]) -> bool:
        """Whether no other loop nests strictly inside this one."""
        return not any(l is not self and l.header in self.blocks and l.blocks < self.blocks for l in loops)


def find_loops(fn: Function) -> List[Loop]:
    """Detect natural loops via back edges (edge u->h where h dominates u)."""
    doms = dominators(fn)
    reach = reachable_blocks(fn)
    preds = fn.predecessors()
    raw: Dict[str, Loop] = {}
    for name in reach:
        for succ in fn.blocks[name].successors():
            if succ in doms.get(name, set()):
                loop = raw.get(succ)
                if loop is None:
                    loop = Loop(header=succ, blocks={succ})
                    raw[succ] = loop
                loop.latches.append(name)
                # walk predecessors from the latch up to the header
                stack = [name]
                while stack:
                    blk = stack.pop()
                    if blk in loop.blocks:
                        continue
                    loop.blocks.add(blk)
                    stack.extend(p for p in preds[blk] if p in reach)

    loops = list(raw.values())
    for loop in loops:
        outside_preds = [p for p in preds[loop.header] if p not in loop.blocks]
        if len(outside_preds) == 1:
            loop.preheader = outside_preds[0]
        for blk in loop.blocks:
            for succ in fn.blocks[blk].successors():
                if succ not in loop.blocks:
                    loop.exits.add(succ)
    # nesting depth & parents (smallest enclosing loop)
    for loop in loops:
        enclosing = [l for l in loops if l is not loop and loop.blocks < l.blocks]
        if enclosing:
            loop.parent = min(enclosing, key=lambda l: len(l.blocks))
        loop.depth = 1 + sum(1 for l in enclosing)
    loops.sort(key=lambda l: -l.depth)  # innermost first
    return loops


def _as_int(v: Operand) -> Optional[int]:
    if isinstance(v, Const) and isinstance(v.value, int):
        return v.value
    return None


def constant_trip_count(fn: Function, loop: Loop) -> Optional[Tuple[str, int, int, int]]:
    """Pattern-match a canonical counted loop; return ``(iv, start, step, trips)``.

    Recognises the shape produced by ``mem2reg`` over the builder's
    ``counted_loop``: a header phi ``i = phi [start, pre], [next, latch]``, an
    in-loop update ``next = add i, step`` and a header-terminating
    ``icmp slt i, bound; br``.  Returns ``None`` when the loop is not in this
    canonical form or any quantity is non-constant — matching LLVM's SCEV
    giving up on non-affine loops.
    """
    header_blk = fn.blocks[loop.header]
    term = header_blk.terminator
    if term is None or term.op != "br":
        return None
    targets = term.attrs["targets"]
    # one target must be in-loop, the other the exit
    in_loop = [t for t in targets if t in loop.blocks]
    if len(in_loop) != 1:
        return None
    cond = term.args[0]
    if not isinstance(cond, str):
        return None
    defs = fn.defs()
    cmp_inst = defs.get(cond)
    if cmp_inst is None or cmp_inst.op != "icmp" or cmp_inst.attrs.get("pred") != "slt":
        return None
    iv, bound = cmp_inst.args
    if not isinstance(iv, str):
        return None
    bound_c = _as_int(bound)
    if bound_c is None:
        return None
    phi = defs.get(iv)
    if phi is None or phi.op != "phi":
        return None
    incoming = phi.attrs["incoming"]
    if len(incoming) != 2:
        return None
    start_c = None
    step_c = None
    for blk, val in incoming:
        if blk in loop.blocks:
            if not isinstance(val, str):
                return None
            upd = defs.get(val)
            if upd is None or upd.op != "add":
                return None
            a, b = upd.args
            if a == iv:
                step_c = _as_int(b)
            elif b == iv:
                step_c = _as_int(a)
            else:
                return None
        else:
            start_c = _as_int(val)
    if start_c is None or step_c is None or step_c <= 0:
        return None
    if bound_c <= start_c:
        return iv, start_c, step_c, 0
    trips = (bound_c - start_c + step_c - 1) // step_c
    # the exit condition must be the only exit for the count to be exact
    exit_targets = {t for t in targets if t not in loop.blocks}
    for blk in loop.blocks:
        if blk == loop.header:
            continue
        for succ in fn.blocks[blk].successors():
            if succ not in loop.blocks:
                return None  # extra exit: count not guaranteed
    if not exit_targets:
        return None
    return iv, start_c, step_c, trips


def use_counts(fn: Function) -> Dict[str, int]:
    """Number of uses of each register in the function."""
    counts: Dict[str, int] = {}
    for inst in fn.instructions():
        for reg in inst.reg_operands():
            counts[reg] = counts.get(reg, 0) + 1
    return counts


def is_pure_instr(inst: Instr, module: Optional[Module] = None) -> bool:
    """Whether re-executing/removing the instruction is unobservable.

    Calls are pure only when the callee carries the ``readnone`` attribute —
    this is the hook through which ``function-attrs`` unlocks GVN/LICM/DCE,
    the interaction the paper singles out (§3.4).
    """
    op = inst.op
    if op in _WRITES or op in TERMINATOR_LIKE:
        return False
    if op in _READS:
        return False
    if op == "call":
        if module is None:
            return False
        callee = module.functions.get(inst.attrs["callee"])
        return callee is not None and "readnone" in callee.attrs
    if op in ("sdiv", "srem", "udiv", "urem"):
        # may trap on divide-by-zero unless divisor is a non-zero constant
        divisor = inst.args[1]
        return isinstance(divisor, Const) and divisor.value != 0
    if op == "alloca":
        return False  # address identity matters
    return True


TERMINATOR_LIKE = frozenset({"br", "jmp", "ret", "unreachable"})


def has_side_effects(inst: Instr, module: Optional[Module] = None) -> bool:
    """Whether the instruction writes memory / produces output / may trap."""
    op = inst.op
    if op in _WRITES:
        return True
    if op == "call":
        if module is None:
            return True
        callee = module.functions.get(inst.attrs["callee"])
        if callee is None:
            return True
        return "readnone" not in callee.attrs and "readonly" not in callee.attrs
    if op in ("sdiv", "srem", "udiv", "urem"):
        divisor = inst.args[1]
        return not (isinstance(divisor, Const) and divisor.value != 0)
    return False


def function_may_write(fn: Function, module: Module, _seen: Optional[Set[str]] = None) -> bool:
    """Conservatively: does ``fn`` (transitively) write memory or output?"""
    if _seen is None:
        _seen = set()
    if fn.name in _seen:
        return False
    _seen.add(fn.name)
    for inst in fn.instructions():
        if inst.op in ("store", "vstore", "memset", "memcpy", "output"):
            return True
        if inst.op == "call":
            callee = module.functions.get(inst.attrs["callee"])
            if callee is None:
                return True
            if "readnone" in callee.attrs or "readonly" in callee.attrs:
                continue
            if function_may_write(callee, module, _seen):
                return True
    return False


def function_may_read(fn: Function, module: Module, _seen: Optional[Set[str]] = None) -> bool:
    """Conservatively: does ``fn`` (transitively) read memory?"""
    if _seen is None:
        _seen = set()
    if fn.name in _seen:
        return False
    _seen.add(fn.name)
    for inst in fn.instructions():
        if inst.op in ("load", "vload", "memcpy"):
            return True
        if inst.op == "call":
            callee = module.functions.get(inst.attrs["callee"])
            if callee is None:
                return True
            if "readnone" in callee.attrs:
                continue
            if function_may_read(callee, module, _seen):
                return True
    return False


def escaped_allocas(fn: Function) -> Set[str]:
    """Allocas whose address flows somewhere other than direct load/store.

    An alloca used only as the pointer operand of loads/stores (and as gep
    base, for arrays) is private; passing it to a call, storing the pointer
    itself, or returning it makes it *escaped* and unpromotable.
    """
    escaped: Set[str] = set()
    alloca_regs = {i.res for i in fn.instructions() if i.op == "alloca"}
    derived: Dict[str, str] = {}  # gep result -> root alloca
    for inst in fn.instructions():
        if inst.op == "gep" and isinstance(inst.args[0], str):
            base = inst.args[0]
            root = derived.get(base, base)
            if root in alloca_regs:
                derived[inst.res] = root  # type: ignore[index]

    def root_of(reg: str) -> Optional[str]:
        r = derived.get(reg, reg)
        return r if r in alloca_regs else None

    for inst in fn.instructions():
        for pos, operand in enumerate(inst.operands()):
            if not isinstance(operand, str):
                continue
            root = root_of(operand)
            if root is None:
                continue
            if inst.op == "load" or inst.op == "vload":
                continue
            if inst.op in ("store", "vstore") and pos == 1:
                continue  # pointer operand of store is fine
            if inst.op in ("store", "vstore") and pos == 0:
                escaped.add(root)  # the address itself is stored
            elif inst.op == "gep" and pos == 0:
                continue
            elif inst.op in ("memset",) and pos == 0:
                continue
            elif inst.op == "memcpy":
                continue  # reads/writes through it but does not leak further
            else:
                escaped.add(root)
    return escaped


def module_profile(module: Module) -> Dict[str, object]:
    """A cheap IR fingerprint: sizes and the instruction-mix histogram.

    One linear walk over the module — no CFG analyses — so a
    :class:`~repro.compiler.pass_manager.PassTrace` can afford to take it
    after *every* pass application.  Returns::

        {"instrs": int, "blocks": int,
         "functions": {fn_name: n_instrs},
         "mix": {opcode: count}}
    """
    mix: Dict[str, int] = {}
    functions: Dict[str, int] = {}
    blocks = 0
    for fn in module.functions.values():
        blocks += len(fn.blocks)
        n = 0
        for inst in fn.instructions():
            n += 1
            mix[inst.op] = mix.get(inst.op, 0) + 1
        functions[fn.name] = n
    return {
        "instrs": sum(functions.values()),
        "blocks": blocks,
        "functions": functions,
        "mix": mix,
    }


def profile_delta(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """Non-zero differences between two :func:`module_profile` snapshots.

    Scalar fields (``instrs``/``blocks``) always appear; the ``mix`` and
    ``functions`` sub-dicts keep only the opcodes/functions whose counts
    changed, so a no-op pass compresses to ``{"instrs": 0, "blocks": 0}``.
    """
    out: Dict[str, object] = {
        "instrs": int(after["instrs"]) - int(before["instrs"]),
        "blocks": int(after["blocks"]) - int(before["blocks"]),
    }
    for field_name in ("mix", "functions"):
        b = before[field_name]
        a = after[field_name]
        changed = {
            k: a.get(k, 0) - b.get(k, 0)
            for k in sorted(set(a) | set(b))
            if a.get(k, 0) != b.get(k, 0)
        }
        if changed:
            out[field_name] = changed
    return out
