"""Textual IR: printer and parser (an ``.ll``-like assembly format).

Round-trippable: ``parse_module(print_module(m))`` reconstructs an
equivalent module (verified by property tests over random programs).
Useful for golden tests, debugging pass pipelines (`print_module` after
each pass), and storing IR fixtures as text.

Format sketch::

    module @gsm_main {
      global @wdata : i16 x 64 = [1, -3, ...]
      func @main() -> i64 {
      entry:
        %slot.1 = alloca i64 x 1
        store i64 0, %slot.1
        %t.2 = add i32 %a, 5
        br i1 %cond, label %then, label %else
      then:
        ret i64 %t.9
      }
    }

Types print as ``i32``/``f64``/``ptr``/``<4 x i32>``; constants as
``<ty> <value>``; instruction attributes in braces where needed.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler.ir import (
    Block,
    Const,
    F32,
    F64,
    Function,
    GlobalVar,
    I1,
    I8,
    I16,
    I32,
    I64,
    Instr,
    Module,
    Operand,
    PTR,
    Type,
    VOID,
    vec,
)

__all__ = ["print_module", "parse_module", "print_function", "IRParseError"]


class IRParseError(ValueError):
    """Raised on malformed textual IR."""


# ---------------------------------------------------------------------------
# printing
# ---------------------------------------------------------------------------

_SCALARS = {"i1": I1, "i8": I8, "i16": I16, "i32": I32, "i64": I64, "f32": F32, "f64": F64,
            "ptr": PTR, "void": VOID}


def _ty_str(ty: Type) -> str:
    if ty.is_vec:
        return f"<{ty.lanes} x {_ty_str(ty.elem)}>"
    return repr(ty)


def _reg_str(name: str) -> str:
    """Registers always print with a %-sigil (parameters may lack one)."""
    return name if name.startswith("%") else "%" + name


def _val_str(v: Operand) -> str:
    if isinstance(v, Const):
        if isinstance(v.value, tuple):
            inner = ", ".join(str(x) for x in v.value)
            return f"{_ty_str(v.ty)} [{inner}]"
        return f"{_ty_str(v.ty)} {v.value}"
    return _reg_str(v)


def _attr_str(k: str, v) -> str:
    if isinstance(v, Type):
        return f"{k}={_ty_str(v)}"
    if isinstance(v, tuple):
        return f"{k}=({', '.join(str(x) for x in v)})"
    return f"{k}={v}"


def _instr_str(inst: Instr) -> str:
    op = inst.op
    if op == "phi":
        inc = ", ".join(f"[{b} -> {_val_str(v)}]" for b, v in inst.attrs["incoming"])
        return f"{_reg_str(inst.res)} = phi {_ty_str(inst.ty)} {inc}"
    if op == "br":
        t, f = inst.attrs["targets"]
        return f"br {_val_str(inst.args[0])}, label {t}, label {f}"
    if op == "jmp":
        return f"jmp label {inst.attrs['target']}"
    if op == "ret":
        return f"ret {_val_str(inst.args[0])}" if inst.args else "ret void"
    if op == "call":
        args = ", ".join(_val_str(a) for a in inst.args)
        head = f"{_reg_str(inst.res)} = call {_ty_str(inst.ty)} " if inst.res else "call void "
        return f"{head}@{inst.attrs['callee']}({args})"
    if op == "alloca":
        return (
            f"{_reg_str(inst.res)} = alloca {_ty_str(inst.attrs['elem_ty'])} x "
            f"{inst.attrs.get('count', 1)}"
        )
    if op == "gaddr":
        return f"{_reg_str(inst.res)} = gaddr @{inst.attrs['name']}"
    parts: List[str] = []
    if inst.res is not None:
        parts.append(f"{_reg_str(inst.res)} = {op} {_ty_str(inst.ty)}")
    else:
        parts.append(op)
    if inst.args:
        parts.append(", ".join(_val_str(a) for a in inst.args))
    extra = []
    for k in sorted(inst.attrs):
        extra.append(_attr_str(k, inst.attrs[k]))
    if extra:
        parts.append("{" + ", ".join(extra) + "}")
    return " ".join(parts)


def print_function(fn: Function) -> str:
    """Render one function as textual IR."""
    params = ", ".join(f"{_ty_str(t)} {_reg_str(p)}" for p, t in fn.params)
    attrs = (" " + " ".join(sorted(fn.attrs))) if fn.attrs else ""
    out = [f"func @{fn.name}({params}) -> {_ty_str(fn.ret_ty)}{attrs} {{"]
    for bname, blk in fn.blocks.items():
        out.append(f"{bname}:")
        for inst in blk.instrs:
            out.append(f"  {_instr_str(inst)}")
    out.append("}")
    return "\n".join(out)


def print_module(module: Module) -> str:
    """Render a module as textual IR (round-trippable)."""
    out = [f"module @{module.name} {{"]
    for gv in module.globals.values():
        konst = " const" if gv.const else ""
        init = ", ".join(str(v) for v in gv.init)
        out.append(
            f"global @{gv.name} : {_ty_str(gv.elem_ty)} x {gv.count}{konst} = [{init}]"
        )
    for fn in module.functions.values():
        out.append(print_function(fn))
    out.append("}")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------

_VEC_RE = re.compile(r"^<(\d+) x ([a-z0-9]+)>$")


def _parse_ty(s: str) -> Type:
    s = s.strip()
    if s in _SCALARS:
        return _SCALARS[s]
    m = _VEC_RE.match(s)
    if m:
        return vec(_parse_ty(m.group(2)), int(m.group(1)))
    raise IRParseError(f"unknown type {s!r}")


def _parse_number(s: str):
    s = s.strip()
    try:
        return int(s)
    except ValueError:
        return float(s)


def _split_args(s: str) -> List[str]:
    """Split a comma-separated operand list, respecting <>, [] and ()."""
    out, depth, cur = [], 0, []
    for ch in s:
        if ch in "<[(":
            depth += 1
        elif ch in ">])":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


def _parse_operand(s: str) -> Operand:
    s = s.strip()
    if s.startswith("%"):
        return s
    # typed constant: "<ty> <value>" or "<ty> [v, v, ...]"
    m = re.match(r"^(<\d+ x [a-z0-9]+>|[a-z]\w*)\s+(.+)$", s)
    if not m:
        raise IRParseError(f"cannot parse operand {s!r}")
    ty = _parse_ty(m.group(1))
    rest = m.group(2).strip()
    if rest.startswith("["):
        vals = tuple(_parse_number(x) for x in rest[1:-1].split(","))
        return Const(vals, ty)
    return Const(_parse_number(rest), ty)


def _parse_attrs(s: str) -> Dict[str, object]:
    attrs: Dict[str, object] = {}
    for item in _split_args(s):
        k, _, v = item.partition("=")
        k, v = k.strip(), v.strip()
        if v.startswith("(") and v.endswith(")"):
            attrs[k] = tuple(x.strip() for x in v[1:-1].split(","))
        elif re.match(r"^-?\d+$", v):
            attrs[k] = int(v)
        else:
            try:
                attrs[k] = _parse_ty(v)
            except IRParseError:
                attrs[k] = v
    return attrs


def _parse_instr(line: str) -> Instr:
    line = line.strip()
    # control flow forms
    if line.startswith("br "):
        m = re.match(r"^br (.+), label ([\w.%-]+), label ([\w.%-]+)$", line)
        if not m:
            raise IRParseError(f"bad br: {line!r}")
        return Instr("br", None, VOID, (_parse_operand(m.group(1)),),
                     targets=(m.group(2), m.group(3)))
    if line.startswith("jmp "):
        m = re.match(r"^jmp label ([\w.%-]+)$", line)
        if not m:
            raise IRParseError(f"bad jmp: {line!r}")
        return Instr("jmp", None, VOID, (), target=m.group(1))
    if line == "ret void":
        return Instr("ret", None, VOID, ())
    if line.startswith("ret "):
        return Instr("ret", None, VOID, (_parse_operand(line[4:]),))
    if line == "unreachable":
        return Instr("unreachable")
    if line.startswith("call void @"):
        m = re.match(r"^call void @([\w.$-]+)\((.*)\)$", line)
        if not m:
            raise IRParseError(f"bad call: {line!r}")
        args = tuple(_parse_operand(a) for a in _split_args(m.group(2)))
        return Instr("call", None, VOID, args, callee=m.group(1))
    if not line.startswith("%") and " " in line:
        # void instruction with operands, e.g. store / vstore / memset / output
        op, rest = line.split(" ", 1)
        attrs = {}
        am = re.search(r"\{(.*)\}$", rest)
        if am:
            attrs = _parse_attrs(am.group(1))
            rest = rest[: am.start()].strip()
        args = tuple(_parse_operand(a) for a in _split_args(rest)) if rest else ()
        return Instr(op, None, VOID, args, **attrs)

    # result-producing forms: "%res = op ..."
    m = re.match(r"^(%[\w.$-]+) = (\w[\w-]*) (.+)$", line)
    if not m:
        raise IRParseError(f"cannot parse instruction {line!r}")
    res, op, rest = m.group(1), m.group(2), m.group(3)
    if op == "phi":
        tm = re.match(r"^(<\d+ x [a-z0-9]+>|[a-z]\w*)\s+(.*)$", rest)
        ty = _parse_ty(tm.group(1))
        incoming = []
        for part in re.findall(r"\[([^\]]*->[^\]]*)\]", tm.group(2)):
            blk, _, val = part.partition("->")
            incoming.append((blk.strip(), _parse_operand(val.strip())))
        return Instr("phi", res, ty, (), incoming=incoming)
    if op == "call":
        cm = re.match(r"^(<\d+ x [a-z0-9]+>|[a-z]\w*) @([\w.$-]+)\((.*)\)$", rest)
        if not cm:
            raise IRParseError(f"bad call: {line!r}")
        ty = _parse_ty(cm.group(1))
        args = tuple(_parse_operand(a) for a in _split_args(cm.group(3)))
        return Instr("call", res, ty, args, callee=cm.group(2))
    if op == "alloca":
        am = re.match(r"^(<\d+ x [a-z0-9]+>|[a-z]\w*) x (\d+)$", rest)
        if not am:
            raise IRParseError(f"bad alloca: {line!r}")
        return Instr("alloca", res, PTR, (), elem_ty=_parse_ty(am.group(1)),
                     count=int(am.group(2)))
    if op == "gaddr":
        gm = re.match(r"^@([\w.$-]+)$", rest)
        if not gm:
            raise IRParseError(f"bad gaddr: {line!r}")
        return Instr("gaddr", res, PTR, (), name=gm.group(1))
    # generic: "<ty> [args] [{attrs}]"
    attrs = {}
    am = re.search(r"\{(.*)\}$", rest)
    if am:
        attrs = _parse_attrs(am.group(1))
        rest = rest[: am.start()].strip()
    tm = re.match(r"^(<\d+ x [a-z0-9]+>|[a-z]\w*)(?:\s+(.*))?$", rest)
    if not tm:
        raise IRParseError(f"cannot parse {line!r}")
    ty = _parse_ty(tm.group(1))
    arg_text = tm.group(2) or ""
    args = tuple(_parse_operand(a) for a in _split_args(arg_text)) if arg_text else ()
    return Instr(op, res, ty, args, **attrs)


_FUNC_RE = re.compile(r"^func @([\w.$-]+)\((.*)\) -> (<\d+ x [a-z0-9]+>|[a-z]\w*)((?: \w+)*) \{$")
_GLOBAL_RE = re.compile(
    r"^global @([\w.$-]+) : (<\d+ x [a-z0-9]+>|[a-z]\w*) x (\d+)( const)? = \[(.*)\]$"
)


def parse_module(text: str) -> Module:
    """Parse textual IR produced by :func:`print_module`."""
    lines = [ln.rstrip() for ln in text.splitlines() if ln.strip()]
    if not lines or not lines[0].startswith("module @"):
        raise IRParseError("missing module header")
    mname = lines[0][len("module @"):].split()[0].rstrip("{").strip()
    module = Module(mname)
    i = 1
    while i < len(lines):
        line = lines[i].strip()
        if line == "}":
            i += 1
            continue
        gm = _GLOBAL_RE.match(line)
        if gm:
            init = [
                _parse_number(x) for x in gm.group(5).split(",") if x.strip()
            ]
            module.add_global(
                GlobalVar(gm.group(1), _parse_ty(gm.group(2)), init, bool(gm.group(4)))
            )
            i += 1
            continue
        fm = _FUNC_RE.match(line)
        if fm:
            params = []
            if fm.group(2).strip():
                for p in _split_args(fm.group(2)):
                    ty_s, name = p.rsplit(" ", 1)
                    params.append((name.strip(), _parse_ty(ty_s)))
            fn = Function(fm.group(1), params, _parse_ty(fm.group(3)))
            for a in fm.group(4).split():
                fn.attrs.add(a)
            i += 1
            cur_block: Optional[Block] = None
            while i < len(lines) and lines[i].strip() != "}":
                raw = lines[i]
                if not raw.startswith(" ") and raw.rstrip().endswith(":"):
                    cur_block = fn.add_block(raw.strip()[:-1])
                else:
                    if cur_block is None:
                        raise IRParseError(f"instruction outside block: {raw!r}")
                    cur_block.instrs.append(_parse_instr(raw))
                i += 1
            i += 1  # consume closing brace
            # restore the fresh-name counter past any parsed %name.N
            max_n = 0
            for inst in fn.instructions():
                for name in [inst.res] + [a for a in inst.args if isinstance(a, str)]:
                    if isinstance(name, str):
                        m2 = re.search(r"\.(\d+)$", name)
                        if m2:
                            max_n = max(max_n, int(m2.group(1)))
            fn._counter = max_n + 1
            module.add_function(fn)
            continue
        raise IRParseError(f"cannot parse line: {line!r}")
    return module
