"""Optimisation passes.

Importing this package registers every pass with
:data:`repro.compiler.pass_manager.registry`.  The registry's key set is the
phase-ordering search alphabet (Table 5.3 in the paper).
"""

from repro.compiler.passes import (  # noqa: F401  (import for registration side effects)
    dce,
    gvn,
    instcombine,
    ipo,
    loops,
    mem2reg,
    memcpyopt,
    simplifycfg,
    vectorize,
)

from repro.compiler.pass_manager import registry

__all__ = ["registry"]
