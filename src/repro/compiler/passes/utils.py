"""Shared rewrite machinery used by several passes."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.compiler.analysis import reachable_blocks
from repro.compiler.ir import Block, Const, Function, Instr, Operand

__all__ = [
    "resolve_chain",
    "remove_trivial_phis",
    "clone_blocks",
    "ensure_preheader",
    "delete_instrs",
    "fold_int_binop",
    "constant_of",
]


def resolve_chain(mapping: Dict[str, Operand], value: Operand) -> Operand:
    """Follow ``mapping`` until a fixed point (handles rewrite chains)."""
    seen = set()
    while isinstance(value, str) and value in mapping:
        if value in seen:  # defensive: cyclic mapping
            break
        seen.add(value)
        value = mapping[value]
    return value


def remove_trivial_phis(fn: Function) -> int:
    """Delete phis whose incoming values are all identical (or self).

    Returns the number of phis removed.  Iterates to a fixed point because
    removing one phi can make another trivial.
    """
    removed = 0
    while True:
        mapping: Dict[str, Operand] = {}
        for blk in fn.blocks.values():
            for inst in blk.phis():
                vals = {v for _, v in inst.attrs["incoming"]}
                vals.discard(inst.res)
                if len(vals) == 1:
                    mapping[inst.res] = next(iter(vals))
                elif not vals:  # all edges pruned: value is undefined, use zero
                    mapping[inst.res] = Const(0.0 if inst.ty.is_float else 0, inst.ty)
        if not mapping:
            return removed
        resolved = {k: resolve_chain(mapping, v) for k, v in mapping.items()}
        for blk in fn.blocks.values():
            blk.instrs = [i for i in blk.instrs if not (i.op == "phi" and i.res in resolved)]
        fn.replace_all_uses(resolved)
        removed += len(resolved)


def delete_instrs(fn: Function, doomed: Set[int]) -> int:
    """Remove instructions whose ``id()`` is in ``doomed``; returns count."""
    n = 0
    for blk in fn.blocks.values():
        before = len(blk.instrs)
        blk.instrs = [i for i in blk.instrs if id(i) not in doomed]
        n += before - len(blk.instrs)
    return n


def clone_blocks(
    fn: Function,
    block_names: Sequence[str],
    suffix: str,
    value_map: Optional[Dict[str, Operand]] = None,
) -> Tuple[Dict[str, str], Dict[str, Operand]]:
    """Clone a region of blocks into ``fn`` with fresh registers.

    Returns ``(block_map, reg_map)``.  Branches *within* the region are
    retargeted to the clones; branches leaving the region keep their targets.
    ``value_map`` seeds operand substitutions (e.g. mapping the induction
    variable of an unrolled iteration).  Phi incoming-block labels inside the
    region are remapped as well; incoming edges from outside the region are
    preserved (callers usually fix these up).
    """
    region = set(block_names)
    block_map = {b: fn.fresh_block_name(f"{b}.{suffix}") for b in block_names}
    reg_map: Dict[str, Operand] = dict(value_map or {})
    # first pass: allocate fresh result registers
    for bname in block_names:
        for inst in fn.blocks[bname].instrs:
            if inst.res is not None:
                reg_map[inst.res] = fn.fresh(inst.res.lstrip("%") + "." + suffix)
    # second pass: clone and rewrite
    for bname in block_names:
        src = fn.blocks[bname]
        dst = fn.add_block(block_map[bname])
        for inst in src.instrs:
            ninst = inst.clone()
            if ninst.res is not None:
                ninst.res = reg_map[ninst.res]  # type: ignore[assignment]
            ninst.replace_uses(reg_map)
            if ninst.op == "br":
                ninst.attrs["targets"] = tuple(
                    block_map.get(t, t) for t in ninst.attrs["targets"]
                )
            elif ninst.op == "jmp":
                ninst.attrs["target"] = block_map.get(ninst.attrs["target"], ninst.attrs["target"])
            elif ninst.op == "phi":
                ninst.attrs["incoming"] = [
                    (block_map.get(b, b), v) for b, v in ninst.attrs["incoming"]
                ]
            dst.instrs.append(ninst)
    return block_map, reg_map


def ensure_preheader(fn: Function, header: str, loop_blocks: Set[str]) -> str:
    """Guarantee the loop at ``header`` has a dedicated preheader block.

    If the header already has exactly one out-of-loop predecessor that ends
    in an unconditional jump, reuse it; otherwise split the incoming edges
    through a fresh block.  Returns the preheader's name.
    """
    preds = fn.predecessors()[header]
    outside = [p for p in preds if p not in loop_blocks]
    if len(outside) == 1:
        cand = fn.blocks[outside[0]]
        term = cand.terminator
        if term is not None and term.op == "jmp":
            return outside[0]
    pre = fn.fresh_block_name(f"{header}.preheader")
    blk = fn.add_block(pre)
    blk.instrs.append(Instr("jmp", None, target=header))
    for p in outside:
        fn.blocks[p].terminator.retarget(header, pre)
    # phi incoming edges from outside now come via the preheader
    hdr = fn.blocks[header]
    for inst in hdr.phis():
        new_inc = []
        merged: List[Operand] = []
        for b, v in inst.attrs["incoming"]:
            if b in outside:
                merged.append((b, v))
            else:
                new_inc.append((b, v))
        if merged:
            if len(merged) == 1:
                new_inc.append((pre, merged[0][1]))
            else:
                # need a phi in the preheader merging the outside values
                phi = Instr("phi", fn.fresh("pre.phi"), inst.ty, (), incoming=merged)
                blk.instrs.insert(0, phi)
                new_inc.append((pre, phi.res))
        inst.attrs["incoming"] = new_inc
    return pre


def fold_int_binop(op: str, a: int, b: int, bits: int) -> Optional[int]:
    """Constant-fold an integer binop; ``None`` when folding would trap."""
    from repro.machine.interp import InterpError, _int_bin

    try:
        return _int_bin(op, a, b, bits)
    except InterpError:
        return None


def constant_of(v: Operand) -> Optional[object]:
    """The Python value of a constant operand, else ``None``."""
    return v.value if isinstance(v, Const) else None
