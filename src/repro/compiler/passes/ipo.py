"""Interprocedural passes.

``inline`` and ``function-attrs`` are the headline interactions here:
inlining exposes intra-procedural optimisation, while ``function-attrs``
marks pure callees ``readnone`` — a transformation invisible to IR-feature
code characterisations (the paper's §3.4 critique) but clearly visible in
compilation statistics.

Functions carry an ``internal`` attribute (module-private linkage); only
internal functions may have their signature changed or be deleted, since
other modules may call exported ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.analysis import function_may_read, function_may_write, use_counts
from repro.compiler.ir import Block, Const, Function, Instr, Module, Operand
from repro.compiler.pass_manager import ModulePass, TargetInfo, register
from repro.compiler.passes.utils import remove_trivial_phis
from repro.compiler.statistics import StatsCollector

__all__ = [
    "Inliner",
    "FunctionAttrs",
    "IPSCCP",
    "DeadArgElim",
    "ArgPromotion",
    "GlobalOpt",
    "GlobalDCE",
    "ConstMerge",
    "MergeFunc",
    "TailCallElim",
]


def _may_trap(fn: Function, module: Module, _seen: Optional[Set[str]] = None) -> bool:
    if _seen is None:
        _seen = set()
    if fn.name in _seen:
        return False
    _seen.add(fn.name)
    for inst in fn.instructions():
        if inst.op in ("sdiv", "srem", "udiv", "urem", "fdiv"):
            d = inst.args[1]
            if not (isinstance(d, Const) and d.value != 0):
                return True
        if inst.op == "unreachable":
            return True
        if inst.op == "call":
            callee = module.functions.get(inst.attrs["callee"])
            if callee is None or _may_trap(callee, module, _seen):
                return True
    return False


@register
class FunctionAttrs(ModulePass):
    """Infer ``readnone``/``readonly`` attributes bottom-up."""

    name = "function-attrs"

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        changed = False
        # iterate to a fixed point so attribute inference flows up call chains
        for _ in range(3):
            round_changed = False
            for fn in module.functions.values():
                if "readnone" in fn.attrs:
                    continue
                writes = function_may_write(fn, module)
                reads = function_may_read(fn, module)
                traps = _may_trap(fn, module)
                if not writes and not reads and not traps:
                    fn.attrs.add("readnone")
                    stats.bump(self.name, "NumReadNone")
                    round_changed = True
                elif not writes and "readonly" not in fn.attrs:
                    fn.attrs.add("readonly")
                    stats.bump(self.name, "NumReadOnly")
                    round_changed = True
            if not round_changed:
                break
            changed = True
        return changed


@register
class Inliner(ModulePass):
    """Inline small same-module callees into their callers."""

    name = "inline"
    max_inlines = 64
    max_caller_size = 2000

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        changed = False
        for _ in range(self.max_inlines):  # budget bounds mutual recursion
            site = self._find_site(module, target)
            if site is None:
                break
            caller, bname, idx = site
            self._inline_site(module, caller, bname, idx, stats)
            changed = True
        return changed

    def _find_site(self, module: Module, target: TargetInfo):
        for caller in module.functions.values():
            if caller.num_instrs() > self.max_caller_size:
                continue
            for bname, blk in caller.blocks.items():
                for idx, inst in enumerate(blk.instrs):
                    if inst.op != "call":
                        continue
                    callee = module.functions.get(inst.attrs["callee"])
                    if callee is None or callee.name == caller.name:
                        continue
                    if "noinline" in callee.attrs:
                        continue
                    if self._calls_self(callee):
                        continue
                    cost = callee.num_instrs()
                    if "alwaysinline" in callee.attrs or cost <= target.inline_threshold:
                        return caller, bname, idx
        return None

    @staticmethod
    def _calls_self(fn: Function) -> bool:
        return any(
            i.op == "call" and i.attrs["callee"] == fn.name for i in fn.instructions()
        )

    def _inline_site(
        self, module: Module, caller: Function, bname: str, idx: int, stats: StatsCollector
    ) -> None:
        blk = caller.blocks[bname]
        call = blk.instrs[idx]
        callee = module.functions[call.attrs["callee"]]

        # clone callee body into the caller with fresh names
        bmap = {b: caller.fresh_block_name(f"inl.{callee.name}.{b}") for b in callee.blocks}
        rmap: Dict[str, Operand] = {}
        for pname, _ty in callee.params:
            rmap[pname] = None  # placeholder, filled below
        for (pname, _ty), arg in zip(callee.params, call.args):
            rmap[pname] = arg
        for cblk in callee.blocks.values():
            for inst in cblk.instrs:
                if inst.res is not None:
                    rmap[inst.res] = caller.fresh(f"inl.{inst.res.lstrip('%')}")

        cont_name = caller.fresh_block_name(f"{bname}.cont")
        ret_edges: List[Tuple[str, Operand]] = []
        for cb_name, cblk in callee.blocks.items():
            nblk = caller.add_block(bmap[cb_name])
            for inst in cblk.instrs:
                ninst = inst.clone()
                if ninst.res is not None:
                    ninst.res = rmap[ninst.res]  # type: ignore[assignment]
                ninst.replace_uses({k: v for k, v in rmap.items() if v is not None})
                if ninst.op == "br":
                    ninst.attrs["targets"] = tuple(bmap[t] for t in ninst.attrs["targets"])
                elif ninst.op == "jmp":
                    ninst.attrs["target"] = bmap[ninst.attrs["target"]]
                elif ninst.op == "phi":
                    ninst.attrs["incoming"] = [
                        (bmap[b], v) for b, v in ninst.attrs["incoming"]
                    ]
                elif ninst.op == "ret":
                    val = ninst.args[0] if ninst.args else None
                    ret_edges.append((bmap[cb_name], val))
                    ninst = Instr("jmp", None, target=cont_name)
                nblk.instrs.append(ninst)

        # split the caller block
        cont = caller.add_block(cont_name)
        cont.instrs = blk.instrs[idx + 1 :]
        blk.instrs = blk.instrs[:idx]
        blk.instrs.append(Instr("jmp", None, target=bmap[callee.entry.name]))

        # successors of the original block now hang off the continuation
        for sname in cont.successors():
            if sname in caller.blocks:
                for phi in caller.blocks[sname].phis():
                    phi.attrs["incoming"] = [
                        (cont_name if b == bname else b, v) for b, v in phi.attrs["incoming"]
                    ]

        # return value plumbing
        if call.res is not None:
            vals = [v for _, v in ret_edges]
            if len(ret_edges) == 1:
                caller.replace_all_uses({call.res: vals[0]})
            else:
                phi = Instr("phi", caller.fresh("inl.ret"), call.ty, (), incoming=ret_edges)
                cont.instrs.insert(0, phi)
                caller.replace_all_uses({call.res: phi.res})
        stats.bump(self.name, "NumInlined")
        remove_trivial_phis(caller)


@register
class IPSCCP(ModulePass):
    """Propagate constants through arguments of internal functions."""

    name = "ipsccp"

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        # collect, per function, the set of values each argument position sees
        seen: Dict[str, List[Set]] = {}
        for fn in module.functions.values():
            for inst in fn.instructions():
                if inst.op != "call":
                    continue
                callee = module.functions.get(inst.attrs["callee"])
                if callee is None or "internal" not in callee.attrs:
                    continue
                slots = seen.setdefault(callee.name, [set() for _ in callee.params])
                for k, arg in enumerate(inst.args):
                    if isinstance(arg, Const):
                        slots[k].add((arg.value, arg.ty))
                    else:
                        slots[k].add(("<nonconst>",))
        changed = False
        for fname, slots in seen.items():
            fn = module.functions[fname]
            mapping: Dict[str, Operand] = {}
            for (pname, pty), values in zip(fn.params, slots):
                if len(values) == 1:
                    val = next(iter(values))
                    if val != ("<nonconst>",):
                        mapping[pname] = Const(val[0], val[1])
            if mapping:
                fn.replace_all_uses(mapping)
                stats.bump(self.name, "IPNumArgsElimed", len(mapping))
                changed = True
        return changed


@register
class DeadArgElim(ModulePass):
    """Drop unused parameters of internal functions (updating call sites)."""

    name = "deadargelim"

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        changed = False
        for fn in list(module.functions.values()):
            if "internal" not in fn.attrs:
                continue
            used: Set[str] = set()
            for inst in fn.instructions():
                used.update(inst.reg_operands())
            dead_idx = [k for k, (p, _t) in enumerate(fn.params) if p not in used]
            if not dead_idx:
                continue
            dead_set = set(dead_idx)
            fn.params = [p for k, p in enumerate(fn.params) if k not in dead_set]
            for other in module.functions.values():
                for inst in other.instructions():
                    if inst.op == "call" and inst.attrs["callee"] == fn.name:
                        inst.args = [a for k, a in enumerate(inst.args) if k not in dead_set]
            stats.bump(self.name, "NumArgumentsEliminated", len(dead_idx))
            changed = True
        return changed


@register
class ArgPromotion(ModulePass):
    """Pass the pointee by value when a pointer argument is only loaded once
    unconditionally at function entry."""

    name = "argpromotion"

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        changed = False
        for fn in list(module.functions.values()):
            if "internal" not in fn.attrs:
                continue
            for k, (pname, pty) in enumerate(list(fn.params)):
                if not pty.is_ptr:
                    continue
                uses = [
                    (bname, inst)
                    for bname, blk in fn.blocks.items()
                    for inst in blk.instrs
                    if pname in inst.reg_operands()
                ]
                if len(uses) != 1:
                    continue
                bname, load = uses[0]
                if load.op != "load" or bname != fn.entry.name or load.args[0] != pname:
                    continue
                # the pointee must be unchanged between call site and load:
                # require no side effects before the load in the entry block
                from repro.compiler.analysis import has_side_effects

                entry_instrs = fn.entry.instrs
                load_pos = next(i for i, x in enumerate(entry_instrs) if x is load)
                if any(has_side_effects(x, module) for x in entry_instrs[:load_pos]):
                    continue
                # rewrite the callee: the param becomes the loaded value
                fn.params[k] = (pname, load.ty)
                fn.blocks[bname].instrs = [i for i in fn.blocks[bname].instrs if i is not load]
                fn.replace_all_uses({load.res: pname})
                # rewrite call sites: load before the call
                for other in module.functions.values():
                    for blk in other.blocks.values():
                        new_instrs: List[Instr] = []
                        for inst in blk.instrs:
                            if inst.op == "call" and inst.attrs["callee"] == fn.name:
                                ptr_arg = inst.args[k]
                                lv = Instr("load", other.fresh("argpromo"), load.ty, (ptr_arg,))
                                new_instrs.append(lv)
                                inst.args[k] = lv.res
                            new_instrs.append(inst)
                        blk.instrs = new_instrs
                stats.bump(self.name, "NumArgumentsPromoted")
                changed = True
        return changed


@register
class GlobalOpt(ModulePass):
    """Constify never-written globals; delete unreferenced internal ones."""

    name = "globalopt"

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        changed = False
        # which globals does this module take the address of, and how are
        # those addresses used?
        addr_regs: Dict[str, Set[str]] = {}
        for fn in module.functions.values():
            for inst in fn.instructions():
                if inst.op == "gaddr":
                    addr_regs.setdefault(inst.attrs["name"], set()).add(inst.res)
        for gv in list(module.globals.values()):
            regs = addr_regs.get(gv.name, set())
            if not regs:
                if not gv.const:
                    # unreferenced in this module; keep exported data intact
                    continue
                del module.globals[gv.name]
                stats.bump(self.name, "NumDeleted")
                changed = True
                continue
            if gv.const:
                continue
            if not self._may_be_written(module, regs):
                gv.const = True
                stats.bump(self.name, "NumMarked")
                changed = True
        return changed

    @staticmethod
    def _may_be_written(module: Module, roots: Set[str]) -> bool:
        for fn in module.functions.values():
            derived = set(r for r in roots)
            grew = True
            while grew:
                grew = False
                for inst in fn.instructions():
                    if inst.op == "gep" and isinstance(inst.args[0], str) and inst.args[0] in derived:
                        if inst.res not in derived:
                            derived.add(inst.res)
                            grew = True
            for inst in fn.instructions():
                if inst.op in ("store", "vstore") and isinstance(inst.args[1], str) and inst.args[1] in derived:
                    return True
                if inst.op == "memset" and isinstance(inst.args[0], str) and inst.args[0] in derived:
                    return True
                if inst.op == "memcpy" and isinstance(inst.args[0], str) and inst.args[0] in derived:
                    return True
                if inst.op == "call":
                    for a in inst.args:
                        if isinstance(a, str) and a in derived:
                            return True  # address escapes into a call
        return False


@register
class GlobalDCE(ModulePass):
    """Delete internal functions unreachable from any exported function."""

    name = "globaldce"

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        roots = [f.name for f in module.functions.values() if "internal" not in f.attrs]
        live: Set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in live:
                continue
            live.add(name)
            fn = module.functions.get(name)
            if fn is None:
                continue
            for inst in fn.instructions():
                if inst.op == "call":
                    stack.append(inst.attrs["callee"])
        dead = [n for n in module.functions if n not in live]
        for n in dead:
            del module.functions[n]
        stats.bump(self.name, "NumFunctions", len(dead))
        return bool(dead)


@register
class ConstMerge(ModulePass):
    """Merge identical constant globals."""

    name = "constmerge"

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        canon: Dict[Tuple, str] = {}
        renames: Dict[str, str] = {}
        for gv in list(module.globals.values()):
            if not gv.const:
                continue
            key = (gv.elem_ty, tuple(gv.init))
            if key in canon:
                renames[gv.name] = canon[key]
                del module.globals[gv.name]
            else:
                canon[key] = gv.name
        if not renames:
            return False
        for fn in module.functions.values():
            for inst in fn.instructions():
                if inst.op == "gaddr" and inst.attrs["name"] in renames:
                    inst.attrs["name"] = renames[inst.attrs["name"]]
        stats.bump(self.name, "NumMerged", len(renames))
        return True


def _structural_signature(fn: Function) -> Tuple:
    """Canonical form for function-equivalence hashing."""
    reg_ids: Dict[str, int] = {}

    def rid(v) -> object:
        if isinstance(v, Const):
            return ("c", v.value, repr(v.ty))
        if v not in reg_ids:
            reg_ids[v] = len(reg_ids)
        return ("r", reg_ids[v])

    blk_ids = {name: k for k, name in enumerate(fn.blocks)}
    sig: List = [tuple(repr(t) for _, t in fn.params), repr(fn.ret_ty)]
    for p, _t in fn.params:
        rid(p)
    for name, blk in fn.blocks.items():
        row: List = [blk_ids[name]]
        for inst in blk.instrs:
            entry: List = [inst.op, repr(inst.ty)]
            entry.extend(rid(a) for a in inst.args)
            if inst.res is not None:
                entry.append(("def", rid(inst.res)))
            for k in sorted(inst.attrs):
                v = inst.attrs[k]
                if k in ("targets",):
                    entry.append(tuple(blk_ids.get(t, t) for t in v))
                elif k == "target":
                    entry.append(blk_ids.get(v, v))
                elif k == "incoming":
                    entry.append(tuple((blk_ids.get(b, b), rid(x)) for b, x in v))
                elif k == "elem_ty":
                    entry.append(repr(v))
                else:
                    entry.append((k, repr(v)))
            row.append(tuple(entry))
        sig.append(tuple(row))
    return tuple(sig)


@register
class MergeFunc(ModulePass):
    """Deduplicate structurally identical functions."""

    name = "mergefunc"

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        by_sig: Dict[Tuple, str] = {}
        renames: Dict[str, str] = {}
        for fn in module.functions.values():
            sig = _structural_signature(fn)
            if sig in by_sig:
                if "internal" in fn.attrs:
                    renames[fn.name] = by_sig[sig]
            else:
                by_sig[sig] = fn.name
        if not renames:
            return False
        for fn in module.functions.values():
            for inst in fn.instructions():
                if inst.op == "call" and inst.attrs["callee"] in renames:
                    inst.attrs["callee"] = renames[inst.attrs["callee"]]
        for name in renames:
            del module.functions[name]
        stats.bump(self.name, "NumFunctionsMerged", len(renames))
        return True


@register
class TailCallElim(ModulePass):
    """Turn self-recursive tail calls into loops."""

    name = "tailcallelim"

    def run_on_module(self, module: Module, stats: StatsCollector, target: TargetInfo) -> bool:
        changed = False
        for fn in module.functions.values():
            if self._run_on_function(fn, stats):
                changed = True
        return changed

    def _run_on_function(self, fn: Function, stats: StatsCollector) -> bool:
        sites: List[Tuple[str, int]] = []
        for bname, blk in fn.blocks.items():
            for idx in range(len(blk.instrs) - 1):
                inst = blk.instrs[idx]
                nxt = blk.instrs[idx + 1]
                if (
                    inst.op == "call"
                    and inst.attrs["callee"] == fn.name
                    and nxt.op == "ret"
                    and idx + 2 == len(blk.instrs)
                ):
                    ok = (not nxt.args and inst.res is None) or (
                        nxt.args and nxt.args[0] == inst.res
                    )
                    if ok:
                        sites.append((bname, idx))
        if not sites:
            return False
        old_entry = fn.entry.name
        new_entry_name = fn.fresh_block_name("tce.entry")
        new_entry = Block(new_entry_name, [Instr("jmp", None, target=old_entry)])
        # prepend the new entry
        fn.blocks = {new_entry_name: new_entry, **fn.blocks}
        # one phi per parameter in the old entry
        phis: List[Instr] = []
        param_map: Dict[str, Operand] = {}
        for pname, pty in fn.params:
            phi = Instr("phi", fn.fresh(f"tce.{pname.lstrip('%')}"), pty, (),
                        incoming=[(new_entry_name, pname)])
            phis.append(phi)
            param_map[pname] = phi.res
        old_blk = fn.blocks[old_entry]
        for phi in reversed(phis):
            old_blk.instrs.insert(0, phi)
        # replace param uses everywhere except the seed edges just created
        for blk in fn.blocks.values():
            for inst in blk.instrs:
                if inst in phis:
                    continue
                inst.replace_uses(param_map)
        for phi in phis:
            phi.attrs["incoming"] = [(new_entry_name, phi.attrs["incoming"][0][1])] \
                if len(phi.attrs["incoming"]) else phi.attrs["incoming"]
        # rewrite each tail call into a jump with phi edges
        for bname, idx in sites:
            blk = fn.blocks[bname]
            call = blk.instrs[idx]
            args = [param_map.get(a, a) if isinstance(a, str) else a for a in call.args]
            blk.instrs = blk.instrs[:idx] + [Instr("jmp", None, target=old_entry)]
            for phi, arg in zip(phis, args):
                phi.attrs["incoming"].append((bname, arg))
            stats.bump(self.name, "NumEliminated")
        return True
