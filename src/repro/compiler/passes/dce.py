"""Dead-code elimination passes: ``dce``, ``adce``, ``dse``."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.compiler.analysis import escaped_allocas, has_side_effects
from repro.compiler.ir import Const, Function, Instr, Module
from repro.compiler.pass_manager import FunctionPass, TargetInfo, register
from repro.compiler.statistics import StatsCollector

__all__ = ["DCE", "ADCE", "DSE"]


def _use_count_map(fn: Function) -> Dict[str, int]:
    uses: Dict[str, int] = {}
    for inst in fn.instructions():
        for reg in inst.reg_operands():
            uses[reg] = uses.get(reg, 0) + 1
    return uses


@register
class DCE(FunctionPass):
    """Remove trivially dead instructions (no uses, no side effects)."""

    name = "dce"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        removed_total = 0
        while True:
            uses = _use_count_map(fn)
            removed = 0
            for blk in fn.blocks.values():
                kept: List[Instr] = []
                for inst in blk.instrs:
                    dead = (
                        not inst.is_terminator
                        and not has_side_effects(inst, module)
                        and (inst.res is None or uses.get(inst.res, 0) == 0)
                        and inst.op not in ("store", "vstore")
                        and inst.res is not None
                    )
                    if dead:
                        removed += 1
                    else:
                        kept.append(inst)
                blk.instrs = kept
            removed_total += removed
            if removed == 0:
                break
        stats.bump(self.name, "NumDeleted", removed_total)
        return removed_total > 0


@register
class ADCE(FunctionPass):
    """Aggressive DCE: mark-and-sweep from observable roots.

    Unlike ``dce`` it also removes whole dead def-use webs in one shot and
    deletes stores into allocas that are never read (the slot is provably
    private because it does not escape).
    """

    name = "adce"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        defs = fn.defs()
        escaped = escaped_allocas(fn)
        # which allocas are ever loaded (directly or via gep chains)?
        alloca_regs = {i.res for i in fn.instructions() if i.op == "alloca"}
        gep_root: Dict[str, str] = {}
        for inst in fn.instructions():
            if inst.op == "gep" and isinstance(inst.args[0], str):
                base = inst.args[0]
                root = gep_root.get(base, base)
                if root in alloca_regs:
                    gep_root[inst.res] = root

        def root_of(reg) -> str:
            if not isinstance(reg, str):
                return ""
            return gep_root.get(reg, reg)

        loaded_roots: Set[str] = set()
        for inst in fn.instructions():
            if inst.op in ("load", "vload"):
                r = root_of(inst.args[0])
                if r in alloca_regs:
                    loaded_roots.add(r)
            elif inst.op == "memcpy":
                r = root_of(inst.args[1])
                if r in alloca_regs:
                    loaded_roots.add(r)

        def store_is_dead(inst: Instr) -> bool:
            if inst.op not in ("store", "vstore", "memset"):
                return False
            ptr = inst.args[1] if inst.op in ("store", "vstore") else inst.args[0]
            r = root_of(ptr)
            return r in alloca_regs and r not in escaped and r not in loaded_roots

        live: Set[str] = set()
        worklist: List[str] = []
        root_instrs: List[Instr] = []
        for inst in fn.instructions():
            is_root = inst.is_terminator or (
                has_side_effects(inst, module) and not store_is_dead(inst)
            )
            if is_root:
                root_instrs.append(inst)
        for inst in root_instrs:
            for reg in inst.reg_operands():
                if reg not in live:
                    live.add(reg)
                    worklist.append(reg)
        while worklist:
            reg = worklist.pop()
            d = defs.get(reg)
            if d is None:
                continue
            for dep in d.reg_operands():
                if dep not in live:
                    live.add(dep)
                    worklist.append(dep)

        removed = 0
        for blk in fn.blocks.values():
            kept: List[Instr] = []
            for inst in blk.instrs:
                if inst.is_terminator:
                    kept.append(inst)
                    continue
                if store_is_dead(inst):
                    removed += 1
                    continue
                if has_side_effects(inst, module):
                    kept.append(inst)
                    continue
                if inst.res is not None and inst.res not in live:
                    removed += 1
                    continue
                if inst.res is None and inst.op not in ("store", "vstore", "memset", "memcpy", "output"):
                    removed += 1
                    continue
                kept.append(inst)
            blk.instrs = kept
        stats.bump(self.name, "NumRemoved", removed)
        return removed > 0


@register
class DSE(FunctionPass):
    """Block-local dead store elimination (overwritten before any read)."""

    name = "dse"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        removed = 0
        for blk in fn.blocks.values():
            doomed: Set[int] = set()
            last_store_to: Dict[object, Instr] = {}
            for inst in blk.instrs:
                op = inst.op
                if op == "store":
                    ptr = inst.args[1]
                    key = ptr if isinstance(ptr, str) else repr(ptr)
                    prev = last_store_to.get(key)
                    if prev is not None:
                        doomed.add(id(prev))
                        removed += 1
                    last_store_to[key] = inst
                elif op in ("load", "vload", "call", "memcpy", "memset", "vstore", "output", "ret"):
                    # anything that may observe memory invalidates pending stores
                    last_store_to.clear()
            if doomed:
                blk.instrs = [i for i in blk.instrs if id(i) not in doomed]
        stats.bump(self.name, "NumFastStores", removed)
        return removed > 0
