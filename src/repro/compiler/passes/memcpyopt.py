"""``memcpyopt``: forward values through memcpy/memset intrinsics.

Complements ``loop-idiom``: once a copy loop has been raised to a
``memcpy``, later loads from the destination can be redirected to the
source (breaking the dependence on the copy), and loads from a ``memset``
region fold to the stored value.  Block-local with conservative aliasing,
like the other memory passes in this pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler.ir import Const, Function, I64, Instr, Module, Operand, PTR
from repro.compiler.pass_manager import FunctionPass, TargetInfo, register
from repro.compiler.statistics import StatsCollector

__all__ = ["MemCpyOpt"]


@register
class MemCpyOpt(FunctionPass):
    """Forward loads through memcpy sources and memset values."""

    name = "memcpyopt"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        defs = fn.defs()
        changed = False
        n_cpy = n_set = 0
        for blk in fn.blocks.values():
            # active intrinsic facts: dst ptr -> ("cpy", src, count, elem_ty)
            # or ("set", value, count, elem_ty)
            facts: Dict[str, Tuple] = {}
            mapping: Dict[str, Operand] = {}
            kept: List[Instr] = []
            for inst in blk.instrs:
                inst.replace_uses(mapping)
                op = inst.op
                if op == "memcpy":
                    dst, src, count = inst.args
                    facts.clear()  # the copy itself writes memory
                    # overlapping copies shift data; only provably disjoint
                    # regions allow redirecting dst-loads to the source
                    from repro.compiler.passes.loops import LoopIdiom

                    if (
                        isinstance(dst, str)
                        and isinstance(count, Const)
                        and LoopIdiom._provably_noalias(fn, dst, src)
                    ):
                        facts[dst] = ("cpy", src, count.value, inst.attrs["elem_ty"])
                    kept.append(inst)
                    continue
                if op == "memset":
                    ptr, val, count = inst.args
                    facts.clear()  # the fill itself writes memory
                    if isinstance(ptr, str) and isinstance(count, Const):
                        facts[ptr] = ("set", val, count.value, inst.attrs["elem_ty"])
                    kept.append(inst)
                    continue
                if op in ("store", "vstore", "call"):
                    # conservative: any write or opaque call invalidates facts
                    facts.clear()
                    kept.append(inst)
                    continue
                if op == "load":
                    hit = self._match(defs, facts, inst)
                    if hit is not None:
                        kind, payload, off, elem_ty = hit
                        if kind == "set":
                            mapping[inst.res] = payload
                            n_set += 1
                            changed = True
                            continue
                        # memcpy: redirect to the source at the same offset
                        if off == 0:
                            src_ptr = payload
                        else:
                            gep = Instr(
                                "gep",
                                fn.fresh("mco.gep"),
                                ty=PTR,
                                args=(payload, Const(off, I64)),
                                elem_ty=elem_ty,
                            )
                            kept.append(gep)
                            src_ptr = gep.res
                        new_load = Instr("load", fn.fresh("mco.ld"), inst.ty, (src_ptr,))
                        kept.append(new_load)
                        mapping[inst.res] = new_load.res
                        n_cpy += 1
                        changed = True
                        continue
                kept.append(inst)
            blk.instrs = kept
            if mapping:
                fn.replace_all_uses(mapping)
        stats.bump(self.name, "NumMemCpyInstr", n_cpy)
        stats.bump(self.name, "NumMemSetInfer", n_set)
        return changed

    @staticmethod
    def _match(defs, facts, load) -> Optional[Tuple]:
        """Match ``load [gep] base, const`` against an active intrinsic.

        Returns ``(kind, payload, offset, elem_ty)`` or ``None``.
        """
        ptr = load.args[0]
        if not isinstance(ptr, str):
            return None
        base: Optional[str] = None
        off = 0
        if ptr in facts:
            base = ptr
        else:
            g = defs.get(ptr)
            if (
                g is not None
                and g.op == "gep"
                and isinstance(g.args[1], Const)
                and isinstance(g.args[0], str)
                and g.args[0] in facts
            ):
                base = g.args[0]
                off = g.args[1].value
        if base is None:
            return None
        kind, payload, count, elem_ty = facts[base]
        if not (0 <= off < count):
            return None
        # element sizes must agree for the offset arithmetic to be exact
        if elem_ty.byte_size() != load.ty.byte_size():
            return None
        # the gep that reached the load must use the same element size too
        g = defs.get(ptr)
        if g is not None and g.op == "gep" and g.attrs["elem_ty"].byte_size() != elem_ty.byte_size():
            return None
        return kind, payload, off, elem_ty
