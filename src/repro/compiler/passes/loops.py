"""Loop transformation passes.

These are the passes whose orderings dominate the phase-ordering search
space: ``licm`` wants rotated loops, ``loop-unroll`` wants promoted
induction variables, ``slp-vectorizer`` wants unrolled bodies, and all of
them silently do nothing when their enabling passes have not run — the
coupling CITROEN's statistics features make visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.analysis import (
    Loop,
    constant_trip_count,
    find_loops,
    has_side_effects,
    is_pure_instr,
    use_counts,
)
from repro.compiler.ir import Const, Function, I64, Instr, Module, Operand, PTR
from repro.compiler.pass_manager import FunctionPass, TargetInfo, register
from repro.compiler.passes.utils import (
    clone_blocks,
    ensure_preheader,
    remove_trivial_phis,
    resolve_chain,
)
from repro.compiler.statistics import StatsCollector

__all__ = [
    "LoopSimplify",
    "LCSSA",
    "LICM",
    "LoopRotate",
    "LoopUnroll",
    "LoopDeletion",
    "LoopIdiom",
    "IndVarSimplify",
    "LoopUnswitch",
]


def _loop_writes(fn: Function, module: Module, loop: Loop) -> bool:
    for bname in loop.blocks:
        for inst in fn.blocks[bname].instrs:
            if inst.op in ("store", "vstore", "memset", "memcpy", "output"):
                return True
            if inst.op == "call":
                callee = module.functions.get(inst.attrs["callee"])
                if callee is None or (
                    "readnone" not in callee.attrs and "readonly" not in callee.attrs
                ):
                    return True
    return False


def _defined_in_loop(fn: Function, loop: Loop) -> Set[str]:
    regs: Set[str] = set()
    for bname in loop.blocks:
        for inst in fn.blocks[bname].instrs:
            if inst.res is not None:
                regs.add(inst.res)
    return regs


@register
class LoopSimplify(FunctionPass):
    """Canonicalise loops: guarantee each has a dedicated preheader."""

    name = "loop-simplify"
    is_analysis = True

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        for loop in find_loops(fn):
            if loop.preheader is None or (
                fn.blocks[loop.preheader].terminator is not None
                and fn.blocks[loop.preheader].terminator.op != "jmp"
            ):
                ensure_preheader(fn, loop.header, loop.blocks)
                stats.bump(self.name, "NumInserted")
                changed = True
        return changed


@register
class LCSSA(FunctionPass):
    """Insert single-entry phis for loop values used outside the loop."""

    name = "lcssa"
    is_analysis = True

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        preds = fn.predecessors()
        for loop in find_loops(fn):
            inside = _defined_in_loop(fn, loop)
            defs = fn.defs()
            for exit_name in loop.exits:
                if exit_name not in fn.blocks:
                    continue
                exit_preds = preds[exit_name]
                if len(exit_preds) != 1 or exit_preds[0] not in loop.blocks:
                    continue
                src = exit_preds[0]
                # out-of-loop uses of in-loop values reached through this exit
                for bname, blk in fn.blocks.items():
                    if bname in loop.blocks or bname != exit_name:
                        continue
                    for inst in blk.non_phi_instrs():
                        for reg in list(inst.reg_operands()):
                            if reg in inside:
                                d = defs[reg]
                                phi = Instr(
                                    "phi",
                                    fn.fresh("lcssa"),
                                    d.ty,
                                    (),
                                    incoming=[(src, reg)],
                                )
                                blk.instrs.insert(0, phi)
                                inst.replace_uses({reg: phi.res})
                                stats.bump(self.name, "NumLCSSA")
                                changed = True
        return changed


@register
class LICM(FunctionPass):
    """Hoist loop-invariant computation to the preheader.

    Pure arithmetic is speculated freely; loads are hoisted only when the
    address is invariant and the loop body performs no memory writes at all
    (a crude but sound stand-in for LLVM's MemorySSA queries).
    """

    name = "licm"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        for loop in find_loops(fn):  # innermost first
            if loop.header not in fn.blocks:
                continue
            pre = ensure_preheader(fn, loop.header, loop.blocks)
            loop_writes = _loop_writes(fn, module, loop)
            hoisted_regs: Set[str] = set()
            moved: List[Instr] = []
            inside = _defined_in_loop(fn, loop)

            def invariant(v: Operand) -> bool:
                if isinstance(v, Const):
                    return True
                return v not in inside or v in hoisted_regs

            progress = True
            while progress:
                progress = False
                for bname in list(loop.blocks):
                    blk = fn.blocks[bname]
                    remaining: List[Instr] = []
                    for inst in blk.instrs:
                        hoistable = False
                        if inst.res is not None and inst.res not in hoisted_regs:
                            if is_pure_instr(inst, module) and inst.op != "phi":
                                hoistable = all(invariant(a) for a in inst.operands())
                            elif inst.op in ("load",) and not loop_writes:
                                hoistable = all(invariant(a) for a in inst.operands())
                        if hoistable:
                            moved.append(inst)
                            hoisted_regs.add(inst.res)  # type: ignore[arg-type]
                            progress = True
                            changed = True
                        else:
                            remaining.append(inst)
                    blk.instrs = remaining
            if moved:
                pre_blk = fn.blocks[pre]
                term = pre_blk.instrs.pop()
                pre_blk.instrs.extend(moved)
                pre_blk.instrs.append(term)
                stats.bump(self.name, "NumHoisted", len(moved))
        return changed


def _canonical_loop(fn: Function, loop: Loop):
    """Shared precondition check: canonical counted loop with single exit.

    Returns ``(iv, start, step, trips, exit_block, body_entry)`` or ``None``.
    """
    tc = constant_trip_count(fn, loop)
    if tc is None:
        return None
    iv, start, step, trips = tc
    term = fn.blocks[loop.header].terminator
    targets = term.attrs["targets"]
    body_entry = next(t for t in targets if t in loop.blocks)
    exit_block = next(t for t in targets if t not in loop.blocks)
    # header must contain only phis + the cmp + br
    hdr = fn.blocks[loop.header]
    non_phi = hdr.non_phi_instrs()
    if len(non_phi) != 2:
        return None
    if len(loop.latches) != 1:
        return None
    preds = fn.predecessors()
    if any(p in loop.blocks for p in preds[exit_block] if p != loop.header):
        return None
    return iv, start, step, trips, exit_block, body_entry


@register
class LoopUnroll(FunctionPass):
    """Fully unroll small constant-trip-count loops."""

    name = "loop-unroll"
    max_trips = 64

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        # re-derive loops after each unroll: block structure changes
        for _ in range(8):
            loops = find_loops(fn)
            done = True
            for loop in loops:
                if any(b not in fn.blocks for b in loop.blocks):
                    continue
                if self._try_unroll(fn, loop, stats, target):
                    changed = True
                    done = False
                    break
            if done:
                break
        if changed:
            remove_trivial_phis(fn)
        return changed

    def _try_unroll(
        self, fn: Function, loop: Loop, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        canon = _canonical_loop(fn, loop)
        if canon is None:
            return False
        iv, start, step, trips, exit_block, body_entry = canon
        region = sorted(loop.blocks - {loop.header})
        body_size = sum(len(fn.blocks[b].instrs) for b in region)
        if trips > self.max_trips or trips * max(1, body_size) > target.unroll_threshold:
            return False
        pre = ensure_preheader(fn, loop.header, loop.blocks)
        hdr = fn.blocks[loop.header]
        phis = hdr.phis()
        latch = loop.latches[0]

        # current value of each header phi entering iteration j
        cur: Dict[str, Operand] = {}
        nxt_expr: Dict[str, Operand] = {}  # phi -> in-loop incoming operand
        for phi in phis:
            for b, v in phi.attrs["incoming"]:
                if b in loop.blocks:
                    nxt_expr[phi.res] = v
                else:
                    cur[phi.res] = v

        prev_tail = pre  # block whose terminator feeds the next iteration
        for j in range(trips):
            bmap, rmap = clone_blocks(fn, region, f"it{j}", value_map=dict(cur))
            # wire previous tail (preheader jmp or previous clone's latch
            # backedge) into this iteration's body entry
            fn.blocks[prev_tail].terminator.retarget(loop.header, bmap[body_entry])
            # the body entry's former predecessor was the header
            for phi in fn.blocks[bmap[body_entry]].phis():
                phi.attrs["incoming"] = [
                    (prev_tail if b == loop.header else b, v)
                    for b, v in phi.attrs["incoming"]
                ]
            # advance phi values through this iteration
            new_cur: Dict[str, Operand] = {}
            for phi in phis:
                expr = nxt_expr[phi.res]
                if isinstance(expr, str):
                    new_cur[phi.res] = rmap.get(expr, cur.get(expr, expr))
                else:
                    new_cur[phi.res] = expr
            cur = new_cur
            prev_tail = bmap[latch]

        if trips == 0:
            fn.blocks[pre].terminator.retarget(loop.header, exit_block)
        else:
            # last clone's latch exits the loop
            fn.blocks[prev_tail].terminator.retarget(loop.header, exit_block)

        # fix exit-block phis: the edge used to come from the header
        final_src = prev_tail if trips > 0 else pre
        for inst in fn.blocks[exit_block].phis():
            new_inc = []
            for b, v in inst.attrs["incoming"]:
                if b == loop.header:
                    if isinstance(v, str) and v in cur:
                        v = cur[v]
                    new_inc.append((final_src, v))
                else:
                    new_inc.append((b, v))
            inst.attrs["incoming"] = new_inc
        # uses of header phis after the loop (not via exit phis): replace with
        # final values
        fn.remove_blocks(list(loop.blocks))
        fn.replace_all_uses({p.res: cur[p.res] for p in phis if p.res in cur})
        stats.bump(self.name, "NumFullyUnrolled")
        stats.bump(self.name, "NumUnrolled", max(trips, 1))
        return True


@register
class LoopRotate(FunctionPass):
    """Rotate while-loops into guarded do-while form."""

    name = "loop-rotate"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        for loop in find_loops(fn):
            if any(b not in fn.blocks for b in loop.blocks):
                continue
            if self._try_rotate(fn, loop, stats):
                changed = True
        if changed:
            remove_trivial_phis(fn)
        return changed

    def _try_rotate(self, fn: Function, loop: Loop, stats: StatsCollector) -> bool:
        hdr = fn.blocks[loop.header]
        term = hdr.terminator
        if term is None or term.op != "br" or not isinstance(term.args[0], str):
            return False
        non_phi = hdr.non_phi_instrs()
        if len(non_phi) != 2:  # exactly [cmp, br]
            return False
        cmp_inst = non_phi[0]
        if cmp_inst.res != term.args[0] or cmp_inst.op not in ("icmp", "fcmp"):
            return False
        if len(loop.latches) != 1:
            return False
        latch = loop.latches[0]
        targets = term.attrs["targets"]
        in_loop = [t for t in targets if t in loop.blocks and t != loop.header]
        out_loop = [t for t in targets if t not in loop.blocks]
        if len(in_loop) != 1 or len(out_loop) != 1:
            return False
        body_entry, exit_block = in_loop[0], out_loop[0]
        preds = fn.predecessors()
        if len(preds[body_entry]) != 1:
            return False
        if fn.blocks[body_entry].phis():
            return False  # would interleave with the relocated header phis
        # single dedicated exit whose only in-loop predecessor is the header
        if any(p in loop.blocks and p != loop.header for p in preds[exit_block]):
            return False
        phis = hdr.phis()
        phi_init: Dict[str, Operand] = {}
        phi_next: Dict[str, Operand] = {}
        for phi in phis:
            for b, v in phi.attrs["incoming"]:
                if b in loop.blocks:
                    phi_next[phi.res] = v
                else:
                    phi_init[phi.res] = v
        if len(phi_init) != len(phis) or len(phi_next) != len(phis):
            return False
        # exit-block values flowing from the header must be expressible
        for inst in fn.blocks[exit_block].phis():
            for b, v in inst.attrs["incoming"]:
                if b == loop.header and isinstance(v, str):
                    if v not in phi_init and v in _defined_in_loop(fn, loop):
                        return False
        # the cmp may only use phis and loop-invariant values
        inside = _defined_in_loop(fn, loop)
        for a in cmp_inst.args:
            if isinstance(a, str) and a in inside and a not in phi_init:
                return False

        # preserve the original branch orientation (the exit may be either arm)
        orig_targets = term.attrs["targets"]
        rot_targets = tuple(
            body_entry if t == body_entry else exit_block for t in orig_targets
        )

        pre = ensure_preheader(fn, loop.header, loop.blocks)
        pre_blk = fn.blocks[pre]
        # guard in the preheader: the cmp with phis replaced by inits
        guard = cmp_inst.clone()
        guard.res = fn.fresh("rot.guard")
        guard.replace_uses(phi_init)
        pre_blk.instrs.insert(-1, guard)
        pre_term = pre_blk.terminator
        pre_term.op = "br"
        pre_term.args = [guard.res]
        pre_term.attrs = {"targets": rot_targets}

        # new latch condition: the cmp with phis replaced by next values
        latch_blk = fn.blocks[latch]
        latch_cmp = cmp_inst.clone()
        latch_cmp.res = fn.fresh("rot.cond")
        latch_cmp.replace_uses(phi_next)
        latch_term = latch_blk.terminator
        assert latch_term is not None and latch_term.op == "jmp"
        latch_blk.instrs.insert(-1, latch_cmp)
        latch_term.op = "br"
        latch_term.args = [latch_cmp.res]
        latch_term.attrs = {"targets": rot_targets}

        # move phis into the body entry with relabelled edges
        body_blk = fn.blocks[body_entry]
        for phi in reversed(phis):
            phi.attrs["incoming"] = [(pre, phi_init[phi.res]), (latch, phi_next[phi.res])]
            body_blk.instrs.insert(0, phi)
        hdr.instrs = [i for i in hdr.instrs if i.op != "phi"]

        # exit-block phi edges: header -> {pre, latch}
        for inst in fn.blocks[exit_block].phis():
            new_inc = []
            for b, v in inst.attrs["incoming"]:
                if b == loop.header:
                    v_pre = phi_init.get(v, v) if isinstance(v, str) else v
                    v_latch = phi_next.get(v, v) if isinstance(v, str) else v
                    new_inc.append((pre, v_pre))
                    new_inc.append((latch, v_latch))
                else:
                    new_inc.append((b, v))
            inst.attrs["incoming"] = new_inc
        # out-of-loop non-phi uses of header phis: value at exit is `next`
        # when leaving via the latch and `init` via the guard -> need a merge
        defs_outside_uses: Dict[str, Operand] = {}
        exit_blk = fn.blocks[exit_block]
        for phi in phis:
            used_outside = False
            for bname, blk in fn.blocks.items():
                if bname in loop.blocks:
                    continue
                for inst in blk.instrs:
                    if phi.res in inst.reg_operands() and inst not in exit_blk.phis():
                        used_outside = True
            if used_outside:
                merge = Instr(
                    "phi",
                    fn.fresh("rot.merge"),
                    phi.ty,
                    (),
                    incoming=[(pre, phi_init[phi.res]), (latch, phi_next[phi.res])],
                )
                exit_blk.instrs.insert(0, merge)
                defs_outside_uses[phi.res] = merge.res
        if defs_outside_uses:
            for bname, blk in fn.blocks.items():
                if bname in loop.blocks or bname == exit_block:
                    continue
                for inst in blk.instrs:
                    inst.replace_uses(defs_outside_uses)
            # also non-phi users inside the exit block itself
            for inst in exit_blk.non_phi_instrs():
                inst.replace_uses(defs_outside_uses)

        # the header now contains [cmp, br]; it is bypassed entirely
        hdr_removable = True
        for bname, blk in fn.blocks.items():
            for inst in blk.instrs:
                if inst is not term and cmp_inst.res in inst.reg_operands():
                    hdr_removable = False
        if hdr_removable:
            fn.remove_blocks([loop.header])
        else:  # keep but unreachable; simplifycfg will deal with it
            pass
        stats.bump(self.name, "NumRotated")
        return True


@register
class LoopDeletion(FunctionPass):
    """Delete loops whose execution is unobservable."""

    name = "loop-deletion"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        for loop in find_loops(fn):
            if any(b not in fn.blocks for b in loop.blocks):
                continue
            canon = _canonical_loop(fn, loop)
            if canon is None:
                continue
            iv, start, step, trips, exit_block, _ = canon
            if _loop_writes(fn, module, loop):
                continue
            inside = _defined_in_loop(fn, loop)
            # no in-loop value may be used outside
            used_outside = False
            for bname, blk in fn.blocks.items():
                if bname in loop.blocks:
                    continue
                for inst in blk.instrs:
                    if inst.op == "phi":
                        for b, v in inst.attrs["incoming"]:
                            if b == loop.header and isinstance(v, str) and v in inside:
                                used_outside = True
                    else:
                        for reg in inst.reg_operands():
                            if reg in inside:
                                used_outside = True
            if used_outside:
                continue
            pre = ensure_preheader(fn, loop.header, loop.blocks)
            fn.blocks[pre].terminator.retarget(loop.header, exit_block)
            for inst in fn.blocks[exit_block].phis():
                inst.attrs["incoming"] = [
                    (pre if b == loop.header else b, v) for b, v in inst.attrs["incoming"]
                ]
            fn.remove_blocks(list(loop.blocks))
            stats.bump(self.name, "NumDeleted")
            changed = True
        if changed:
            remove_trivial_phis(fn)
        return changed


@register
class LoopIdiom(FunctionPass):
    """Recognise memset/memcpy loops and replace them with intrinsics."""

    name = "loop-idiom"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        for loop in find_loops(fn):
            if any(b not in fn.blocks for b in loop.blocks):
                continue
            if self._try_idiom(fn, module, loop, stats):
                changed = True
        if changed:
            remove_trivial_phis(fn)
        return changed

    def _try_idiom(
        self, fn: Function, module: Module, loop: Loop, stats: StatsCollector
    ) -> bool:
        canon = _canonical_loop(fn, loop)
        if canon is None:
            return False
        iv, start, step, trips, exit_block, body_entry = canon
        if step != 1 or trips <= 0:
            return False
        if len(loop.blocks) != 3:  # header, body, latch
            return False
        body = fn.blocks[body_entry]
        latch = loop.latches[0]
        inside = _defined_in_loop(fn, loop)
        # classify body instructions
        effects = [i for i in body.instrs if has_side_effects(i, module)]
        if [i.op for i in effects] != ["store"]:
            return False
        store = effects[0]
        val, ptr = store.args
        defs = fn.defs()
        gep = defs.get(ptr) if isinstance(ptr, str) else None
        if gep is None or gep.op != "gep" or gep.args[1] != iv:
            return False
        base = gep.args[0]
        if isinstance(base, str) and base in inside:
            return False
        # stored value must be loop-invariant (memset) or a stride-1 load (memcpy)
        latch_ok = all(
            i.op in ("add", "jmp", "phi") or not has_side_effects(i, module)
            for i in fn.blocks[latch].instrs
        )
        if not latch_ok:
            return False
        # no in-loop value other than the iv bookkeeping may be used outside
        for bname, blk in fn.blocks.items():
            if bname in loop.blocks:
                continue
            for inst in blk.instrs:
                for reg in inst.reg_operands():
                    if reg in inside:
                        return False
                if inst.op == "phi":
                    for b, v in inst.attrs["incoming"]:
                        if b == loop.header and isinstance(v, str) and v in inside:
                            return False

        pre = ensure_preheader(fn, loop.header, loop.blocks)
        pre_blk = fn.blocks[pre]
        elem_ty = gep.attrs["elem_ty"]
        new_instrs: List[Instr] = []
        if not isinstance(val, str) or val not in inside:
            # memset: invariant value stored to consecutive addresses
            base_ptr = self._offset_base(fn, new_instrs, base, start, elem_ty)
            new_instrs.append(
                Instr(
                    "memset",
                    None,
                    args=(base_ptr, val, Const(trips, I64)),
                    elem_ty=elem_ty,
                )
            )
            stats.bump(self.name, "NumMemSet")
        else:
            load = defs.get(val)
            if load is None or load.op != "load" or not isinstance(load.args[0], str):
                return False
            src_gep = defs.get(load.args[0])
            if src_gep is None or src_gep.op != "gep" or src_gep.args[1] != iv:
                return False
            src_base = src_gep.args[0]
            if isinstance(src_base, str) and src_base in inside:
                return False
            if src_gep.attrs["elem_ty"].byte_size() != elem_ty.byte_size():
                return False
            # strict no-overlap requirement: distinct allocas or globals
            if not self._provably_noalias(fn, base, src_base):
                return False
            dst_ptr = self._offset_base(fn, new_instrs, base, start, elem_ty)
            src_ptr = self._offset_base(fn, new_instrs, src_base, start, elem_ty)
            new_instrs.append(
                Instr(
                    "memcpy",
                    None,
                    args=(dst_ptr, src_ptr, Const(trips, I64)),
                    elem_ty=elem_ty,
                )
            )
            stats.bump(self.name, "NumMemCpy")
        term = pre_blk.instrs.pop()
        pre_blk.instrs.extend(new_instrs)
        pre_blk.instrs.append(term)
        term.retarget(loop.header, exit_block)
        for inst in fn.blocks[exit_block].phis():
            inst.attrs["incoming"] = [
                (pre if b == loop.header else b, v) for b, v in inst.attrs["incoming"]
            ]
        fn.remove_blocks(list(loop.blocks))
        return True

    @staticmethod
    def _offset_base(
        fn: Function, out: List[Instr], base: Operand, start: int, elem_ty
    ) -> Operand:
        if start == 0:
            return base
        gep = Instr(
            "gep",
            fn.fresh("idiom"),
            ty=PTR,
            args=(base, Const(start, I64)),
            elem_ty=elem_ty,
        )
        out.append(gep)
        return gep.res

    @staticmethod
    def _provably_noalias(fn: Function, a: Operand, b: Operand) -> bool:
        if not (isinstance(a, str) and isinstance(b, str)):
            return False
        defs = fn.defs()
        da, db = defs.get(a), defs.get(b)
        if da is None or db is None:
            return False
        if da.op == "alloca" and db.op == "alloca":
            return a != b
        if da.op == "gaddr" and db.op == "gaddr":
            return da.attrs["name"] != db.attrs["name"]
        if {da.op, db.op} == {"alloca", "gaddr"}:
            return True
        return False


@register
class IndVarSimplify(FunctionPass):
    """Widen 32-bit induction variables that are only sign-extended."""

    name = "indvars"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        for loop in find_loops(fn):
            if loop.header not in fn.blocks:
                continue
            tc = constant_trip_count(fn, loop)
            if tc is None:
                continue
            iv = tc[0]
            defs = fn.defs()
            phi = defs.get(iv)
            if phi is None or phi.ty.bits != 32:
                continue
            # all uses: the update add, the exit compare, and sexts to i64
            uses: List[Instr] = []
            for inst in fn.instructions():
                if iv in inst.reg_operands():
                    uses.append(inst)
            sexts = [u for u in uses if u.op == "sext" and u.ty.bits == 64]
            others = [u for u in uses if u.op not in ("sext",)]
            if not sexts:
                continue
            if not all(u.op in ("add", "icmp") for u in others):
                continue
            upd = next((u for u in others if u.op == "add"), None)
            if upd is None:
                continue
            # retype the recurrence to i64
            phi.ty = I64
            phi.attrs["incoming"] = [
                (b, Const(v.value, I64) if isinstance(v, Const) else v)
                for b, v in phi.attrs["incoming"]
            ]
            upd.ty = I64
            upd.args = [Const(a.value, I64) if isinstance(a, Const) else a for a in upd.args]
            for u in others:
                if u.op == "icmp":
                    u.args = [Const(a.value, I64) if isinstance(a, Const) else a for a in u.args]
            mapping = {s.res: iv for s in sexts}
            for blk in fn.blocks.values():
                blk.instrs = [i for i in blk.instrs if i not in sexts]
            fn.replace_all_uses(mapping)
            stats.bump(self.name, "NumWidened")
            changed = True
        return changed


@register
class LoopUnswitch(FunctionPass):
    """Hoist a loop-invariant conditional branch out of the loop by
    duplicating the loop body (one version per branch direction)."""

    name = "loop-unswitch"
    max_loop_size = 40

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        for loop in find_loops(fn):
            if any(b not in fn.blocks for b in loop.blocks):
                continue
            if self._try_unswitch(fn, loop, stats):
                remove_trivial_phis(fn)
                return True  # one unswitch per run (size doubles)
        return False

    def _try_unswitch(self, fn: Function, loop: Loop, stats: StatsCollector) -> bool:
        size = sum(len(fn.blocks[b].instrs) for b in loop.blocks)
        if size > self.max_loop_size:
            return False
        if len(loop.exits) != 1:
            return False
        exit_block = next(iter(loop.exits))
        preds = fn.predecessors()
        inside = _defined_in_loop(fn, loop)
        # find an invariant conditional branch that is not the exit branch
        cond_blk = None
        for bname in loop.blocks:
            term = fn.blocks[bname].terminator
            if term is None or term.op != "br":
                continue
            if any(t not in loop.blocks for t in term.attrs["targets"]):
                continue  # the loop-exit branch stays
            cond = term.args[0]
            if isinstance(cond, str) and cond in inside:
                continue
            cond_blk = bname
            cond_val = cond
            break
        if cond_blk is None:
            return False
        # in-loop values used outside the loop (directly, not via exit phis)
        # need merge phis in the exit; they are necessarily defined in blocks
        # dominating the exit (SSA), so a two-way phi over the two loop
        # versions is always legal
        exit_phis = fn.blocks[exit_block].phis()
        escaping: Set[str] = set()
        for bname, blk in fn.blocks.items():
            if bname in loop.blocks:
                continue
            for inst in blk.instrs:
                if bname == exit_block and inst in exit_phis:
                    continue
                for reg in inst.reg_operands():
                    if reg in inside:
                        escaping.add(reg)
                if inst.op == "phi" and bname != exit_block:
                    for _b, v in inst.attrs["incoming"]:
                        if isinstance(v, str) and v in inside:
                            escaping.add(v)

        pre = ensure_preheader(fn, loop.header, loop.blocks)
        region = sorted(loop.blocks)
        bmap, rmap = clone_blocks(fn, region, "unsw")
        # specialise: original takes the true arm, clone takes the false arm
        true_term = fn.blocks[cond_blk].terminator
        t_true, t_false_orig = true_term.attrs["targets"]
        true_term.op = "jmp"
        true_term.args = []
        true_term.attrs = {"target": t_true}
        if t_false_orig != t_true:
            # the no-longer-taken arm loses its edge from cond_blk
            for phi in fn.blocks[t_false_orig].phis():
                phi.attrs["incoming"] = [
                    (bb, v) for bb, v in phi.attrs["incoming"] if bb != cond_blk
                ]
        clone_term = fn.blocks[bmap[cond_blk]].terminator
        t_true_clone, t_false = clone_term.attrs["targets"]
        clone_term.op = "jmp"
        clone_term.args = []
        clone_term.attrs = {"target": t_false}
        if t_true_clone != t_false:
            for phi in fn.blocks[t_true_clone].phis():
                phi.attrs["incoming"] = [
                    (bb, v) for bb, v in phi.attrs["incoming"] if bb != bmap[cond_blk]
                ]
        # guard in the preheader chooses the version
        pre_term = fn.blocks[pre].terminator
        pre_term.op = "br"
        pre_term.args = [cond_val]
        pre_term.attrs = {"targets": (loop.header, bmap[loop.header])}
        # the clone's header phis inherit the preheader edge label unchanged
        # (clone_blocks kept out-of-region labels); nothing to fix there.
        # exit block now has predecessors from both versions
        for phi in exit_phis:
            extra = []
            for b, v in phi.attrs["incoming"]:
                if b in bmap:
                    nv = rmap.get(v, v) if isinstance(v, str) else v
                    extra.append((bmap[b], nv))
            phi.attrs["incoming"] = phi.attrs["incoming"] + extra
        # merge phis for in-loop values escaping past the exit: each value
        # dominates every exit predecessor (it dominated the exit before the
        # clone), so a per-version phi is legal
        if escaping:
            exit_blk = fn.blocks[exit_block]
            clone_names = set(bmap.values())
            exit_preds = fn.predecessors()[exit_block]
            defs = fn.defs()
            merge_map: Dict[str, Operand] = {}
            for reg in sorted(escaping):
                incoming = []
                for p in exit_preds:
                    incoming.append((p, rmap.get(reg, reg) if p in clone_names else reg))
                phi = Instr("phi", fn.fresh("unsw.merge"), defs[reg].ty, (), incoming=incoming)
                exit_blk.instrs.insert(0, phi)
                merge_map[reg] = phi.res
            new_phis = {id(i) for i in exit_blk.phis()}
            for bname, blk in fn.blocks.items():
                if bname in loop.blocks or bname in clone_names:
                    continue
                for inst in blk.instrs:
                    if id(inst) in new_phis or (bname == exit_block and inst in exit_phis):
                        continue
                    inst.replace_uses(merge_map)
        stats.bump(self.name, "NumBranches")
        return True
