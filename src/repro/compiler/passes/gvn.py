"""Redundancy elimination: ``early-cse``, ``gvn``, ``sccp``.

``early-cse`` is block-local and also performs store-to-load forwarding;
``gvn`` numbers pure expressions over the dominator tree; ``sccp`` folds
constants and resolves conditional branches whose condition becomes
constant.  Calls participate only when ``function-attrs`` has marked the
callee ``readnone`` — the inter-pass interaction the paper highlights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.analysis import immediate_dominators, reachable_blocks
from repro.compiler.ir import (
    BIN_OPS,
    Const,
    Function,
    Instr,
    Module,
    Operand,
    is_commutative,
)
from repro.compiler.pass_manager import FunctionPass, TargetInfo, register
from repro.compiler.passes.instcombine import _simplify_instr
from repro.compiler.passes.utils import resolve_chain
from repro.compiler.statistics import StatsCollector

__all__ = ["EarlyCSE", "GVN", "SCCP"]


def _expr_key(inst: Instr, module: Module) -> Optional[Tuple]:
    """Hashable value-number key for instructions safe to deduplicate."""
    op = inst.op
    if op in BIN_OPS and not inst.ty.is_vec:
        a, b = inst.args
        ka = a if isinstance(a, str) else ("c", a.value, a.ty)
        kb = b if isinstance(b, str) else ("c", b.value, b.ty)
        if is_commutative(op) and repr(ka) > repr(kb):
            ka, kb = kb, ka
        # division may trap; only CSE when the divisor is a non-zero const
        if op in ("sdiv", "srem", "udiv", "urem"):
            if not (isinstance(b, Const) and b.value != 0):
                return None
        return (op, inst.ty, ka, kb)
    if op in ("sext", "zext", "trunc", "sitofp", "fptosi", "gep", "icmp", "fcmp", "select", "gaddr"):
        parts: List = [op, inst.ty]
        for a in inst.args:
            parts.append(a if isinstance(a, str) else ("c", a.value, a.ty))
        for k in sorted(inst.attrs):
            v = inst.attrs[k]
            parts.append((k, v if isinstance(v, (str, int, float)) else repr(v)))
        return tuple(parts)
    if op == "call":
        callee = module.functions.get(inst.attrs["callee"])
        if callee is not None and "readnone" in callee.attrs:
            parts = [op, inst.attrs["callee"]]
            for a in inst.args:
                parts.append(a if isinstance(a, str) else ("c", a.value, a.ty))
            return tuple(parts)
    return None


@register
class EarlyCSE(FunctionPass):
    """Block-local common-subexpression and redundant-load elimination."""

    name = "early-cse"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        mapping: Dict[str, Operand] = {}
        n_cse = n_load = 0
        for blk in fn.blocks.values():
            avail: Dict[Tuple, str] = {}
            known_mem: Dict[str, Operand] = {}  # SSA ptr -> last known value
            kept: List[Instr] = []
            for inst in blk.instrs:
                inst.replace_uses(mapping)
                op = inst.op
                if op == "load" and isinstance(inst.args[0], str):
                    ptr = inst.args[0]
                    if ptr in known_mem:
                        mapping[inst.res] = resolve_chain(mapping, known_mem[ptr])
                        n_load += 1
                        continue
                    known_mem[ptr] = inst.res
                    kept.append(inst)
                    continue
                if op == "store":
                    val, ptr = inst.args
                    # a store invalidates all other remembered locations
                    # (conservative aliasing) but makes its own value known
                    known_mem.clear()
                    if isinstance(ptr, str):
                        known_mem[ptr] = val
                    kept.append(inst)
                    continue
                if op in ("call", "memcpy", "memset", "vstore"):
                    callee = module.functions.get(inst.attrs.get("callee", "")) if op == "call" else None
                    pure = callee is not None and (
                        "readnone" in callee.attrs or "readonly" in callee.attrs
                    )
                    if not pure:
                        known_mem.clear()
                key = _expr_key(inst, module)
                if key is not None:
                    prev = avail.get(key)
                    if prev is not None:
                        mapping[inst.res] = prev
                        n_cse += 1
                        continue
                    avail[key] = inst.res
                kept.append(inst)
            blk.instrs = kept
        if mapping:
            fn.replace_all_uses(mapping)
        stats.bump(self.name, "NumCSE", n_cse)
        stats.bump(self.name, "NumCSELoad", n_load)
        return bool(mapping)


@register
class GVN(FunctionPass):
    """Dominator-scoped global value numbering of pure expressions."""

    name = "gvn"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        idom = immediate_dominators(fn)
        reach = reachable_blocks(fn)
        children: Dict[str, List[str]] = {b: [] for b in reach}
        entry = fn.entry.name
        for b, d in idom.items():
            if d is not None and b != entry and b in reach:
                children[d].append(b)

        mapping: Dict[str, Operand] = {}
        n_gvn = 0
        avail: Dict[Tuple, str] = {}

        # iterative preorder walk of the dominator tree with scope unwinding
        stack: List[Tuple[str, bool]] = [(entry, False)]
        scope_added: Dict[str, List[Tuple]] = {}
        while stack:
            bname, done = stack.pop()
            if done:
                for key in scope_added.pop(bname, ()):
                    avail.pop(key, None)
                continue
            added: List[Tuple] = []
            blk = fn.blocks[bname]
            kept: List[Instr] = []
            for inst in blk.instrs:
                inst.replace_uses(mapping)
                key = _expr_key(inst, module)
                if key is not None and inst.res is not None:
                    prev = avail.get(key)
                    if prev is not None:
                        mapping[inst.res] = prev
                        n_gvn += 1
                        continue
                    avail[key] = inst.res
                    added.append(key)
                kept.append(inst)
            blk.instrs = kept
            scope_added[bname] = added
            stack.append((bname, True))
            for child in children.get(bname, ()):
                stack.append((child, False))
        if mapping:
            fn.replace_all_uses(mapping)
        stats.bump(self.name, "NumGVNInstr", n_gvn)
        return n_gvn > 0


@register
class SCCP(FunctionPass):
    """Constant propagation with conditional-branch resolution."""

    name = "sccp"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed_any = False
        for _ in range(4):
            defs = fn.defs()
            mapping: Dict[str, Operand] = {}
            removed = 0
            for blk in fn.blocks.values():
                kept: List[Instr] = []
                for inst in blk.instrs:
                    inst.replace_uses(mapping)
                    if inst.op == "br":
                        cond = inst.args[0]
                        if isinstance(cond, Const):
                            target_blk = inst.attrs["targets"][0 if cond.value else 1]
                            inst.op = "jmp"
                            inst.args = []
                            inst.attrs = {"target": target_blk}
                            removed += 1
                        kept.append(inst)
                        continue
                    simplified = _simplify_instr(inst, defs)
                    if (
                        simplified is not None
                        and isinstance(simplified, Const)
                        and inst.res is not None
                    ):
                        mapping[inst.res] = simplified
                        removed += 1
                        continue
                    kept.append(inst)
                blk.instrs = kept
            if mapping:
                fn.replace_all_uses(mapping)
            if removed == 0:
                break
            stats.bump(self.name, "NumInstRemoved", removed)
            changed_any = True
        # folding branches may strand phi edges from now-unreachable preds
        if changed_any:
            self._prune_phi_edges(fn)
        return changed_any

    @staticmethod
    def _prune_phi_edges(fn: Function) -> None:
        from repro.compiler.passes.utils import remove_trivial_phis

        preds = fn.predecessors()
        for bname, blk in fn.blocks.items():
            actual = set(preds[bname])
            for inst in blk.phis():
                inc = [(b, v) for b, v in inst.attrs["incoming"] if b in actual]
                if len(inc) != len(inst.attrs["incoming"]):
                    inst.attrs["incoming"] = inc
        remove_trivial_phis(fn)
