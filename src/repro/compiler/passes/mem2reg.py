"""``mem2reg`` (promote memory to registers) and ``sroa``.

``mem2reg`` rewrites scalar stack slots accessed only by loads and stores
into SSA registers, inserting phi nodes at join points (lazy SSA
construction in the style of Braun et al.).  It is the enabling pass for
essentially every later optimisation — running ``slp-vectorizer`` without it
finds nothing, which is the order-sensitivity the paper's Fig 5.1 motivates.

``sroa`` (scalar replacement of aggregates) additionally splits small array
allocas whose elements are only addressed through constant-index ``gep``\\ s
into one scalar alloca per element, then defers to the same promotion
engine, mirroring LLVM where SROA subsumes mem2reg.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.analysis import reachable_blocks
from repro.compiler.ir import Const, Function, Instr, Module, Operand, PTR
from repro.compiler.pass_manager import FunctionPass, TargetInfo, register
from repro.compiler.passes.utils import remove_trivial_phis, resolve_chain
from repro.compiler.statistics import StatsCollector

__all__ = ["Mem2Reg", "SROA", "promote_allocas"]


class _Symbol:
    """Placeholder for 'value of variable ``var`` at start of block ``blk``'."""

    __slots__ = ("var", "blk")

    def __init__(self, var: str, blk: str) -> None:
        self.var = var
        self.blk = blk


def _promotable_allocas(fn: Function, reach: Set[str]) -> List[Instr]:
    """Scalar allocas whose only uses are direct loads and stores in
    reachable blocks."""
    allocas = [
        i
        for i in fn.instructions()
        if i.op == "alloca" and i.attrs.get("count", 1) == 1 and not i.attrs["elem_ty"].is_vec
    ]
    if not allocas:
        return []
    candidates = {i.res: i for i in allocas}
    for bname, blk in fn.blocks.items():
        in_reach = bname in reach
        for inst in blk.instrs:
            for pos, operand in enumerate(list(inst.operands())):
                if not isinstance(operand, str) or operand not in candidates:
                    continue
                ok = (
                    in_reach
                    and (
                        (inst.op == "load" and pos == 0)
                        or (inst.op == "store" and pos == 1)
                        or inst.op == "alloca"
                    )
                )
                if not ok:
                    candidates.pop(operand, None)
    return [candidates[r] for r in candidates]


def promote_allocas(
    fn: Function, stats, pass_name: str = "mem2reg"
) -> int:
    """Shared promotion engine for mem2reg and sroa; returns #promoted."""
    reach = reachable_blocks(fn)
    allocas = _promotable_allocas(fn, reach)
    if not allocas:
        return 0

    var_ty = {a.res: a.attrs["elem_ty"] for a in allocas}
    vars_set = set(var_ty)

    # ---- phase 1: linear scan of every reachable block -------------------
    repl: Dict[str, object] = {}  # load result -> Operand | _Symbol
    end_val: Dict[Tuple[str, str], object] = {}  # (var, blk) -> Operand | _Symbol
    doomed: Set[int] = set()
    store_counts: Dict[str, int] = {v: 0 for v in vars_set}
    load_counts: Dict[str, int] = {v: 0 for v in vars_set}
    blocks_with_access: Dict[str, Set[str]] = {v: set() for v in vars_set}

    for bname in fn.blocks:
        if bname not in reach:
            continue
        cur: Dict[str, object] = {}
        for inst in fn.blocks[bname].instrs:
            if inst.op == "load" and isinstance(inst.args[0], str) and inst.args[0] in vars_set:
                var = inst.args[0]
                repl[inst.res] = cur.get(var, _Symbol(var, bname))
                doomed.add(id(inst))
                load_counts[var] += 1
                blocks_with_access[var].add(bname)
            elif inst.op == "store" and isinstance(inst.args[1], str) and inst.args[1] in vars_set:
                var = inst.args[1]
                val: object = inst.args[0]
                if isinstance(val, str) and val in repl:
                    val = repl[val]
                cur[var] = val
                doomed.add(id(inst))
                store_counts[var] += 1
                blocks_with_access[var].add(bname)
            elif inst.op == "alloca" and inst.res in vars_set:
                doomed.add(id(inst))
        for var, val in cur.items():
            end_val[(var, bname)] = val

    # ---- phase 2: resolve start-of-block symbols, creating phis ----------
    preds_all = fn.predecessors()
    start_memo: Dict[Tuple[str, str], Operand] = {}
    created_phis: List[Tuple[str, Instr]] = []
    entry_name = fn.entry.name

    def zero(var: str) -> Const:
        ty = var_ty[var]
        return Const(0.0 if ty.is_float else 0, ty)

    def value_at_start(var: str, blk: str) -> Operand:
        key = (var, blk)
        if key in start_memo:
            return start_memo[key]
        rpreds = [p for p in preds_all[blk] if p in reach]
        if blk == entry_name or not rpreds:
            start_memo[key] = zero(var)
            return start_memo[key]
        if len(rpreds) == 1:
            start_memo[key] = value_at_end(var, rpreds[0])
            return start_memo[key]
        phi = Instr("phi", fn.fresh("m2r"), var_ty[var], (), incoming=[])
        start_memo[key] = phi.res
        created_phis.append((blk, phi))
        phi.attrs["incoming"] = [(p, value_at_end(var, p)) for p in rpreds]
        return phi.res

    def value_at_end(var: str, blk: str) -> Operand:
        val = end_val.get((var, blk))
        if val is None:
            return value_at_start(var, blk)
        return _resolve(val)

    def _resolve(val: object) -> Operand:
        while True:
            if isinstance(val, _Symbol):
                val = value_at_start(val.var, val.blk)
            elif isinstance(val, str) and val in repl:
                val = repl[val]
            else:
                return val  # type: ignore[return-value]

    # resolve all replacements (may create phis on demand)
    final_repl: Dict[str, Operand] = {}
    for res in list(repl):
        final_repl[res] = _resolve(repl[res])
    # phi incomings may still hold symbols via end_val chains: resolve them
    for blk, phi in created_phis:
        phi.attrs["incoming"] = [(p, _resolve(v)) for p, v in phi.attrs["incoming"]]

    # ---- phase 3: mutate the function ------------------------------------
    for blk, phi in created_phis:
        fn.blocks[blk].instrs.insert(0, phi)
    for b in fn.blocks.values():
        b.instrs = [i for i in b.instrs if id(i) not in doomed]
    fn.replace_all_uses(final_repl)
    n_trivial = remove_trivial_phis(fn)

    stats.bump(pass_name, "NumPromoted", len(allocas))
    stats.bump(pass_name, "NumPHIInsert", max(0, len(created_phis) - n_trivial))
    stats.bump(
        pass_name,
        "NumSingleStore",
        sum(1 for v in vars_set if store_counts[v] == 1),
    )
    stats.bump(
        pass_name, "NumDeadAlloca", sum(1 for v in vars_set if load_counts[v] == 0)
    )
    stats.bump(
        pass_name,
        "NumLocalPromoted",
        sum(1 for v in vars_set if len(blocks_with_access[v]) <= 1),
    )
    return len(allocas)


@register
class Mem2Reg(FunctionPass):
    """Promote scalar allocas to SSA registers."""

    name = "mem2reg"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        return promote_allocas(fn, stats, self.name) > 0


@register
class SROA(FunctionPass):
    """Scalar replacement of aggregates, then promotion."""

    name = "sroa"
    #: arrays larger than this are left alone (LLVM's scalarisation limit)
    max_elements = 8

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = self._split_arrays(fn, stats)
        promoted = promote_allocas(fn, stats, self.name)
        return changed or promoted > 0

    def _split_arrays(self, fn: Function, stats: StatsCollector) -> bool:
        # array allocas whose address is used only as gep base with constant
        # indices, and each gep result used only by load/store
        arrays = {
            i.res: i
            for i in fn.instructions()
            if i.op == "alloca" and 1 < i.attrs.get("count", 1) <= self.max_elements
        }
        if not arrays:
            return False
        gep_of: Dict[str, Tuple[str, int]] = {}
        for inst in fn.instructions():
            for pos, operand in enumerate(list(inst.operands())):
                if not isinstance(operand, str):
                    continue
                if operand in arrays:
                    in_range = (
                        inst.op == "gep"
                        and pos == 0
                        and isinstance(inst.args[1], Const)
                        and 0 <= inst.args[1].value < arrays[operand].attrs["count"]
                    )
                    if in_range:
                        gep_of[inst.res] = (operand, inst.args[1].value)
                    else:
                        arrays.pop(operand, None)
                elif operand in gep_of:
                    base = gep_of[operand][0]
                    ok = (inst.op == "load" and pos == 0) or (inst.op == "store" and pos == 1)
                    if not ok:
                        arrays.pop(base, None)
        if not arrays:
            return False
        # rewrite: one scalar alloca per element
        n_split = 0
        for base, alloca in arrays.items():
            count = alloca.attrs["count"]
            elem_ty = alloca.attrs["elem_ty"]
            slots = [fn.fresh(f"sroa.{k}") for k in range(count)]
            # place scalar allocas right before the array alloca
            for blk in fn.blocks.values():
                if any(i is alloca for i in blk.instrs):
                    idx = next(k for k, i in enumerate(blk.instrs) if i is alloca)
                    news = [
                        Instr("alloca", slots[k], PTR, (), elem_ty=elem_ty, count=1)
                        for k in range(count)
                    ]
                    blk.instrs[idx:idx + 1] = news
                    break
            mapping: Dict[str, Operand] = {}
            doomed: Set[int] = set()
            for blk in fn.blocks.values():
                for inst in blk.instrs:
                    if inst.op == "gep" and inst.res in gep_of and gep_of[inst.res][0] == base:
                        idx_c = gep_of[inst.res][1]
                        if 0 <= idx_c < count:
                            mapping[inst.res] = slots[idx_c]
                            doomed.add(id(inst))
            for blk in fn.blocks.values():
                blk.instrs = [i for i in blk.instrs if id(i) not in doomed]
            fn.replace_all_uses(mapping)
            n_split += 1
        stats.bump(self.name, "NumReplaced", n_split)
        return n_split > 0
