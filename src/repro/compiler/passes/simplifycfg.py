"""CFG cleanup passes: ``simplifycfg``, ``jump-threading``, ``sink``,
``correlated-propagation``."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.analysis import (
    find_loops,
    is_pure_instr,
    reachable_blocks,
)
from repro.compiler.ir import Const, Function, Instr, Module, Operand
from repro.compiler.pass_manager import FunctionPass, TargetInfo, register
from repro.compiler.passes.utils import remove_trivial_phis
from repro.compiler.statistics import StatsCollector

__all__ = ["SimplifyCFG", "JumpThreading", "Sink", "CorrelatedPropagation"]


@register
class SimplifyCFG(FunctionPass):
    """Remove unreachable blocks, merge linear chains, fold trivial branches."""

    name = "simplifycfg"
    max_iterations = 8

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed_any = False
        for _ in range(self.max_iterations):
            changed = False
            changed |= self._remove_unreachable(fn, stats)
            changed |= self._fold_branches(fn, stats)
            changed |= self._merge_chains(fn, stats)
            changed |= self._skip_trampolines(fn, stats)
            remove_trivial_phis(fn)
            if not changed:
                break
            changed_any = True
        return changed_any

    def _remove_unreachable(self, fn: Function, stats: StatsCollector) -> bool:
        reach = reachable_blocks(fn)
        dead = [b for b in fn.blocks if b not in reach]
        if not dead:
            return False
        fn.remove_blocks(dead)
        stats.bump(self.name, "NumSimpl", len(dead))
        return True

    def _fold_branches(self, fn: Function, stats: StatsCollector) -> bool:
        changed = False
        for blk in fn.blocks.values():
            term = blk.terminator
            if term is None or term.op != "br":
                continue
            t, f = term.attrs["targets"]
            cond = term.args[0]
            if t == f:
                term.op = "jmp"
                term.args = []
                term.attrs = {"target": t}
                changed = True
                stats.bump(self.name, "NumSimpl")
            elif isinstance(cond, Const):
                target_blk = t if cond.value else f
                other = f if cond.value else t
                term.op = "jmp"
                term.args = []
                term.attrs = {"target": target_blk}
                self._drop_phi_edge(fn, other, blk.name)
                changed = True
                stats.bump(self.name, "NumSimpl")
        return changed

    @staticmethod
    def _drop_phi_edge(fn: Function, block: str, pred: str) -> None:
        for inst in fn.blocks[block].phis():
            inst.attrs["incoming"] = [(b, v) for b, v in inst.attrs["incoming"] if b != pred]

    def _merge_chains(self, fn: Function, stats: StatsCollector) -> bool:
        """Merge B into A when A ends `jmp B` and B's only predecessor is A."""
        changed = False
        preds = fn.predecessors()
        for aname in list(fn.blocks):
            if aname not in fn.blocks:
                continue
            ablk = fn.blocks[aname]
            term = ablk.terminator
            if term is None or term.op != "jmp":
                continue
            bname = term.attrs["target"]
            if bname == aname or bname not in fn.blocks:
                continue
            if len(preds[bname]) != 1 or bname == fn.entry.name:
                continue
            bblk = fn.blocks[bname]
            # resolve B's phis: single pred means each phi is trivial
            mapping: Dict[str, Operand] = {}
            body: List[Instr] = []
            for inst in bblk.instrs:
                if inst.op == "phi":
                    incoming = [(b, v) for b, v in inst.attrs["incoming"] if b == aname]
                    mapping[inst.res] = incoming[0][1] if incoming else Const(0, inst.ty)
                else:
                    body.append(inst)
            ablk.instrs = ablk.instrs[:-1] + body  # drop A's jmp
            # successors of B now see A as predecessor
            for succ in bblk.successors():
                if succ in fn.blocks:
                    for inst in fn.blocks[succ].phis():
                        inst.attrs["incoming"] = [
                            (aname if b == bname else b, v) for b, v in inst.attrs["incoming"]
                        ]
            del fn.blocks[bname]
            if mapping:
                from repro.compiler.passes.utils import resolve_chain

                fn.replace_all_uses({k: resolve_chain(mapping, v) for k, v in mapping.items()})
            preds = fn.predecessors()
            changed = True
            stats.bump(self.name, "NumSimpl")
        return changed

    def _skip_trampolines(self, fn: Function, stats: StatsCollector) -> bool:
        """Retarget branches through blocks containing only a jmp."""
        changed = False
        preds = fn.predecessors()
        for tname in list(fn.blocks):
            if tname == fn.entry.name or tname not in fn.blocks:
                continue
            tblk = fn.blocks[tname]
            if len(tblk.instrs) != 1:
                continue
            term = tblk.terminator
            if term is None or term.op != "jmp":
                continue
            dest = term.attrs["target"]
            if dest == tname:
                continue
            dest_blk = fn.blocks[dest]
            dest_phis = dest_blk.phis()
            for p in list(preds[tname]):
                if p not in fn.blocks:
                    continue
                # avoid creating duplicate phi edges when p already reaches dest
                if dest_phis and any(b == p for phi in dest_phis for b, _ in phi.attrs["incoming"]):
                    continue
                pterm = fn.blocks[p].terminator
                if pterm is None:
                    continue
                # conditional branches where both arms would collapse need care
                pterm.retarget(tname, dest)
                for phi in dest_phis:
                    via = next((v for b, v in phi.attrs["incoming"] if b == tname), None)
                    if via is not None:
                        phi.attrs["incoming"].append((p, via))
                changed = True
                stats.bump(self.name, "NumSimpl")
            # if the trampoline became unreachable it is removed next round
            preds = fn.predecessors()
            if not preds[tname]:
                for phi in dest_phis:
                    phi.attrs["incoming"] = [
                        (b, v) for b, v in phi.attrs["incoming"] if b != tname
                    ]
                del fn.blocks[tname]
        return changed


@register
class JumpThreading(FunctionPass):
    """Thread branches whose condition is a phi of constants."""

    name = "jump-threading"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        for bname in list(fn.blocks):
            blk = fn.blocks.get(bname)
            if blk is None or bname == fn.entry.name:
                continue
            term = blk.terminator
            if term is None or term.op != "br" or not isinstance(term.args[0], str):
                continue
            phis = blk.phis()
            # shape: [phi(cond), br phi] with no other instructions
            if len(blk.instrs) != len(phis) + 1 or len(phis) != 1:
                continue
            phi = phis[0]
            if phi.res != term.args[0]:
                continue
            t, f = term.attrs["targets"]
            if t == bname or f == bname:
                continue
            const_edges = [
                (p, v) for p, v in phi.attrs["incoming"] if isinstance(v, Const)
            ]
            if not const_edges:
                continue
            preds = fn.predecessors()
            for pred_name, cval in const_edges:
                dest = t if cval.value else f
                if pred_name not in fn.blocks:
                    continue
                dest_blk = fn.blocks[dest]
                # avoid duplicate phi edges in the destination
                if any(b == pred_name for pi in dest_blk.phis() for b, _ in pi.attrs["incoming"]):
                    continue
                pterm = fn.blocks[pred_name].terminator
                if pterm is None:
                    continue
                pterm.retarget(bname, dest)
                for pi in dest_blk.phis():
                    via = next((v for b, v in pi.attrs["incoming"] if b == bname), None)
                    if via is not None:
                        pi.attrs["incoming"].append((pred_name, via))
                phi.attrs["incoming"] = [
                    (b, v) for b, v in phi.attrs["incoming"] if b != pred_name
                ]
                stats.bump(self.name, "NumThreads")
                changed = True
        if changed:
            remove_trivial_phis(fn)
        return changed


@register
class Sink(FunctionPass):
    """Sink pure single-use instructions into the successor that uses them."""

    name = "sink"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        loops = find_loops(fn)
        depth: Dict[str, int] = {}
        for loop in loops:
            for b in loop.blocks:
                depth[b] = max(depth.get(b, 0), loop.depth)

        # where is each register used, and how many times?
        use_sites: Dict[str, List[Tuple[str, Instr]]] = {}
        for bn, blk in fn.blocks.items():
            for inst in blk.instrs:
                for reg in inst.reg_operands():
                    use_sites.setdefault(reg, []).append((bn, inst))

        moved = 0
        for bname, blk in list(fn.blocks.items()):
            succs = blk.successors()
            if len(succs) < 2:
                continue
            preds = fn.predecessors()
            for inst in list(blk.instrs[:-1]):
                if inst.res is None or not is_pure_instr(inst, module):
                    continue
                if inst.op == "phi":
                    continue
                sites = use_sites.get(inst.res, [])
                if len(sites) != 1:
                    continue
                use_blk, use_inst = sites[0]
                if use_blk == bname or use_inst.op == "phi":
                    continue
                if use_blk not in succs or len(preds[use_blk]) != 1:
                    continue
                if depth.get(use_blk, 0) > depth.get(bname, 0):
                    continue  # never sink into a deeper loop
                # operand defined in this block after the sink point? no:
                # we sink to the *front* of the successor so order-safe
                blk.instrs.remove(inst)
                target_blk = fn.blocks[use_blk]
                n_phis = len(target_blk.phis())
                target_blk.instrs.insert(n_phis, inst)
                use_sites[inst.res] = [(use_blk, use_inst)]
                moved += 1
        stats.bump(self.name, "NumSunk", moved)
        return moved > 0


@register
class CorrelatedPropagation(FunctionPass):
    """Replace a value with the constant it was compared equal to on the
    edge that established the equality."""

    name = "correlated-propagation"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        defs = fn.defs()
        preds = fn.predecessors()
        n = 0
        for blk in fn.blocks.values():
            term = blk.terminator
            if term is None or term.op != "br" or not isinstance(term.args[0], str):
                continue
            cmp_inst = defs.get(term.args[0])
            if cmp_inst is None or cmp_inst.op != "icmp" or cmp_inst.attrs["pred"] != "eq":
                continue
            x, cst = cmp_inst.args
            if not (isinstance(x, str) and isinstance(cst, Const)):
                continue
            true_blk = term.attrs["targets"][0]
            if true_blk == blk.name or len(preds[true_blk]) != 1:
                continue
            # inside the single-predecessor true block, x == cst
            for inst in fn.blocks[true_blk].instrs:
                if inst.op == "phi":
                    continue
                for i, a in enumerate(inst.args):
                    if a == x:
                        inst.args[i] = cst
                        n += 1
        stats.bump(self.name, "NumReplacements", n)
        return n > 0
