"""Vectorisation passes: ``slp-vectorizer``, ``loop-vectorize``,
``vector-combine``.

The SLP vectoriser implements the paper's motivating example end-to-end: a
manually-unrolled dot-product reduction (Fig 5.1a) becomes a vector
multiply + horizontal reduction *only if* ``mem2reg`` ran first (the chain
must be in registers) and ``instcombine`` did *not* widen the arithmetic to
i64 in between (too few i64 lanes fit a vector register, so profitability
fails).  Both vectorisers report the statistics CITROEN's cost model keys
on (``NumVectorInstructions``, ``LoopsVectorized``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compiler.analysis import (
    constant_trip_count,
    find_loops,
    has_side_effects,
    use_counts,
)
from repro.compiler.ir import (
    Const,
    Function,
    I64,
    Instr,
    Module,
    Operand,
    PTR,
    Type,
    vec,
)
from repro.compiler.pass_manager import FunctionPass, TargetInfo, register
from repro.compiler.passes.loops import _canonical_loop, _defined_in_loop
from repro.compiler.statistics import StatsCollector

__all__ = ["SLPVectorizer", "LoopVectorize", "VectorCombine"]


def _load_lane(
    inst: Instr, defs: Dict[str, Instr]
) -> Optional[Tuple[Tuple[Operand, int, Type, Optional[Type]], List[Instr]]]:
    """Match ``[sext] load (gep base, const)``.

    Returns ``((base, offset, loaded_ty, sext_ty), involved_instrs)`` or
    ``None``.
    """
    involved: List[Instr] = []
    sext_ty: Optional[Type] = None
    cur = inst
    if cur.op == "sext":
        sext_ty = cur.ty
        src = cur.args[0]
        if not isinstance(src, str):
            return None
        nxt = defs.get(src)
        if nxt is None:
            return None
        involved.append(cur)
        cur = nxt
    if cur.op != "load":
        return None
    involved.append(cur)
    ptr = cur.args[0]
    if not isinstance(ptr, str):
        return None
    g = defs.get(ptr)
    if g is None:
        return None
    if g.op == "gep" and isinstance(g.args[1], Const):
        involved.append(g)
        return (g.args[0], g.args[1].value, cur.ty, sext_ty), involved
    if g.op in ("gaddr", "alloca"):
        return (ptr, 0, cur.ty, sext_ty), involved
    return None


@register
class SLPVectorizer(FunctionPass):
    """Superword-level parallelism: pack isomorphic scalar reductions."""

    name = "slp-vectorizer"
    min_chain = 4

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        for blk in list(fn.blocks.values()):
            if self._vectorize_block(fn, module, blk, stats, target):
                changed = True
        return changed

    def _vectorize_block(self, fn, module, blk, stats, target) -> bool:
        defs = fn.defs()
        uses = use_counts(fn)
        pos = {id(i): k for k, i in enumerate(blk.instrs)}
        in_block = {i.res for i in blk.instrs if i.res is not None}
        changed = False

        # --- find accumulation chains: acc_{j+1} = add/fadd(acc_j, leaf_j)
        chains: List[List[Instr]] = []
        chain_heads: Set[str] = set()
        for inst in blk.instrs:
            if inst.op not in ("add", "fadd") or inst.ty.is_vec:
                continue
            if inst.res in chain_heads:
                continue
            chain = [inst]
            cur = inst
            while True:
                nxt = None
                for cand in blk.instrs:
                    if (
                        cand.op == cur.op
                        and cand.res is not None
                        and not cand.ty.is_vec
                        and isinstance(cand.args[0], str)
                        and cand.args[0] == cur.res
                        and uses.get(cur.res, 0) == 1
                    ):
                        nxt = cand
                        break
                if nxt is None:
                    break
                chain.append(nxt)
                cur = nxt
            if len(chain) >= self.min_chain:
                chains.append(chain)
                chain_heads.update(c.res for c in chain)

        for chain in chains:
            if self._vectorize_reduction(fn, module, blk, chain, defs, uses, pos, stats, target):
                changed = True
                # block contents changed; recompute bookkeeping
                defs = fn.defs()
                uses = use_counts(fn)
                pos = {id(i): k for k, i in enumerate(blk.instrs)}

        if self._vectorize_store_group(fn, module, blk, stats, target):
            changed = True
        return changed

    # -- reduction vectorisation ------------------------------------------
    def _vectorize_reduction(
        self, fn, module, blk, chain, defs, uses, pos, stats, target
    ) -> bool:
        op = chain[0].op
        ty = chain[0].ty
        k = len(chain)
        init = chain[0].args[0]  # running value entering the chain
        leaves = [c.args[1] for c in chain]
        if any(not isinstance(l, str) for l in leaves):
            return False
        leaf_defs = [defs.get(l) for l in leaves]
        if any(d is None for d in leaf_defs):
            return False
        # leaves must be single-use and isomorphic
        if any(uses.get(l, 0) != 1 for l in leaves):
            return False
        shapes = {d.op for d in leaf_defs}
        if len(shapes) != 1:
            return False
        shape = next(iter(shapes))
        if any(d.ty != ty for d in leaf_defs):
            return False

        if shape in ("mul", "fmul"):
            lanes_a, lanes_b = [], []
            involved: List[Instr] = list(chain) + list(leaf_defs)
            for d in leaf_defs:
                la = self._resolve_lane(d.args[0], defs, involved)
                lb = self._resolve_lane(d.args[1], defs, involved)
                if la is None or lb is None:
                    return False
                lanes_a.append(la)
                lanes_b.append(lb)
            prepared = self._prepare_operands(
                fn, blk, [lanes_a, lanes_b], k, ty, pos, chain, involved, module, target, stats
            )
            if prepared is None:
                return False
            (va, vb), insert_at = prepared
            vty = vec(ty, k)
            vm = Instr(shape, fn.fresh("slp.mul"), vty, (va, vb))
            red = Instr("reduce", fn.fresh("slp.red"), ty, (vm.res,), rop="add")
            total = Instr(op, chain[-1].res, ty, (init, red.res))
            self._commit(fn, blk, chain, [vm, red, total], insert_at, stats)
            stats.bump(self.name, "NumVectorInstructions", 3)
            stats.bump(self.name, "NumVecBundle")
            return True
        if shape == "sext" and all(
            isinstance(d.args[0], str)
            and defs.get(d.args[0]) is not None
            and defs[d.args[0]].op in ("mul", "fmul")
            for d in leaf_defs
        ):
            # `acc += sext(a*b)` — vectorise the multiply at its narrow type
            # and widen the whole vector once; profitability follows the
            # *multiply* element type, so instcombine's widening to i64
            # genuinely destroys this opportunity (Fig 5.1)
            muls = [defs[d.args[0]] for d in leaf_defs]
            if any(uses.get(m.res, 0) != 1 for m in muls):
                return False
            mul_ty = muls[0].ty
            mshape = muls[0].op
            if any(m.ty != mul_ty or m.op != mshape for m in muls):
                return False
            lanes_a, lanes_b = [], []
            involved = list(chain) + list(leaf_defs) + list(muls)
            for m in muls:
                la = self._resolve_lane(m.args[0], defs, involved)
                lb = self._resolve_lane(m.args[1], defs, involved)
                if la is None or lb is None:
                    return False
                lanes_a.append(la)
                lanes_b.append(lb)
            prepared = self._prepare_operands(
                fn, blk, [lanes_a, lanes_b], k, mul_ty, pos, chain, involved, module, target, stats
            )
            if prepared is None:
                return False
            (va, vb), insert_at = prepared
            vm = Instr(mshape, fn.fresh("slp.mul"), vec(mul_ty, k), (va, vb))
            wide = Instr("sext", fn.fresh("slp.widen"), vec(ty, k), (vm.res,))
            red = Instr("reduce", fn.fresh("slp.red"), ty, (wide.res,), rop="add")
            total = Instr(op, chain[-1].res, ty, (init, red.res))
            self._commit(fn, blk, chain, [vm, wide, red, total], insert_at, stats)
            stats.bump(self.name, "NumVectorInstructions", 4)
            stats.bump(self.name, "NumVecBundle")
            return True
        if shape in ("load", "sext"):
            lanes = []
            involved = list(chain)
            for l in leaves:
                lane = self._resolve_lane(l, defs, involved)
                if lane is None:
                    return False
                lanes.append(lane)
            prepared = self._prepare_operands(
                fn, blk, [lanes], k, ty, pos, chain, involved, module, target, stats
            )
            if prepared is None:
                return False
            (vv,), insert_at = prepared
            red = Instr("reduce", fn.fresh("slp.red"), ty, (vv,), rop="add")
            total = Instr(op, chain[-1].res, ty, (init, red.res))
            self._commit(fn, blk, chain, [red, total], insert_at, stats)
            stats.bump(self.name, "NumVectorInstructions", 2)
            stats.bump(self.name, "NumVecBundle")
            return True
        return False

    def _resolve_lane(self, operand, defs, involved: Optional[List[Instr]] = None):
        if not isinstance(operand, str):
            return None
        d = defs.get(operand)
        if d is None:
            return None
        matched = _load_lane(d, defs)
        if matched is None:
            return None
        lane, instrs = matched
        if involved is not None:
            involved.extend(instrs)
        return lane

    def _prepare_operands(
        self, fn, blk, lane_groups, k, ty, pos, chain, involved, module, target, stats
    ):
        """Validate consecutive-lane groups; emit vloads (+sext).

        Returns ``([vector operand per group], insert_index)`` or ``None``.
        """
        # profitability: enough lanes of this element type per register
        elem_bits = ty.bits
        lanes_per_reg = max(1, target.vector_bits // max(1, elem_bits))
        if lanes_per_reg < target.min_vector_lanes:
            stats.bump(self.name, "NumUnprofitable")
            return None

        plans = []
        for lanes in lane_groups:
            base0, off0, lty0, sext0 = lanes[0]
            offs = []
            for base, off, lty, sext in lanes:
                if repr(base) != repr(base0) or lty != lty0 or sext != sext0:
                    return None
                offs.append(off)
            order = sorted(range(k), key=lambda i: offs[i])
            sorted_offs = [offs[i] for i in order]
            if sorted_offs != list(range(sorted_offs[0], sorted_offs[0] + k)):
                return None
            plans.append((base0, sorted_offs[0], lty0, sext0, order))
        # all groups must agree on lane order so products pair correctly
        orders = {tuple(p[4]) for p in plans}
        if len(orders) != 1:
            return None

        # legality: no side effects between the first involved instruction
        # (earliest load being widened) and the end of the chain
        involved_ids = {id(i) for i in involved}
        window = [pos[id(i)] for i in involved if id(i) in pos]
        if not window:
            return None
        first_pos = min(window)
        last_pos = max(pos[id(c)] for c in chain)
        for inst in blk.instrs[first_pos : last_pos + 1]:
            if id(inst) not in involved_ids and has_side_effects(inst, module):
                return None

        insert_at = min(pos[id(c)] for c in chain)
        vec_ops = []
        new_pre: List[Instr] = []
        for base, start_off, lty, sext_ty, _ in plans:
            addr = base
            if start_off != 0:
                g = Instr(
                    "gep",
                    fn.fresh("slp.gep"),
                    ty=PTR,
                    args=(base, Const(start_off, I64)),
                    elem_ty=lty,
                )
                new_pre.append(g)
                addr = g.res
            vl = Instr("vload", fn.fresh("slp.ld"), vec(lty, k), (addr,), elem_ty=lty)
            new_pre.append(vl)
            last = vl.res
            if sext_ty is not None:
                sx = Instr("sext", fn.fresh("slp.sx"), vec(sext_ty, k), (last,))
                new_pre.append(sx)
                last = sx.res
            vec_ops.append(last)
        blk.instrs[insert_at:insert_at] = new_pre
        return vec_ops, insert_at + len(new_pre)

    def _commit(self, fn, blk, chain, new_instrs, insert_at, stats):
        doomed = {id(c) for c in chain}
        # leaf computations (muls / loads / sexts / geps) that become dead are
        # swept here, as LLVM's SLP does, so statistics reflect the savings
        blk.instrs = [i for i in blk.instrs if id(i) not in doomed]
        blk.instrs[insert_at:insert_at] = new_instrs
        self._sweep_dead(fn, blk)

    @staticmethod
    def _sweep_dead(fn, blk):
        from repro.compiler.analysis import use_counts as _uc

        for _ in range(6):
            uses = _uc(fn)
            kept = []
            removed = False
            for inst in blk.instrs:
                if (
                    inst.res is not None
                    and inst.op in ("load", "sext", "gep", "mul", "fmul", "add", "fadd")
                    and uses.get(inst.res, 0) == 0
                ):
                    removed = True
                    continue
                kept.append(inst)
            blk.instrs = kept
            if not removed:
                break

    # -- store-group vectorisation ------------------------------------------
    def _vectorize_store_group(self, fn, module, blk, stats, target) -> bool:
        defs = fn.defs()
        uses = use_counts(fn)
        stores = [i for i in blk.instrs if i.op == "store"]
        if len(stores) < self.min_chain:
            return False
        # group stores by base with constant offsets
        groups: Dict[str, List[Tuple[int, Instr]]] = {}
        for st in stores:
            ptr = st.args[1]
            if not isinstance(ptr, str):
                continue
            g = defs.get(ptr)
            if g is None:
                continue
            if g.op == "gep" and isinstance(g.args[1], Const):
                groups.setdefault(repr(g.args[0]) + "|" + repr(g.attrs["elem_ty"]), []).append(
                    (g.args[1].value, st)
                )
        for key, members in groups.items():
            members.sort(key=lambda t: t[0])  # ties (same offset) are fine:
            offs = [o for o, _ in members]  # duplicates fail the range check
            k = len(members)
            if k < self.min_chain:
                continue
            if offs != list(range(offs[0], offs[0] + k)):
                continue
            # values must be isomorphic binops of consecutive loads
            vals = [st.args[0] for _, st in members]
            if any(not isinstance(v, str) or uses.get(v, 0) != 1 for v in vals):
                continue
            vdefs = [defs.get(v) for v in vals]
            if any(d is None for d in vdefs):
                continue
            ops = {d.op for d in vdefs}
            if len(ops) != 1:
                continue
            vop = next(iter(ops))
            if vop not in ("add", "sub", "mul", "and", "or", "xor", "fadd", "fsub", "fmul"):
                continue
            ty = vdefs[0].ty
            if any(d.ty != ty for d in vdefs) or ty.is_vec:
                continue
            lanes_per_reg = max(1, target.vector_bits // max(1, ty.bits))
            if lanes_per_reg < 2:
                stats.bump(self.name, "NumUnprofitable")
                continue
            involved: List[Instr] = list(vdefs) + [st for _, st in members]
            lanes_a = [self._resolve_lane(d.args[0], defs, involved) for d in vdefs]
            lanes_b = [self._resolve_lane(d.args[1], defs, involved) for d in vdefs]
            if any(l is None for l in lanes_a) or any(l is None for l in lanes_b):
                continue
            ok = True
            for lanes in (lanes_a, lanes_b):
                base0, off0, lty0, sx0 = lanes[0]
                offs2 = [o for _, o, _, _ in lanes]
                if any(repr(b) != repr(base0) or t != lty0 or s != sx0 for b, _, t, s in lanes):
                    ok = False
                if sorted(offs2) != list(range(min(offs2), min(offs2) + k)) or offs2 != sorted(offs2):
                    ok = False
            if not ok:
                continue
            # alias legality: the destination must not overlap the sources
            dst_base = members[0][1].args[1]
            dst_gep = defs.get(dst_base) if isinstance(dst_base, str) else None
            if dst_gep is None:
                continue
            from repro.compiler.passes.loops import LoopIdiom

            dst_root = dst_gep.args[0]
            if not all(
                LoopIdiom._provably_noalias(fn, dst_root, lanes[0][0])
                for lanes in (lanes_a, lanes_b)
            ):
                continue
            # side-effect legality: nothing else writes between the first
            # involved load (the loads are sunk to the store position) and
            # the last member store
            pos = {id(i): n for n, i in enumerate(blk.instrs)}
            involved_ids = {id(i) for i in involved}
            window = [pos[id(i)] for i in involved if id(i) in pos]
            lo = min(pos[id(st)] for _, st in members)
            hi = max(pos[id(st)] for _, st in members)
            first = min(window + [lo])
            region = blk.instrs[first : hi + 1]
            if any(has_side_effects(i, module) and id(i) not in involved_ids for i in region):
                continue

            # emit
            elem_ty = dst_gep.attrs["elem_ty"]
            new: List[Instr] = []

            def vload_of(lanes):
                base, off, lty, sx = lanes[0]
                addr = base
                if off != 0:
                    g = Instr("gep", fn.fresh("slp.gep"), ty=PTR, args=(base, Const(off, I64)), elem_ty=lty)
                    new.append(g)
                    addr = g.res
                vl = Instr("vload", fn.fresh("slp.ld"), vec(lty, k), (addr,), elem_ty=lty)
                new.append(vl)
                out = vl.res
                if sx is not None:
                    s = Instr("sext", fn.fresh("slp.sx"), vec(sx, k), (out,))
                    new.append(s)
                    out = s.res
                return out

            va = vload_of(lanes_a)
            vb = vload_of(lanes_b)
            vo = Instr(vop, fn.fresh("slp.op"), vec(ty, k), (va, vb))
            new.append(vo)
            addr0 = dst_root
            if offs[0] != 0:
                g = Instr("gep", fn.fresh("slp.gep"), ty=PTR, args=(dst_root, Const(offs[0], I64)), elem_ty=elem_ty)
                new.append(g)
                addr0 = g.res
            new.append(Instr("vstore", None, args=(vo.res, addr0), elem_ty=elem_ty))
            doomed = {id(st) for _, st in members}
            blk.instrs = [i for i in blk.instrs if id(i) not in doomed]
            blk.instrs[lo:lo] = new
            self._sweep_dead(fn, blk)
            stats.bump(self.name, "NumVectorInstructions", 4)
            stats.bump(self.name, "NumVecBundle")
            return True
        return False


@register
class LoopVectorize(FunctionPass):
    """Vectorise canonical innermost counted loops by the register width."""

    name = "loop-vectorize"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        for loop in find_loops(fn):
            if any(b not in fn.blocks for b in loop.blocks):
                continue
            stats.bump(self.name, "LoopsAnalyzed")
            if self._try_vectorize(fn, module, loop, stats, target):
                changed = True
        return changed

    def _try_vectorize(self, fn, module, loop, stats, target) -> bool:
        canon = _canonical_loop(fn, loop)
        if canon is None:
            return False
        iv, start, step, trips, exit_block, body_entry = canon
        if step != 1 or trips < 2:
            return False
        if len(loop.blocks) != 3:  # header, body, latch
            return False
        latch = loop.latches[0]
        body = fn.blocks[body_entry]
        if body.phis():
            return False
        defs = fn.defs()
        hdr = fn.blocks[loop.header]
        phis = hdr.phis()
        iv_phi = defs[iv]
        red_phis = [p for p in phis if p.res != iv]
        if len(red_phis) > 1:
            return False

        # classify the body; build the vector type from the widest element
        inside = _defined_in_loop(fn, loop)
        body_vals: Set[str] = set()
        widest_bits = 8
        reduction_upd: Optional[Instr] = None
        red_phi = red_phis[0] if red_phis else None
        red_next: Optional[str] = None
        if red_phi is not None:
            for b, v in red_phi.attrs["incoming"]:
                if b in loop.blocks:
                    if not isinstance(v, str):
                        return False
                    red_next = v

        def is_iv_index(x) -> bool:
            if x == iv:
                return True
            if isinstance(x, str):
                d = defs.get(x)
                if d is not None and d.op == "sext" and d.args[0] == iv:
                    return True
            return False

        plan: List[Tuple[str, Instr]] = []
        for inst in body.instrs:
            op = inst.op
            if op == "jmp":
                continue
            if op == "gep":
                base = inst.args[0]
                if isinstance(base, str) and base in inside:
                    return False
                if not is_iv_index(inst.args[1]):
                    return False
                plan.append(("gep", inst))
                body_vals.add(inst.res)
                continue
            if op == "sext" and inst.args[0] == iv:
                plan.append(("ivcast", inst))
                body_vals.add(inst.res)
                continue
            if op == "load":
                ptr = inst.args[0]
                if not (isinstance(ptr, str) and ptr in body_vals):
                    return False
                plan.append(("vload", inst))
                body_vals.add(inst.res)
                widest_bits = max(widest_bits, inst.ty.bits)
                continue
            if op == "store":
                val, ptr = inst.args
                if not (isinstance(ptr, str) and ptr in body_vals):
                    return False
                if isinstance(val, str) and val not in body_vals and val in inside:
                    return False
                plan.append(("vstore", inst))
                continue
            if op in ("add", "sub", "mul", "and", "or", "xor", "shl", "ashr",
                      "fadd", "fsub", "fmul", "sext", "zext", "trunc"):
                for a in inst.args:
                    if isinstance(a, str) and a in inside and a not in body_vals:
                        if red_phi is not None and a == red_phi.res and inst.res == red_next:
                            continue  # the reduction update itself
                        return False
                if red_phi is not None and inst.res == red_next:
                    if inst.op not in ("add", "fadd"):
                        return False
                    plan.append(("reduce_upd", inst))
                else:
                    plan.append(("vop", inst))
                body_vals.add(inst.res)
                widest_bits = max(widest_bits, inst.ty.bits)
                continue
            return False

        if red_phi is not None and red_next not in body_vals:
            return False

        # memory legality: lanes are independent only when every pair of
        # accessed arrays is either the same base register (identical
        # addresses per lane) or provably disjoint; a shifted alias (two geps
        # into the same array at different offsets) carries values across
        # iterations and must block vectorisation
        from repro.compiler.passes.loops import LoopIdiom

        mem_bases: List[Operand] = []
        for kind, inst in plan:
            if kind in ("vload", "vstore"):
                ptr = inst.args[0] if kind == "vload" else inst.args[1]
                g = defs.get(ptr) if isinstance(ptr, str) else None
                if g is None or g.op != "gep":
                    return False
                mem_bases.append(g.args[0])
        for i in range(len(mem_bases)):
            for j in range(i + 1, len(mem_bases)):
                a, b = mem_bases[i], mem_bases[j]
                if isinstance(a, str) and a == b:
                    continue
                if not LoopIdiom._provably_noalias(fn, a, b):
                    return False

        vf = max(1, target.vector_bits // max(8, widest_bits))
        if vf < 2 or trips % vf != 0:
            return False
        # honour the minimum-lane profitability rule for reductions
        if red_phi is not None and vf < target.min_vector_lanes:
            stats.bump(self.name, "NumUnprofitable")
            return False
        # exit-block phis referencing the accumulator must be simple LCSSA
        # phis (single incoming) — we delete them and use the reduced value
        if red_phi is not None:
            for phi2 in fn.blocks[exit_block].phis():
                inc2 = phi2.attrs["incoming"]
                if any(bb == loop.header and vv == red_phi.res for bb, vv in inc2):
                    if len(inc2) != 1:
                        return False

        # latch must be [add iv, jmp]
        latch_blk = fn.blocks[latch]
        latch_real = [i for i in latch_blk.instrs if i.op not in ("jmp",)]
        iv_next_inst = None
        for b, v in iv_phi.attrs["incoming"]:
            if b in loop.blocks and isinstance(v, str):
                iv_next_inst = defs.get(v)
        if iv_next_inst is None or iv_next_inst.op != "add":
            return False
        if any(i is not iv_next_inst for i in latch_real):
            return False

        # ---- rewrite ----------------------------------------------------
        from repro.compiler.passes.utils import ensure_preheader

        pre = ensure_preheader(fn, loop.header, loop.blocks)
        pre_blk = fn.blocks[pre]
        vmap: Dict[str, Operand] = {}
        new_body: List[Instr] = []
        invar_splats: Dict[str, str] = {}

        def splat(v: Operand, sty: Type) -> Operand:
            if isinstance(v, Const):
                return Const((v.value,) * vf, vec(sty, vf))
            key = f"{v}|{sty!r}"
            if key not in invar_splats:
                bcast = Instr("broadcast", fn.fresh("lv.splat"), vec(sty, vf), (v,))
                pre_blk.instrs.insert(-1, bcast)
                invar_splats[key] = bcast.res
            return invar_splats[key]

        red_vec_phi: Optional[Instr] = None
        if red_phi is not None:
            zero = Const(
                (0.0,) * vf if red_phi.ty.is_float else (0,) * vf, vec(red_phi.ty, vf)
            )
            red_vec_phi = Instr(
                "phi", fn.fresh("lv.acc"), vec(red_phi.ty, vf), (), incoming=[]
            )

        for kind, inst in plan:
            if kind == "gep":
                g = inst.clone()
                new_body.append(g)
                vmap[inst.res] = g.res
            elif kind == "ivcast":
                s = inst.clone()
                new_body.append(s)
                vmap[inst.res] = s.res
            elif kind == "vload":
                ptr = vmap.get(inst.args[0], inst.args[0])
                vl = Instr("vload", fn.fresh("lv.ld"), vec(inst.ty, vf), (ptr,), elem_ty=inst.ty)
                new_body.append(vl)
                vmap[inst.res] = vl.res
            elif kind == "vstore":
                val, ptr = inst.args
                sval = vmap.get(val, None) if isinstance(val, str) else None
                if sval is None:
                    d = defs.get(val) if isinstance(val, str) else None
                    sty = d.ty if d is not None else inst_store_ty(fn, val)
                    sval = splat(val, sty)
                new_body.append(
                    Instr(
                        "vstore",
                        None,
                        args=(sval, vmap.get(ptr, ptr)),
                        elem_ty=inst.attrs.get("elem_ty") or _store_elem_ty(defs, ptr),
                    )
                )
            elif kind == "vop":
                vargs = []
                for a in inst.args:
                    if isinstance(a, str) and a in vmap:
                        vargs.append(vmap[a])
                    else:
                        src_ty = _operand_scalar_ty(fn, defs, a, inst)
                        vargs.append(splat(a, src_ty))
                vo = Instr(inst.op, fn.fresh("lv.op"), vec(inst.ty, vf), vargs, **dict(inst.attrs))
                new_body.append(vo)
                vmap[inst.res] = vo.res
            elif kind == "reduce_upd":
                other = inst.args[1] if inst.args[0] == red_phi.res else inst.args[0]
                vother = vmap.get(other, None) if isinstance(other, str) else None
                if vother is None:
                    src_ty = _operand_scalar_ty(fn, defs, other, inst)
                    vother = splat(other, src_ty)
                vo = Instr(inst.op, fn.fresh("lv.red"), vec(red_phi.ty, vf), (red_vec_phi.res, vother))
                new_body.append(vo)
                vmap[inst.res] = vo.res

        term = body.terminator
        body.instrs = new_body + [term]

        # iv steps by vf
        for i, a in enumerate(iv_next_inst.args):
            if isinstance(a, Const):
                iv_next_inst.args[i] = Const(vf, iv_phi.ty)

        red_final_scalar: Optional[str] = None
        if red_phi is not None and red_vec_phi is not None:
            init_val = None
            next_val = None
            for b, v in red_phi.attrs["incoming"]:
                if b in loop.blocks:
                    next_val = vmap.get(v, v)
                else:
                    init_val = v
            zero = Const(
                (0.0,) * vf if red_phi.ty.is_float else (0,) * vf, vec(red_phi.ty, vf)
            )
            red_vec_phi.attrs["incoming"] = [(pre, zero), (latch, next_val)]
            hdr.instrs.insert(0, red_vec_phi)
            # reduce in the exit block, then add the original init
            exit_blk = fn.blocks[exit_block]
            red = Instr("reduce", fn.fresh("lv.redout"), red_phi.ty, (red_vec_phi.res,), rop="add")
            fin = Instr(red_phi.ty.is_float and "fadd" or "add", fn.fresh("lv.fin"), red_phi.ty, (red.res, init_val))
            n_phis = len(exit_blk.phis())
            exit_blk.instrs.insert(n_phis, red)
            exit_blk.instrs.insert(n_phis + 1, fin)
            red_final_scalar = fin.res
            # LCSSA phis for the accumulator in the exit block: delete them
            # (their value IS the reduced scalar, which is defined below the
            # phi position and therefore cannot be a phi incoming)
            lcssa_map: Dict[str, Operand] = {}
            drop: List[Instr] = []
            for phi2 in exit_blk.phis():
                inc2 = phi2.attrs["incoming"]
                if any(bb == loop.header and vv == red_phi.res for bb, vv in inc2):
                    lcssa_map[phi2.res] = red_final_scalar
                    drop.append(phi2)
            if drop:
                exit_blk.instrs = [i for i in exit_blk.instrs if i not in drop]
            # replace out-of-loop uses of the scalar accumulator
            for bname, b2 in fn.blocks.items():
                if bname in loop.blocks:
                    continue
                for inst2 in b2.instrs:
                    if inst2 is red or inst2 is fin:
                        continue
                    if inst2.op == "phi":
                        if bname != exit_block:
                            inst2.attrs["incoming"] = [
                                (bb, red_final_scalar if vv == red_phi.res else vv)
                                for bb, vv in inst2.attrs["incoming"]
                            ]
                    else:
                        inst2.replace_uses({red_phi.res: red_final_scalar})
                    inst2.replace_uses(lcssa_map)
                    if inst2.op == "phi":
                        inst2.attrs["incoming"] = [
                            (bb, lcssa_map.get(vv, vv) if isinstance(vv, str) else vv)
                            for bb, vv in inst2.attrs["incoming"]
                        ]
            # drop the scalar accumulator phi and its update
            hdr.instrs = [i for i in hdr.instrs if i is not red_phi]
            # its update instruction was consumed into the plan's reduce_upd

        stats.bump(self.name, "LoopsVectorized")
        stats.bump(self.name, "NumVectorInstructions", len(new_body))
        return True


def _store_elem_ty(defs, ptr):
    d = defs.get(ptr) if isinstance(ptr, str) else None
    if d is not None and d.op == "gep":
        return d.attrs["elem_ty"]
    if d is not None and d.op == "alloca":
        return d.attrs["elem_ty"]
    from repro.compiler.ir import I32

    return I32


def inst_store_ty(fn, val):
    """Fallback scalar type for a stored operand."""
    from repro.compiler.ir import I32

    if isinstance(val, Const):
        return val.ty
    return I32


def _operand_scalar_ty(fn, defs, a, inst):
    if isinstance(a, Const):
        return a.ty
    d = defs.get(a)
    if d is not None:
        return d.ty
    for p, t in fn.params:
        if p == a:
            return t
    return inst.ty


@register
class VectorCombine(FunctionPass):
    """Local vector cleanups (extract-of-broadcast, splat folding)."""

    name = "vector-combine"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        defs = fn.defs()
        mapping: Dict[str, Operand] = {}
        for blk in fn.blocks.values():
            kept: List[Instr] = []
            for inst in blk.instrs:
                inst.replace_uses(mapping)
                if inst.op == "extract" and isinstance(inst.args[0], str):
                    d = defs.get(inst.args[0])
                    if d is not None and d.op == "broadcast":
                        mapping[inst.res] = d.args[0]
                        stats.bump(self.name, "NumScalarized")
                        continue
                kept.append(inst)
            blk.instrs = kept
        if mapping:
            fn.replace_all_uses(mapping)
        return bool(mapping)
