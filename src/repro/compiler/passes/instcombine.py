"""Peephole instruction combining and algebraic simplification passes.

``instcombine`` here implements the subset of LLVM's combiner that drives
the paper's motivating interaction (Fig 5.1): merging sign-extension chains
and *widening* ``sext(mul(sext a, sext b))`` into an i64 multiply.  The
widening is semantics-preserving (an i16×i16 product cannot overflow i32)
but it changes the element types later vectorisers see, destroying SLP
profitability — precisely the kind of non-local effect that makes phase
ordering hard and that compilation statistics expose.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.compiler.ir import (
    BIN_OPS,
    Const,
    FLOAT_BIN_OPS,
    Function,
    I64,
    INT_BIN_OPS,
    Instr,
    Module,
    Operand,
    is_commutative,
)
from repro.compiler.pass_manager import FunctionPass, TargetInfo, register
from repro.compiler.passes.utils import fold_int_binop, resolve_chain
from repro.compiler.statistics import StatsCollector

__all__ = ["InstCombine", "InstSimplify", "AggressiveInstCombine", "Reassociate", "BDCE", "DivRemPairs"]

_INVERT_PRED = {
    "eq": "ne",
    "ne": "eq",
    "slt": "sge",
    "sge": "slt",
    "sgt": "sle",
    "sle": "sgt",
    "ult": "uge",
    "uge": "ult",
    "ugt": "ule",
    "ule": "ugt",
}


def _is_const(v: Operand, value=None) -> bool:
    if not isinstance(v, Const):
        return False
    return value is None or v.value == value


def _simplify_instr(inst: Instr, defs: Dict[str, Instr]) -> Optional[Operand]:
    """Return a replacement operand for ``inst`` if it simplifies away."""
    op = inst.op
    ty = inst.ty
    if op in INT_BIN_OPS and not ty.is_vec:
        a, b = inst.args
        if isinstance(a, Const) and isinstance(b, Const):
            folded = fold_int_binop(op, a.value, b.value, ty.bits)
            if folded is not None:
                return Const(folded, ty)
        if op == "add":
            if _is_const(b, 0):
                return a
            if _is_const(a, 0):
                return b
        elif op == "sub":
            if _is_const(b, 0):
                return a
            if isinstance(a, str) and a == b:
                return Const(0, ty)
        elif op == "mul":
            if _is_const(b, 1):
                return a
            if _is_const(a, 1):
                return b
            if _is_const(b, 0) or _is_const(a, 0):
                return Const(0, ty)
        elif op == "sdiv":
            if _is_const(b, 1):
                return a
        elif op == "and":
            if _is_const(b, -1):
                return a
            if _is_const(a, -1):
                return b
            if _is_const(b, 0) or _is_const(a, 0):
                return Const(0, ty)
            if isinstance(a, str) and a == b:
                return a
        elif op == "or":
            if _is_const(b, 0):
                return a
            if _is_const(a, 0):
                return b
            if isinstance(a, str) and a == b:
                return a
        elif op == "xor":
            if _is_const(b, 0):
                return a
            if _is_const(a, 0):
                return b
            if isinstance(a, str) and a == b:
                return Const(0, ty)
        elif op in ("shl", "ashr", "lshr"):
            if _is_const(b, 0):
                return a
    elif op in FLOAT_BIN_OPS and not ty.is_vec:
        a, b = inst.args
        if isinstance(a, Const) and isinstance(b, Const):
            from repro.machine.interp import InterpError, _float_bin

            try:
                return Const(_float_bin(op, a.value, b.value), ty)
            except InterpError:
                pass
        if op == "fadd" and _is_const(b, 0.0):
            return a
        if op == "fsub" and _is_const(b, 0.0):
            return a
        if op == "fmul" and _is_const(b, 1.0):
            return a
        if op == "fdiv" and _is_const(b, 1.0):
            return a
    elif op == "icmp":
        a, b = inst.args
        if isinstance(a, Const) and isinstance(b, Const):
            from repro.machine.interp import _icmp

            bits = a.ty.bits or 64
            return Const(
                1 if _icmp(inst.attrs["pred"], a.value, b.value, bits) else 0, inst.ty
            )
        if isinstance(a, str) and a == b:
            return Const(1 if inst.attrs["pred"] in ("eq", "sle", "sge", "ule", "uge") else 0, inst.ty)
    elif op == "select":
        cond, x, y = inst.args
        if isinstance(cond, Const):
            return x if cond.value else y
        if isinstance(x, (str,)) and x == y:
            return x
        if isinstance(x, Const) and isinstance(y, Const) and x == y:
            return x
    elif op == "sext":
        src = inst.args[0]
        if isinstance(src, Const):
            return Const(src.value, ty)
    elif op == "zext":
        src = inst.args[0]
        if isinstance(src, Const) and src.value >= 0:
            return Const(src.value, ty)
    elif op == "trunc":
        src = inst.args[0]
        if isinstance(src, Const):
            folded = fold_int_binop("add", src.value, 0, ty.bits)
            if folded is not None:
                return Const(folded, ty)
        if isinstance(src, str):
            d = defs.get(src)
            # trunc (sext/zext x) back to the original width -> x
            if d is not None and d.op in ("sext", "zext"):
                inner = d.args[0]
                inner_bits = inner.ty.bits if isinstance(inner, Const) else None
                if inner_bits is None and isinstance(inner, str):
                    dd = defs.get(inner)
                    inner_bits = dd.ty.bits if dd is not None else None
                if inner_bits == ty.bits:
                    return inner
    return None


def _sext_source_bits(v: Operand, defs: Dict[str, Instr], params: Dict[str, int]) -> Optional[int]:
    """If ``v`` is a sign-extension, the bit width of its ultimate source."""
    if isinstance(v, str):
        d = defs.get(v)
        if d is not None and d.op == "sext":
            src = d.args[0]
            if isinstance(src, Const):
                return src.ty.bits
            dd = defs.get(src)
            if dd is not None:
                return dd.ty.bits
            return params.get(src)
    return None


@register
class InstCombine(FunctionPass):
    """Combine and canonicalise instructions (LLVM ``instcombine``)."""

    name = "instcombine"
    max_iterations = 3
    #: whether the width-increasing sext(mul/add) combine runs (the
    #: SLP-hostile transform of Fig 5.1c)
    widen_arith = True

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed_any = False
        for _ in range(self.max_iterations):
            if not self._one_round(fn, stats):
                break
            changed_any = True
            stats.bump(self.name, "NumWorklistIterations")
        return changed_any

    # -- one fixpoint round --------------------------------------------------
    def _one_round(self, fn: Function, stats: StatsCollector) -> bool:
        defs = fn.defs()
        params = {p: t.bits for p, t in fn.params}
        mapping: Dict[str, Operand] = {}
        doomed: Set[int] = set()
        changed = False

        for blk in fn.blocks.values():
            new_instrs: List[Instr] = []
            for inst in blk.instrs:
                inst.replace_uses(mapping)
                simplified = _simplify_instr(inst, defs)
                if simplified is not None and inst.res is not None:
                    mapping[inst.res] = resolve_chain(mapping, simplified)
                    if isinstance(simplified, Const):
                        stats.bump(self.name, "NumConstProp")
                    else:
                        stats.bump(self.name, "NumCombined")
                    changed = True
                    continue  # drop the instruction
                if self._combine_in_place(fn, inst, defs, params, new_instrs, stats):
                    changed = True
                new_instrs.append(inst)
            blk.instrs = new_instrs
        if mapping:
            fn.replace_all_uses(mapping)
        return changed

    def _combine_in_place(
        self,
        fn: Function,
        inst: Instr,
        defs: Dict[str, Instr],
        params: Dict[str, int],
        out: List[Instr],
        stats: StatsCollector,
    ) -> bool:
        changed = False
        # canonicalise: constants to the RHS of commutative ops
        if inst.op in BIN_OPS and is_commutative(inst.op):
            a, b = inst.args
            if isinstance(a, Const) and not isinstance(b, Const):
                inst.args[0], inst.args[1] = b, a
                stats.bump(self.name, "NumCombined")
                changed = True
        # (x op c1) op c2  ->  x op (c1 op c2)  for associative int ops
        if inst.op in ("add", "mul", "and", "or", "xor") and not inst.ty.is_vec:
            a, b = inst.args
            if isinstance(b, Const) and isinstance(a, str):
                d = defs.get(a)
                if d is not None and d.op == inst.op and isinstance(d.args[1], Const):
                    folded = fold_int_binop(inst.op, d.args[1].value, b.value, inst.ty.bits)
                    if folded is not None:
                        inst.args[0] = d.args[0]
                        inst.args[1] = Const(folded, inst.ty)
                        stats.bump(self.name, "NumCombined")
                        changed = True
        # mul x, 2^k -> shl x, k
        if inst.op == "mul" and not inst.ty.is_vec:
            b = inst.args[1]
            if isinstance(b, Const) and b.value > 1 and (b.value & (b.value - 1)) == 0:
                inst.op = "shl"
                inst.args[1] = Const(b.value.bit_length() - 1, inst.ty)
                stats.bump(self.name, "NumCombined")
                changed = True
        # sext (sext x) -> single sext
        if inst.op == "sext":
            src = inst.args[0]
            if isinstance(src, str):
                d = defs.get(src)
                if d is not None and d.op == "sext":
                    inst.args[0] = d.args[0]
                    stats.bump(self.name, "NumCombined")
                    changed = True
        # sext (binop (sext a), (sext b)) -> binop (sext a'), (sext b')  [widening]
        if self.widen_arith and inst.op == "sext" and inst.ty.bits == 64:
            src = inst.args[0]
            if isinstance(src, str):
                d = defs.get(src)
                if d is not None and d.op in ("mul", "add") and not d.ty.is_vec and d.ty.bits == 32:
                    bits_a = _sext_source_bits(d.args[0], defs, params)
                    bits_b = _sext_source_bits(d.args[1], defs, params)
                    # i16*i16 fits in i32; i16+i16 likewise: widening is exact
                    if bits_a is not None and bits_b is not None and bits_a <= 16 and bits_b <= 16:
                        inner_a = defs[d.args[0]].args[0]
                        inner_b = defs[d.args[1]].args[0]
                        wa = Instr("sext", fn.fresh("widen"), I64, (inner_a,))
                        wb = Instr("sext", fn.fresh("widen"), I64, (inner_b,))
                        out.append(wa)
                        out.append(wb)
                        defs[wa.res] = wa
                        defs[wb.res] = wb
                        inst.op = d.op
                        inst.args = [wa.res, wb.res]
                        stats.bump(self.name, "NumCombined")
                        stats.bump(self.name, "NumWidened")
                        changed = True
        return changed


@register
class InstSimplify(FunctionPass):
    """Simplification-only subset of instcombine (never creates instructions)."""

    name = "instsimplify"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        defs = fn.defs()
        mapping: Dict[str, Operand] = {}
        for blk in fn.blocks.values():
            kept: List[Instr] = []
            for inst in blk.instrs:
                inst.replace_uses(mapping)
                simplified = _simplify_instr(inst, defs)
                if simplified is not None and inst.res is not None:
                    mapping[inst.res] = resolve_chain(mapping, simplified)
                    stats.bump(self.name, "NumSimplified")
                    continue
                kept.append(inst)
            blk.instrs = kept
        if mapping:
            fn.replace_all_uses(mapping)
        return bool(mapping)


@register
class AggressiveInstCombine(FunctionPass):
    """Extra pattern combines LLVM keeps out of the main combiner."""

    name = "aggressive-instcombine"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        defs = fn.defs()
        changed = False
        for blk in fn.blocks.values():
            for inst in blk.instrs:
                # xor (icmp ...), 1 -> inverted icmp
                if inst.op == "xor" and inst.ty.bits == 1:
                    a, b = inst.args
                    if isinstance(b, Const) and b.value == 1 and isinstance(a, str):
                        d = defs.get(a)
                        if d is not None and d.op == "icmp":
                            inst.op = "icmp"
                            inst.attrs["pred"] = _INVERT_PRED[d.attrs["pred"]]
                            inst.args = list(d.args)
                            stats.bump(self.name, "NumExpanded")
                            changed = True
                # mul x, -1 -> sub 0, x
                elif inst.op == "mul" and not inst.ty.is_vec:
                    b = inst.args[1]
                    if isinstance(b, Const) and b.value == -1:
                        inst.op = "sub"
                        inst.args = [Const(0, inst.ty), inst.args[0]]
                        stats.bump(self.name, "NumExpanded")
                        changed = True
        return changed


@register
class Reassociate(FunctionPass):
    """Reassociate commutative chains to expose constant folding and CSE."""

    name = "reassociate"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        from repro.compiler.analysis import use_counts

        changed = False
        uses = use_counts(fn)
        for blk in fn.blocks.values():
            pos = {id(i): k for k, i in enumerate(blk.instrs)}
            by_res = {i.res: i for i in blk.instrs if i.res is not None}
            for inst in blk.instrs:
                if inst.op not in ("add", "mul") or inst.ty.is_vec:
                    continue
                a, b = inst.args
                # (x op c) op y  ->  (x op y) op c : migrate constants outward
                if isinstance(a, str) and isinstance(b, str) and a != b:
                    d = by_res.get(a)
                    if (
                        d is not None
                        and d.op == inst.op
                        and isinstance(d.args[1], Const)
                        and uses.get(a, 0) == 1
                    ):
                        # legality: y must already be defined at the inner op's
                        # position.  A def outside this block dominates the
                        # whole block (it dominates `inst`, which is later).
                        bd = by_res.get(b)
                        y_available = bd is None or pos[id(bd)] < pos[id(d)]
                        if y_available:
                            const = d.args[1]
                            d.args[1] = b
                            inst.args = [a, const]
                            stats.bump(self.name, "NumChanged")
                            changed = True
        return changed


@register
class BDCE(FunctionPass):
    """Bit-tracking DCE: removes masking that cannot change any used bit."""

    name = "bdce"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        mapping: Dict[str, Operand] = {}
        for blk in fn.blocks.values():
            kept: List[Instr] = []
            for inst in blk.instrs:
                inst.replace_uses(mapping)
                if inst.op == "and" and not inst.ty.is_vec:
                    b = inst.args[1]
                    full = (1 << inst.ty.bits) - 1
                    if isinstance(b, Const) and (b.value & full) == full:
                        mapping[inst.res] = inst.args[0]
                        stats.bump(self.name, "NumRemoved")
                        continue
                kept.append(inst)
            blk.instrs = kept
        if mapping:
            fn.replace_all_uses(mapping)
        return bool(mapping)


@register
class DivRemPairs(FunctionPass):
    """Recompose ``srem`` from an existing ``sdiv`` of the same operands."""

    name = "div-rem-pairs"

    def run_on_function(
        self, fn: Function, module: Module, stats: StatsCollector, target: TargetInfo
    ) -> bool:
        changed = False
        for blk in fn.blocks.values():
            divs: Dict[tuple, str] = {}
            new_instrs: List[Instr] = []
            for inst in blk.instrs:
                if inst.op == "sdiv" and not inst.ty.is_vec:
                    key = (inst.args[0] if isinstance(inst.args[0], str) else inst.args[0],
                           inst.args[1] if isinstance(inst.args[1], str) else inst.args[1],
                           inst.ty)
                    divs[(str(key[0]), str(key[1]), inst.ty)] = inst.res
                    new_instrs.append(inst)
                elif inst.op == "srem" and not inst.ty.is_vec:
                    key = (str(inst.args[0]), str(inst.args[1]), inst.ty)
                    q = divs.get(key)
                    if q is not None:
                        # rem = a - (a/b)*b
                        m = Instr("mul", fn.fresh("drp"), inst.ty, (q, inst.args[1]))
                        s = Instr("sub", inst.res, inst.ty, (inst.args[0], m.res))
                        new_instrs.append(m)
                        new_instrs.append(s)
                        stats.bump(self.name, "NumRecomposed")
                        changed = True
                    else:
                        new_instrs.append(inst)
                else:
                    new_instrs.append(inst)
            blk.instrs = new_instrs
        return changed
