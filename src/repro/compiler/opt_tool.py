"""``opt``-like driver: apply a pass sequence, collect ``-stats-json``.

This is the programmatic stand-in for shelling out to
``opt -passes=... -stats -stats-json``: it clones the input module (the
"source file"), runs the sequence, and returns the optimised module together
with the statistics dictionary.  Compilation is cheap relative to execution,
matching the cost asymmetry CITROEN exploits (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.compiler import passes as _passes  # noqa: F401  (registers passes)
from repro.compiler.ir import Module
from repro.compiler.pass_manager import PassManager, PassTrace, TargetInfo, registry
from repro.compiler.statistics import StatsCollector

__all__ = ["CompileResult", "run_opt", "available_passes"]


@dataclass
class CompileResult:
    """Output of one ``opt`` invocation."""

    module: Module
    stats: StatsCollector
    sequence: List[str]
    #: per-pass application records when the compile was traced
    trace: Optional[PassTrace] = None

    def stats_json(self) -> Dict[str, int]:
        """Flat ``{"pass.Counter": value}`` statistics dict."""
        return self.stats.as_dict()


def run_opt(
    module: Module,
    sequence: Sequence[str],
    target: Optional[TargetInfo] = None,
    verify_each: bool = False,
    trace: Optional[PassTrace] = None,
) -> CompileResult:
    """Apply ``sequence`` to a *clone* of ``module``; the input is untouched.

    ``trace`` (a :class:`~repro.compiler.pass_manager.PassTrace`) records
    per-pass timing, statistics deltas, and IR fingerprint deltas without
    changing the compile's output."""
    work = module.clone()
    pm = PassManager(sequence, target=target, verify_each=verify_each)
    stats = pm.run(work, trace=trace)
    return CompileResult(work, stats, list(sequence), trace=trace)


def available_passes() -> List[str]:
    """All registered pass names (the phase-ordering alphabet, Table 5.3)."""
    return sorted(registry.names())
