"""Raw pass-sequence encodings — what "standard BO" fits on (§3.3).

``sequence_features`` is the per-position categorical-to-continuous
embedding (each position scaled by the alphabet size), matching how prior
BO-for-compilers work feeds raw tuning parameters to the surrogate.
``sequence_histogram`` is the order-insensitive pass-count profile.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["sequence_features", "sequence_histogram"]


def sequence_features(seq: Sequence[int], alphabet: int) -> np.ndarray:
    """Per-position encoding in [0, 1]; dimension = sequence length."""
    s = np.asarray(seq, dtype=float)
    return (s + 0.5) / alphabet


def sequence_histogram(seq: Sequence[int], alphabet: int) -> np.ndarray:
    """Normalised pass-count histogram; dimension = alphabet size."""
    h = np.bincount(np.asarray(seq, dtype=int), minlength=alphabet).astype(float)
    return h / max(1, len(seq))
