"""DeepTune-IR-style token features: opcode bigram histogram of the IR.

Serialises each function's instruction stream to opcode tokens and counts
bigrams — a sequence-based program characterisation (§3.4) that sees local
instruction patterns but not dataflow or attributes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.compiler.ir import Module

__all__ = ["token_histogram", "TOKEN_KEYS"]

_OPS = [
    "add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr",
    "fadd", "fmul", "load", "store", "gep", "icmp", "select", "phi", "call",
    "br", "jmp", "ret", "sext", "trunc", "vload", "vstore", "reduce", "other",
]
_OP_SET = set(_OPS[:-1])

TOKEN_KEYS: List[str] = [f"bi_{a}_{b}" for a in _OPS for b in _OPS]


def _tok(op: str) -> str:
    return op if op in _OP_SET else "other"


def token_histogram(module: Module) -> Dict[str, int]:
    """Opcode-bigram counts over the linearised instruction stream."""
    counts: Dict[str, int] = {}
    for fn in module.functions.values():
        prev = None
        for inst in fn.instructions():
            cur = _tok(inst.op)
            if prev is not None:
                key = f"bi_{prev}_{cur}"
                counts[key] = counts.get(key, 0) + 1
            prev = cur
    return counts
