"""Feature extraction for cost models.

``StatsVectorizer`` (compilation statistics) is CITROEN's feature space
(§5.3.3); the others — Autophase-like IR counters, raw sequence encodings,
token histograms — are the alternatives compared in Fig 5.9.
"""

from repro.features.stats_features import StatsVectorizer
from repro.features.autophase import autophase_features, AUTOPHASE_KEYS
from repro.features.seq_features import sequence_features, sequence_histogram
from repro.features.tokens import token_histogram, TOKEN_KEYS

__all__ = [
    "StatsVectorizer",
    "autophase_features",
    "AUTOPHASE_KEYS",
    "sequence_features",
    "sequence_histogram",
    "token_histogram",
    "TOKEN_KEYS",
]
