"""Vectorising pass-related compilation statistics (§5.3.3).

The statistics feature space is *open-ended* (new pass/counter pairs appear
as the search visits new sequences), *sparse* (most counters are zero for
most sequences) and *non-uniform* (counters span orders of magnitude).
``StatsVectorizer`` therefore:

* maintains a growing key registry, rebuilding the design matrix on refit;
* applies ``log1p`` then per-dimension min-max scaling;
* reports per-dimension *coverage* information — which dimensions of a
  candidate lie inside the observed value range — which is what the
  coverage-aware acquisition function (§5.3.4, Table 5.2) consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["StatsVectorizer"]


class StatsVectorizer:
    """Maps ``{"pass.Counter": int}`` dicts to dense normalised vectors."""

    def __init__(self) -> None:
        self.keys: List[str] = []
        self._key_index: Dict[str, int] = {}
        self._lo: Optional[np.ndarray] = None
        self._hi: Optional[np.ndarray] = None

    # -- registry ------------------------------------------------------------
    def observe_keys(self, stats: Dict[str, int]) -> None:
        """Grow the key registry with any unseen counters."""
        for k in stats:
            if k not in self._key_index:
                self._key_index[k] = len(self.keys)
                self.keys.append(k)

    @property
    def dim(self) -> int:
        return len(self.keys)

    # -- raw (log-transformed, unscaled) vectors -------------------------------
    def raw_vector(self, stats: Dict[str, int]) -> np.ndarray:
        """log1p-transformed (unscaled) vector for one stats dict."""
        v = np.zeros(self.dim)
        for k, value in stats.items():
            idx = self._key_index.get(k)
            if idx is not None:
                v[idx] = np.log1p(max(0.0, float(value)))
        return v

    def raw_matrix(self, stats_list: Sequence[Dict[str, int]]) -> np.ndarray:
        """Stack raw vectors for many stats dicts (registry grows first)."""
        for s in stats_list:
            self.observe_keys(s)
        return np.asarray([self.raw_vector(s) for s in stats_list])

    # -- scaling -----------------------------------------------------------------
    def fit(self, stats_list: Sequence[Dict[str, int]]) -> np.ndarray:
        """Rebuild the registry + scaler from observations; return the
        normalised design matrix."""
        M = self.raw_matrix(stats_list)
        self._lo = M.min(axis=0)
        self._hi = M.max(axis=0)
        span = self._hi - self._lo
        span[span < 1e-12] = 1.0
        self._span = span
        return (M - self._lo) / span

    def transform(self, stats: Dict[str, int]) -> np.ndarray:
        """Normalise one candidate with the fitted scaler (clipped to the
        unit box so the GP input domain stays bounded)."""
        assert self._lo is not None, "call fit first"
        v = self.raw_vector(stats)
        return np.clip((v - self._lo) / self._span, 0.0, 1.0)

    # -- coverage (Table 5.2) -------------------------------------------------------
    def coverage(self, stats: Dict[str, int]) -> float:
        """Fraction of the candidate's *active* dimensions whose raw value
        lies within the observed [min, max] range.

        A dimension never seen before (key outside the registry) counts as
        uncovered; so does an in-registry dimension whose value exceeds the
        observed range.  Candidates scoring low here have GP predictions
        extrapolated from nothing — the paper's coverage issue.
        """
        assert self._lo is not None, "call fit first"
        active = 0
        covered = 0
        for k, value in stats.items():
            x = np.log1p(max(0.0, float(value)))
            if x <= 0.0:
                continue
            active += 1
            idx = self._key_index.get(k)
            if idx is None:
                continue
            if self._lo[idx] - 1e-9 <= x <= self._hi[idx] + 1e-9:
                covered += 1
        if active == 0:
            return 1.0
        return covered / active

    def signature(self, stats: Dict[str, int]) -> Tuple:
        """Hashable identity of a statistics outcome (for deduplication of
        equivalent compilations, §3.1.1 / Kulkarni et al.)."""
        return tuple(sorted((k, int(v)) for k, v in stats.items() if v))
