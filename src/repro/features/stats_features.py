"""Vectorising pass-related compilation statistics (§5.3.3).

The statistics feature space is *open-ended* (new pass/counter pairs appear
as the search visits new sequences), *sparse* (most counters are zero for
most sequences) and *non-uniform* (counters span orders of magnitude).
``StatsVectorizer`` therefore:

* maintains a growing key registry, rebuilding the design matrix on refit;
* applies ``log1p`` then per-dimension min-max scaling;
* reports per-dimension *coverage* information — which dimensions of a
  candidate lie inside the observed value range — which is what the
  coverage-aware acquisition function (§5.3.4, Table 5.2) consumes.

The batch entry points — :meth:`StatsVectorizer.transform_many` and
:meth:`StatsVectorizer.coverage_many` — featurize a whole candidate
population with one allocation and batched ``log1p``/``clip`` over an
index-mapped sparse fill, replacing the per-candidate Python loops on the
tuner's proposal hot path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["StatsVectorizer"]


class StatsVectorizer:
    """Maps ``{"pass.Counter": int}`` dicts to dense normalised vectors."""

    def __init__(self) -> None:
        self.keys: List[str] = []
        self._key_index: Dict[str, int] = {}
        self._lo: Optional[np.ndarray] = None
        self._hi: Optional[np.ndarray] = None

    # -- registry ------------------------------------------------------------
    def observe_keys(self, stats: Dict[str, int]) -> None:
        """Grow the key registry with any unseen counters."""
        for k in stats:
            if k not in self._key_index:
                self._key_index[k] = len(self.keys)
                self.keys.append(k)

    @property
    def dim(self) -> int:
        return len(self.keys)

    # -- raw (log-transformed, unscaled) vectors -------------------------------
    def raw_vector(self, stats: Dict[str, int]) -> np.ndarray:
        """log1p-transformed (unscaled) vector for one stats dict."""
        v = np.zeros(self.dim)
        for k, value in stats.items():
            idx = self._key_index.get(k)
            if idx is not None:
                v[idx] = np.log1p(max(0.0, float(value)))
        return v

    def _fill_raw(
        self,
        stats_list: Sequence[Dict[str, int]],
        dim: int,
        count_unmapped: bool = False,
    ) -> np.ndarray:
        """``(len(stats_list), dim)`` log1p matrix via one sparse fill.

        Keys outside the registry (or beyond ``dim``) are ignored — their
        raw value is the implicit zero, same as :meth:`raw_vector`.  With
        ``count_unmapped`` the per-row count of such keys holding positive
        values comes back too (``(M, counts)``) — coverage treats them as
        active-but-uncovered, and counting here keeps the batch path to a
        single pass over the dicts.
        """
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        index = self._key_index
        unmapped = np.zeros(len(stats_list)) if count_unmapped else None
        for i, stats in enumerate(stats_list):
            for k, value in stats.items():
                idx = index.get(k)
                if idx is not None and idx < dim:
                    if value:
                        rows.append(i)
                        cols.append(idx)
                        vals.append(max(0.0, float(value)))
                elif count_unmapped and float(value) > 0.0:
                    unmapped[i] += 1.0
        M = np.zeros((len(stats_list), dim))
        if rows:
            M[rows, cols] = vals
        np.log1p(M, out=M)
        return (M, unmapped) if count_unmapped else M

    def raw_matrix(self, stats_list: Sequence[Dict[str, int]]) -> np.ndarray:
        """Stack raw vectors for many stats dicts (registry grows first)."""
        for s in stats_list:
            self.observe_keys(s)
        return self._fill_raw(stats_list, self.dim)

    # -- scaling -----------------------------------------------------------------
    def fit(self, stats_list: Sequence[Dict[str, int]]) -> np.ndarray:
        """Rebuild the registry + scaler from observations; return the
        normalised design matrix."""
        M = self.raw_matrix(stats_list)
        self._lo = M.min(axis=0)
        self._hi = M.max(axis=0)
        span = self._hi - self._lo
        span[span < 1e-12] = 1.0
        self._span = span
        return (M - self._lo) / span

    @property
    def fitted_dim(self) -> int:
        """Dimensionality of the fitted scaler (0 before the first fit).

        The registry may have grown past this since the last :meth:`fit`;
        every fitted-space operation aligns to this dimension explicitly.
        """
        return 0 if self._lo is None else len(self._lo)

    def transform(self, stats: Dict[str, int]) -> np.ndarray:
        """Normalise one candidate with the fitted scaler (clipped to the
        unit box so the GP input domain stays bounded)."""
        assert self._lo is not None, "call fit first"
        v = self._fill_raw([stats], self.fitted_dim)[0]
        return np.clip((v - self._lo) / self._span, 0.0, 1.0)

    def transform_many(self, stats_list: Sequence[Dict[str, int]]) -> np.ndarray:
        """Normalise a whole candidate population in one shot.

        Equivalent to stacking :meth:`transform` over ``stats_list`` (the
        property tests assert it), but with a single allocation and batched
        ``log1p``/``clip`` — the proposal-scoring hot path.
        """
        assert self._lo is not None, "call fit first"
        M = self._fill_raw(stats_list, self.fitted_dim)
        M -= self._lo
        M /= self._span
        np.clip(M, 0.0, 1.0, out=M)
        return M

    # -- coverage (Table 5.2) -------------------------------------------------------
    def coverage(self, stats: Dict[str, int]) -> float:
        """Fraction of the candidate's *active* dimensions whose raw value
        lies within the observed [min, max] range.

        A dimension never seen before (key outside the registry) counts as
        uncovered; so does an in-registry dimension whose value exceeds the
        observed range.  Candidates scoring low here have GP predictions
        extrapolated from nothing — the paper's coverage issue.
        """
        assert self._lo is not None, "call fit first"
        active = 0
        covered = 0
        dim = self.fitted_dim
        for k, value in stats.items():
            x = np.log1p(max(0.0, float(value)))
            if x <= 0.0:
                continue
            active += 1
            idx = self._key_index.get(k)
            if idx is None or idx >= dim:  # unseen since the last fit
                continue
            if self._lo[idx] - 1e-9 <= x <= self._hi[idx] + 1e-9:
                covered += 1
        if active == 0:
            return 1.0
        return covered / active

    def coverage_many(self, stats_list: Sequence[Dict[str, int]]) -> np.ndarray:
        """Vectorised :meth:`coverage` over a candidate population.

        Active dimensions land in the same sparse-filled matrix the batch
        transform uses; out-of-registry (or post-fit) keys contribute to
        the active count only, exactly like the scalar path.
        """
        assert self._lo is not None, "call fit first"
        dim = self.fitted_dim
        M, extra = self._fill_raw(stats_list, dim, count_unmapped=True)
        active_in = M > 0.0
        covered = (
            active_in & (M >= self._lo - 1e-9) & (M <= self._hi + 1e-9)
        ).sum(axis=1)
        active = active_in.sum(axis=1) + extra
        return np.where(active == 0, 1.0, covered / np.maximum(active, 1.0))

    def signature(self, stats: Dict[str, int]) -> Tuple:
        """Hashable identity of a statistics outcome (for deduplication of
        equivalent compilations, §3.1.1 / Kulkarni et al.)."""
        return tuple(sorted((k, int(v)) for k, v in stats.items() if v))
