"""Autophase-style static IR features (Huang et al., §3.4).

Counts structural properties of the post-compilation IR: instruction mix,
CFG shape, memory traffic.  These characterise *programs* well but, as the
paper argues, miss transformations that do not change the counted
constructs (e.g. ``function-attrs``) — the deficiency Fig 5.9/5.10 exposes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.compiler.ir import Const, Module

__all__ = ["autophase_features", "AUTOPHASE_KEYS"]

_COUNTED_OPS = [
    "add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr", "lshr",
    "fadd", "fsub", "fmul", "fdiv",
    "load", "store", "alloca", "gep", "gaddr",
    "icmp", "fcmp", "select", "phi", "call", "ret", "br", "jmp",
    "sext", "zext", "trunc",
    "vload", "vstore", "broadcast", "reduce", "extract", "insert",
    "memset", "memcpy", "output",
]

AUTOPHASE_KEYS: List[str] = (
    [f"num_{op}" for op in _COUNTED_OPS]
    + [
        "num_blocks",
        "num_functions",
        "num_instructions",
        "num_edges",
        "num_critical_edges",
        "num_phis_args",
        "num_const_operands",
        "num_one_successor",
        "num_two_successor",
        "num_blocks_gt_15",
        "num_blocks_le_15",
        "num_globals",
        "max_loop_like_backedges",
        "total_args",
    ]
)


def autophase_features(module: Module) -> Dict[str, int]:
    """Static statistical features of a module's IR."""
    feats: Dict[str, int] = {k: 0 for k in AUTOPHASE_KEYS}
    feats["num_functions"] = len(module.functions)
    feats["num_globals"] = len(module.globals)
    backedges = 0
    for fn in module.functions.values():
        feats["total_args"] += len(fn.params)
        seen_order = {name: i for i, name in enumerate(fn.blocks)}
        for bname, blk in fn.blocks.items():
            feats["num_blocks"] += 1
            size = len(blk.instrs)
            if size > 15:
                feats["num_blocks_gt_15"] += 1
            else:
                feats["num_blocks_le_15"] += 1
            succs = blk.successors()
            feats["num_edges"] += len(succs)
            if len(succs) == 1:
                feats["num_one_successor"] += 1
            elif len(succs) == 2:
                feats["num_two_successor"] += 1
            for s in succs:
                if seen_order.get(s, 1 << 30) <= seen_order[bname]:
                    backedges += 1
            for inst in blk.instrs:
                feats["num_instructions"] += 1
                key = f"num_{inst.op}"
                if key in feats:
                    feats[key] += 1
                if inst.op == "phi":
                    feats["num_phis_args"] += len(inst.attrs["incoming"])
                for a in inst.operands():
                    if isinstance(a, Const):
                        feats["num_const_operands"] += 1
        # critical edges: pred with >1 succ into block with >1 pred
        preds = fn.predecessors()
        for bname, blk in fn.blocks.items():
            if len(preds[bname]) > 1:
                for p in preds[bname]:
                    if len(fn.blocks[p].successors()) > 1:
                        feats["num_critical_edges"] += 1
    feats["max_loop_like_backedges"] = backedges
    return feats
