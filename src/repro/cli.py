"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tune``       run CITROEN (or a baseline) on a benchmark program
``programs``   list the available benchmark programs
``passes``     list the phase-ordering pass alphabet
``motivate``   print the Table 5.1 motivation rows live
``compare``    run several tuners on one program and print the leaderboard
``watch``      live terminal dashboard over a (possibly still running)
               traced run directory (``--json`` for a one-shot
               machine-readable snapshot)
``analyze``    render a markdown report from a recorded run directory
               (``--chrome-trace``/``--prometheus`` export standard formats)
``explain``    replay a recorded run's incumbent configuration with
               per-pass tracing and attribute its speedup by ablation
               (leave-one-out + prefix replays; flags no-op passes)
``diff``       compare two recorded runs (or two ``repro bench`` JSON
               payloads, or one run against ``--against warehouse:last-N``);
               non-zero exit on regression
``bench``      time the surrogate hot path (micro + end-to-end) and write
               ``BENCH_surrogate.json``
``obs``        the fleet warehouse: ``obs index RUNS...`` ingests run
               directories / bench payloads into a sqlite file,
               ``obs history`` prints the cross-revision trajectory

Output goes through :mod:`repro.obs.log` (``--log-level`` selects
verbosity; the default ``info`` level is byte-compatible with the
historical ``print()`` output).  ``--trace-out DIR`` (or the
``REPRO_TRACE`` environment variable) records the run into a directory of
artifacts — ``manifest.json``, ``events.jsonl``, ``metrics.json``,
``result.json`` — and prints the per-phase time breakdown.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro import (
    AutotuningTask,
    BOCATuner,
    Citroen,
    EnsembleTuner,
    GATuner,
    RandomSearchTuner,
    available_passes,
    cbench_names,
    cbench_program,
    spec_names,
    spec_program,
)
from repro.obs import RunRecorder, configure_logging

__all__ = ["main"]

_TUNERS = {
    "citroen": lambda task, seed, diagnostics=True, pass_prior=None: Citroen(
        task, seed=seed, diagnostics=diagnostics, pass_prior=pass_prior
    ),
    "random": lambda task, seed, diagnostics=True, pass_prior=None: RandomSearchTuner(
        task, seed=seed
    ),
    "ga": lambda task, seed, diagnostics=True, pass_prior=None: GATuner(
        task, seed=seed
    ),
    "ensemble": lambda task, seed, diagnostics=True, pass_prior=None: EnsembleTuner(
        task, seed=seed
    ),
    "boca": lambda task, seed, diagnostics=True, pass_prior=None: BOCATuner(
        task, seed=seed
    ),
}


def _build_tuner(name: str, task, args: argparse.Namespace, pass_prior=None):
    return _TUNERS[name](
        task,
        args.seed,
        diagnostics=not getattr(args, "no_diagnostics", False),
        pass_prior=pass_prior,
    )


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _fault_injector(args: argparse.Namespace):
    """Build the chaos injector from the CLI flags (``None`` when off)."""
    from repro.core.faults import FaultInjector, parse_fault_kinds

    try:
        kinds = parse_fault_kinds(args.inject_faults)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if not kinds:
        return None
    return FaultInjector(
        rate=args.fault_rate,
        kinds=kinds,
        seed=args.fault_seed,
        hang_seconds=args.fault_hang_seconds,
    )


def _trace_dir(args: argparse.Namespace) -> Optional[str]:
    """The run-artifact directory: --trace-out flag, else $REPRO_TRACE."""
    return getattr(args, "trace_out", None) or os.environ.get("REPRO_TRACE") or None


#: manifest keys that fully parameterize a tune; ``--resume`` restores every
#: one of them onto the argparse namespace so the re-executed loop is
#: configured bit-identically to the killed run (manifest wins over flags)
_MANIFEST_ARGS = (
    "program",
    "budget",
    "seed",
    "platform",
    "seq_length",
    "jobs",
    "measure_engine",
    "inject_faults",
    "compile_cache_size",
    "fault_rate",
    "fault_seed",
    "fault_hang_seconds",
    "compile_timeout",
    "metrics_every",
    "tuner",
    "prior_bank",
    "pipeline_trace",
    "fuse",
    "execution_memo",
    "shared_artifacts",
    "artifact_store",
)


def _recorder(
    args: argparse.Namespace, out_dir: str, resume: bool = False, **manifest
) -> RunRecorder:
    base = {
        "command": args.command,
        "inject_faults": getattr(args, "inject_faults", "none"),
    }
    for key in _MANIFEST_ARGS:
        base.setdefault(key, getattr(args, key, None))
    base.update(manifest)
    return RunRecorder(out_dir, manifest=base, resume=resume)


def _apply_manifest(args: argparse.Namespace, manifest: Dict[str, object]) -> None:
    """Overlay a resumed run's manifest onto the CLI namespace.

    The manifest is the ground truth for every search-shaping parameter —
    a resume invoked with different flags would silently diverge from the
    WAL, so recorded values win; keys an older manifest lacks keep the
    current defaults (the resume then only succeeds if those defaults
    match what the run actually used)."""
    for key in _MANIFEST_ARGS:
        if manifest.get(key) is not None:
            setattr(args, key, manifest[key])


def _make_task(
    args: argparse.Namespace,
    program_name: str,
    recorder: Optional[RunRecorder] = None,
    wal=None,
):
    injector = _fault_injector(args)
    compile_timeout = args.compile_timeout
    if compile_timeout is None and injector is not None and "hang" in injector.kinds:
        # chaos run with hangs: default a timeout below the hang delay so
        # the hang fault actually trips the engine's timeout path
        compile_timeout = max(0.05, injector.hang_seconds / 2.0)
    return AutotuningTask(
        _load_program(program_name),
        platform=args.platform,
        seed=args.seed,
        seq_length=getattr(args, "seq_length", 32),
        jobs=args.jobs,
        compile_cache_size=args.compile_cache_size,
        fault_injector=injector,
        compile_timeout=compile_timeout,
        tracer=recorder.tracer if recorder is not None else None,
        metrics=recorder.registry if recorder is not None else None,
        metrics_every=getattr(args, "metrics_every", 0),
        measure_engine=getattr(args, "measure_engine", "bytecode"),
        pipeline_trace=getattr(args, "pipeline_trace", "off") or "off",
        wal=wal,
        kill_after_iter=getattr(args, "kill_after_iter", None),
        fuse=getattr(args, "fuse", True),
        execution_memo=getattr(args, "execution_memo", True),
        shared_artifacts=getattr(args, "shared_artifacts", True),
        artifact_spill_dir=getattr(args, "artifact_store", None),
    )


def _load_program(name: str):
    if name in cbench_names():
        return cbench_program(name)
    if name in spec_names():
        return spec_program(name)
    raise SystemExit(
        f"unknown program {name!r}; see `python -m repro programs`"
    )


@contextlib.contextmanager
def _graceful_shutdown(task, log):
    """Install SIGINT/SIGTERM handlers for a graceful tuner stop.

    First signal: set the task's stop flag — the tuner finishes the
    in-flight budget slot (the engine's futures drain inside
    ``task.close()``), the WAL is already durable per measurement, and the
    caller finalizes the recorder into an analyzable, resumable run dir,
    exiting with ``128 + signum`` (130 for SIGINT, 143 for SIGTERM).
    Second signal: raise ``KeyboardInterrupt`` — the user insists.
    Yields a dict whose ``"signum"`` records the first signal (or None)."""
    state: Dict[str, Optional[int]] = {"signum": None}

    def _handler(signum, frame):
        if state["signum"] is not None:
            raise KeyboardInterrupt
        state["signum"] = signum
        task.request_stop()
        log.warning(
            "\nreceived %s: finishing the current measurement, then "
            "shutting down gracefully (send again to force)",
            signal.Signals(signum).name,
        )

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _handler)
        except (ValueError, OSError):  # non-main thread / exotic platform
            pass
    try:
        yield state
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _load_prior(args: argparse.Namespace, resume_dir: Optional[Path], log):
    """The pass prior for this session, and whether to snapshot it.

    A resumed run replays against the *snapshot* taken at the original
    run's start (``prior.json`` in the run dir) — never the live bank,
    which other sessions may have advanced since; a drifted prior would
    change candidate generation and break bit-identical resume."""
    from repro.core.transfer import PassCorrelationPrior

    if resume_dir is not None:
        snap = resume_dir / "prior.json"
        if snap.exists():
            return PassCorrelationPrior.load(snap), False
        return None, False
    if getattr(args, "prior_bank", None):
        return PassCorrelationPrior.load(args.prior_bank), True
    return None, False


def _update_prior_bank(args: argparse.Namespace, result, log) -> None:
    """Fold a *completed* run's trace into the shared prior bank.

    Reloads the bank first so concurrent sessions' contributions landed
    between our load and save are kept (atomic replace makes the race
    last-write-wins per field-merge, not file corruption).  Interrupted
    runs are skipped — their resume would double-count the evidence."""
    from repro.core.transfer import PassCorrelationPrior

    bank = PassCorrelationPrior.load(args.prior_bank)
    bank.observe_run(result)
    bank.save(args.prior_bank)
    log.info(
        f"prior bank   : {args.prior_bank} now holds {bank.n_runs} run(s)"
    )


def _cmd_tune(args: argparse.Namespace) -> int:
    log = configure_logging(args.log_level)

    resume_dir: Optional[Path] = None
    if getattr(args, "resume", None):
        resume_dir = Path(args.resume)
        manifest_path = resume_dir / "manifest.json"
        if not manifest_path.exists():
            raise SystemExit(f"not a resumable run dir (no manifest): {resume_dir}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise SystemExit(f"corrupt manifest in {resume_dir}: {exc}")
        if manifest.get("command") not in (None, "tune"):
            raise SystemExit(
                f"can only resume a `tune` run, got {manifest.get('command')!r}"
            )
        _apply_manifest(args, manifest)
        trace_dir: Optional[str] = str(resume_dir)
    else:
        trace_dir = _trace_dir(args)
    if not getattr(args, "program", None):
        raise SystemExit("tune: program is required (unless using --resume)")

    recorder = (
        _recorder(args, trace_dir, resume=resume_dir is not None, tuner=args.tuner)
        if trace_dir
        else None
    )
    wal = None
    replay_records: List[Dict[str, object]] = []
    if recorder is not None:
        if resume_dir is not None:
            from repro.core.wal import read_wal

            replay_records = read_wal(recorder.path / "wal.jsonl")
            if not replay_records:
                log.warning(
                    "no WAL records in %s; re-running from scratch "
                    "(same seed, same final result)",
                    recorder.path,
                )
        wal = recorder.open_wal()

    prior, snapshot_prior = _load_prior(args, resume_dir, log)
    exit_code = 0
    try:
        with _make_task(args, args.program, recorder, wal=wal) as task:
            log.info(f"program      : {args.program}")
            log.info(f"platform     : {args.platform}")
            log.info(f"hot modules  : {task.hot_modules}")
            log.info(f"-O3 runtime  : {task.o3_runtime * 1e6:.2f} us")
            if replay_records:
                n_replay = task.start_replay(replay_records)
                log.info(
                    f"resume       : replaying {n_replay} measurement(s) "
                    f"from {recorder.path / 'wal.jsonl'}"
                )
            if prior is not None and snapshot_prior and recorder is not None:
                # freeze the prior this run searches under, so a resume
                # uses it verbatim even after the shared bank moves on
                prior.save(recorder.path / "prior.json")
            # a cold prior (no evidence) must behave exactly like no prior:
            # uniform gene weights would still alter RNG consumption
            pass_prior = prior if prior is not None and prior.n_runs > 0 else None
            if pass_prior is not None:
                log.info(
                    f"pass prior   : warm-started from {pass_prior.n_runs} run(s)"
                )
            tuner = _build_tuner(args.tuner, task, args, pass_prior=pass_prior)
            with _graceful_shutdown(task, log) as sigstate:
                result = tuner.tune(args.budget)
            interrupted = bool(result.extras.get("interrupted"))
            if result.measurements:
                log.info(f"\nbest runtime : {result.best_runtime * 1e6:.2f} us")
                log.info(f"speedup/-O3  : {result.speedup_over_o3():.3f}x")
            else:
                log.info("\nno measurements completed")
            timing = result.timing or task.timing_breakdown()
            wall = timing.get("compile_wall_seconds", 0.0)
            cpu = timing.get("compile_seconds", 0.0)
            log.info(
                f"compile      : {timing.get('n_compiles', 0)} compiles, "
                f"{100 * timing.get('compile_cache_hit_rate', 0.0):.1f}% cache hits, "
                f"{cpu * 1e3:.1f} ms worker time / {wall * 1e3:.1f} ms wall "
                f"(jobs={args.jobs})"
            )
            if task.fault_injector is not None:
                log.info(
                    f"faults       : {result.n_infeasible} infeasible of "
                    f"{len(result.measurements)} measurements | "
                    f"{int(timing.get('compile_failures', 0))} compile failures, "
                    f"{int(timing.get('compile_timeouts', 0))} timeouts, "
                    f"{int(timing.get('compile_retries', 0))} retries, "
                    f"{int(timing.get('quarantine_size', 0))} quarantined "
                    f"({int(timing.get('quarantine_hits', 0))} hits), "
                    f"{int(timing.get('measure_crashes', 0))} crashes, "
                    f"{int(timing.get('measure_incorrect', 0))} miscompiles"
                )
                log.info(f"injected     : {task.fault_injector.stats()}")
            if args.show_sequences:
                for module, seq in result.best_config.items():
                    log.info(f"\n[{module}]\n  {' '.join(seq)}")
            if recorder is not None:
                from repro.reporting import span_table

                # interrupted runs still finalize into an analyzable dir:
                # the partial result, metrics, and the durable WAL
                recorder.write_result(result)
                recorder.write_metrics()
                log.info(f"\nwhere did the time go (trace: {recorder.path})")
                log.info(span_table(recorder.tracer))
                from repro.obs.diagnostics import (
                    attribution_table,
                    calibration_table,
                    decision_records,
                )

                if decision_records(result):
                    log.info("\nsurrogate calibration")
                    log.info(calibration_table(result))
                    log.info("\ngenerator provenance")
                    log.info(attribution_table(result))
                log.info(
                    f"\nfull report: python -m repro analyze {recorder.path}"
                )
            if interrupted:
                if recorder is not None:
                    log.warning(
                        "interrupted after %d/%s measurements — resume with: "
                        "python -m repro tune --resume %s",
                        len(result.measurements),
                        args.budget,
                        recorder.path,
                    )
                else:
                    log.warning(
                        "interrupted after %d/%s measurements (no --trace-out, "
                        "so nothing durable to resume from)",
                        len(result.measurements),
                        args.budget,
                    )
            elif getattr(args, "prior_bank", None):
                _update_prior_bank(args, result, log)
            if sigstate["signum"] is not None:
                exit_code = 128 + int(sigstate["signum"])
    finally:
        if wal is not None:
            wal.close()
        if recorder is not None:
            recorder.close()
    return exit_code


def _cmd_programs(args: argparse.Namespace) -> int:
    log = configure_logging(getattr(args, "log_level", "info"))
    log.info("cBench-like:")
    for n in cbench_names():
        log.info(f"   {n}")
    log.info("SPEC-like:")
    for n in spec_names():
        log.info(f"   {n}")
    return 0


def _cmd_passes(args: argparse.Namespace) -> int:
    log = configure_logging(getattr(args, "log_level", "info"))
    for p in available_passes():
        log.info(p)
    return 0


def _cmd_motivate(args: argparse.Namespace) -> int:
    log = configure_logging(getattr(args, "log_level", "info"))
    from repro import pipeline
    from repro.machine import Profiler, get_platform
    from repro.machine.interp import run_program

    sequences = [
        ["mem2reg", "slp-vectorizer"],
        ["slp-vectorizer", "mem2reg"],
        ["instcombine", "mem2reg", "slp-vectorizer"],
        ["mem2reg", "instcombine", "slp-vectorizer"],
        ["mem2reg", "slp-vectorizer", "instcombine"],
    ]
    program = cbench_program("telecom_gsm")
    platform = get_platform("arm-a57")
    profiler = Profiler(platform, seed=0)
    target = platform.target_info()
    ref = program.reference_output().output_signature()
    o3_linked, _ = program.compile(
        {m.name: pipeline("-O3") for m in program.modules}, target
    )
    o3 = profiler.measure(o3_linked).seconds
    log.info(f"{'pass sequence':45s}{'SLP.NVI':>9s}{'widened':>9s}{'speedup':>9s}")
    for seq in sequences:
        config = {m.name: pipeline("-O3") for m in program.modules}
        config["long_term"] = seq
        linked, results = program.compile(config, target)
        assert run_program(linked, fuel=program.fuel).output_signature() == ref
        t = profiler.measure(linked).seconds
        st = results["long_term"].stats_json()
        log.info(
            f"{' '.join(seq):45s}"
            f"{st.get('slp-vectorizer.NumVectorInstructions', 0):9d}"
            f"{st.get('instcombine.NumWidened', 0):9d}"
            f"{o3 / t:8.2f}x"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.reporting import ascii_curve, leaderboard, span_table

    log = configure_logging(args.log_level)
    trace_dir = _trace_dir(args)
    results = {}
    for name in args.tuners.split(","):
        name = name.strip()
        # one run directory per tuner so traces stay comparable side by side
        recorder = (
            _recorder(args, os.path.join(trace_dir, name), tuner=name)
            if trace_dir
            else None
        )
        try:
            with _make_task(args, args.program, recorder) as task:
                results[name] = _build_tuner(name, task, args).tune(args.budget)
            if recorder is not None:
                recorder.write_result(results[name])
                recorder.write_metrics()
                log.info(f"[{name}] trace: {recorder.path}")
                log.info(span_table(recorder.tracer, top=8))
        finally:
            if recorder is not None:
                recorder.close()
    log.info(ascii_curve(results))
    log.info("")
    log.info(leaderboard(results))
    if trace_dir:
        # the shared parent gets the machine-readable leaderboard, so the
        # offline analyzer can consume a baseline comparison as one unit
        _write_compare_json(trace_dir, args, results)
        log.info(f"\nfull report: python -m repro analyze {trace_dir}")
    return 0


def _write_compare_json(trace_dir: str, args: argparse.Namespace, results) -> None:
    """Write the ``compare.json`` leaderboard into the shared parent dir."""
    import json

    from repro.obs.recorder import _jsonable

    board = sorted(
        (
            {
                "tuner": name,
                "best_runtime": res.best_runtime if res.measurements else None,
                "speedup_vs_o3": res.speedup_over_o3() if res.measurements else None,
                "n_measurements": len(res.measurements),
                "n_infeasible": res.n_infeasible,
                "run_dir": name,
            }
            for name, res in results.items()
        ),
        key=lambda e: -(e["speedup_vs_o3"] or 0.0),
    )
    payload = {
        "command": "compare",
        "program": args.program,
        "budget": args.budget,
        "seed": args.seed,
        "tuners": [e["tuner"] for e in board],
        "leaderboard": board,
    }
    path = os.path.join(trace_dir, "compare.json")
    with open(path, "w") as fh:
        json.dump(_jsonable(payload), fh, indent=2, sort_keys=True)
        fh.write("\n")


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs.stream import RunWatcher, watch

    log = configure_logging(args.log_level)
    if args.json:
        # one-shot machine-readable snapshot: the WatchState as JSON on
        # stdout, same exit-code contract as --once (0 ok, 3 interrupted)
        state = RunWatcher(args.run_dir).refresh()
        print(json.dumps(state.to_dict(), indent=1, sort_keys=True))
        return 3 if state.interrupted else 0
    clear = sys.stdout.isatty() and not args.once
    try:
        state = watch(
            args.run_dir,
            interval=args.interval,
            once=args.once,
            max_frames=args.frames,
            out=log.info,
            clear=clear,
        )
    except KeyboardInterrupt:
        return 130
    # non-zero when the run it watched ended interrupted, so scripts can
    # chain `repro watch DIR --once || repro tune --resume DIR`
    return 3 if state.interrupted else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.obs.analysis import analyze_run, load_run

    log = configure_logging(args.log_level)
    try:
        report = analyze_run(args.run_dir)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
    if args.chrome_trace or args.prometheus:
        from repro.obs.export import write_chrome_trace, write_prometheus

        run = load_run(args.run_dir)
        if args.chrome_trace:
            trace = write_chrome_trace(run.events, args.chrome_trace)
            log.info(
                f"wrote {args.chrome_trace} "
                f"({len(trace['traceEvents'])} trace events; load it in "
                "https://ui.perfetto.dev)"
            )
        if args.prometheus:
            labels = {
                k: str(run.manifest[k])
                for k in ("program", "tuner", "seed")
                if run.manifest.get(k) is not None
            }
            write_prometheus(run.metrics, args.prometheus, labels=labels)
            log.info(f"wrote {args.prometheus} (Prometheus text exposition)")
    log.info(report.rstrip())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.explain import explain_run
    from repro.obs.trace import Tracer

    log = configure_logging(args.log_level)
    tracer = Tracer(enabled=True) if args.chrome_trace else None
    try:
        report = explain_run(
            args.run_dir,
            prefixes=not args.no_prefixes,
            tracer=tracer,
            write_json=not args.no_json,
        )
    except (FileNotFoundError, ValueError, KeyError) as exc:
        raise SystemExit(str(exc))
    text = report.render()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    if args.chrome_trace:
        from repro.obs.export import write_chrome_trace

        trace = write_chrome_trace(tracer.events(), args.chrome_trace)
        log.info(
            f"wrote {args.chrome_trace} "
            f"({len(trace['traceEvents'])} trace events; load it in "
            "https://ui.perfetto.dev)"
        )
    if not args.no_json:
        log.info(f"wrote {Path(report.run_dir) / 'explain.json'}")
    log.info(text.rstrip())
    return 0


def _cmd_obs_index(args: argparse.Namespace) -> int:
    from repro.obs.warehouse import Warehouse

    log = configure_logging(args.log_level)
    n = 0
    try:
        with Warehouse(args.db) as wh:
            for path in args.paths:
                try:
                    rows = wh.index_path(path)
                except (FileNotFoundError, ValueError, json.JSONDecodeError) as exc:
                    raise SystemExit(f"cannot index {path}: {exc}")
                n += len(rows)
                for row in rows:
                    what = row.get("program") or row.get("suite") or "?"
                    log.info(f"indexed {row['path']} ({what})")
    except ValueError as exc:  # schema-version refusal
        raise SystemExit(str(exc))
    log.info(f"{args.db}: {n} item(s) indexed")
    return 0


def _cmd_obs_history(args: argparse.Namespace) -> int:
    from repro.obs.warehouse import Warehouse, history_table, pass_history_table

    log = configure_logging(args.log_level)
    if not os.path.exists(args.db):
        raise SystemExit(f"no warehouse at {args.db} (run `repro obs index` first)")
    try:
        with Warehouse(args.db) as wh:
            if args.passes:
                log.info(
                    pass_history_table(wh, benchmark=args.benchmark).rstrip()
                )
            else:
                log.info(history_table(wh, benchmark=args.benchmark).rstrip())
    except ValueError as exc:
        raise SystemExit(str(exc))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_bench, run_interp_bench, summary_table, write_bench

    log = configure_logging(args.log_level)
    out = args.out or (
        "BENCH_interp.json" if args.suite == "interp" else "BENCH_surrogate.json"
    )
    if args.suite == "interp":
        payload = run_interp_bench(
            program=args.program,
            seed=args.seed,
            n_measurements=args.measurements,
        )
    else:
        try:
            sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
        except ValueError:
            raise SystemExit(
                f"--sizes must be a comma list of ints, got {args.sizes!r}"
            )
        payload = run_bench(
            program=args.program,
            budget=args.budget,
            seed=args.seed,
            seq_length=args.seq_length,
            sizes=sizes,
            baseline=not args.no_baseline,
        )
    write_bench(payload, out)
    log.info(summary_table(payload))
    log.info(f"\nwrote {out}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.analysis import DiffThresholds, diff_runs
    from repro.obs.recorder import _jsonable

    log = configure_logging(args.log_level)
    if args.against:
        # fleet gate: candidate run_a judged against the warehouse's
        # rolling baseline; run_b must be omitted in this mode
        from repro.obs.warehouse import diff_against_warehouse

        if args.run_b is not None:
            raise SystemExit("diff: give either RUN_B or --against, not both")
        prefix = "warehouse:last-"
        if not args.against.startswith(prefix):
            raise SystemExit(
                f"--against must look like warehouse:last-N, got {args.against!r}"
            )
        try:
            last_n = int(args.against[len(prefix):])
        except ValueError:
            raise SystemExit(
                f"--against must look like warehouse:last-N, got {args.against!r}"
            )
        if not os.path.exists(args.db):
            raise SystemExit(
                f"no warehouse at {args.db} (run `repro obs index` first)"
            )
        thresholds = DiffThresholds(
            max_runtime_ratio=args.max_runtime_ratio,
            max_wall_ratio=args.max_wall_ratio,
            max_cache_hit_drop=args.max_cache_hit_drop,
            max_calibration_ratio=args.max_calibration_ratio,
        )
        try:
            verdict = diff_against_warehouse(
                args.run_a, args.db, last_n, thresholds
            )
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(str(exc))
        text = json.dumps(_jsonable(verdict), indent=2, sort_keys=True)
        if args.json_out:
            with open(args.json_out, "w") as fh:
                fh.write(text + "\n")
        log.info(text)
        return 1 if verdict["regressed"] else 0
    if args.run_b is None:
        raise SystemExit("diff: RUN_B is required (unless using --against)")
    if os.path.isfile(args.run_a) or os.path.isfile(args.run_b):
        # two `repro bench` payloads: gate on the model-side wall ratio
        from repro.bench import diff_bench

        try:
            verdict = diff_bench(
                args.run_a, args.run_b, max_model_ratio=args.max_wall_ratio
            )
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(str(exc))
        text = json.dumps(_jsonable(verdict), indent=2, sort_keys=True)
        if args.json_out:
            with open(args.json_out, "w") as fh:
                fh.write(text + "\n")
        log.info(text)
        return 1 if verdict["regressed"] else 0
    thresholds = DiffThresholds(
        max_runtime_ratio=args.max_runtime_ratio,
        max_wall_ratio=args.max_wall_ratio,
        max_cache_hit_drop=args.max_cache_hit_drop,
        max_calibration_ratio=args.max_calibration_ratio,
    )
    try:
        verdict = diff_runs(args.run_a, args.run_b, thresholds)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    text = json.dumps(_jsonable(verdict), indent=2, sort_keys=True)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(text + "\n")
    log.info(text)
    # the regression gate: CI can run `repro diff base candidate` directly
    return 1 if verdict["regressed"] else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CITROEN compiler phase-ordering autotuner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tune = sub.add_parser("tune", help="tune one program")
    tune.add_argument(
        "program", nargs="?", default=None,
        help="benchmark program (optional with --resume: the run dir's "
        "manifest supplies it)",
    )
    tune.add_argument(
        "--resume", default=None, metavar="RUN_DIR",
        help="resume an interrupted traced run: replays RUN_DIR's "
        "wal.jsonl to reconstruct the search state, then continues the "
        "remaining budget; the final history is bit-identical to an "
        "uninterrupted run (search parameters come from the manifest, "
        "overriding conflicting flags)",
    )
    tune.add_argument(
        "--prior-bank", default=None, metavar="FILE",
        help="persistent PassCorrelationPrior bank: warm-start candidate "
        "generation from it and fold this run's trace back in on "
        "successful completion (created on first use; a corrupt bank "
        "degrades to cold start with a warning)",
    )
    tune.add_argument("--tuner", choices=sorted(_TUNERS), default="citroen")
    tune.add_argument("--budget", type=int, default=100)
    tune.add_argument("--platform", choices=["arm-a57", "amd-x86"], default="arm-a57")
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--seq-length", type=int, default=32)
    tune.add_argument("--show-sequences", action="store_true")
    tune.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="parallel compile workers (1 = deterministic serial loop; "
        "proposals are identical at any setting)",
    )
    tune.add_argument(
        "--compile-cache-size", type=int, default=2048,
        help="bounded LRU compilation cache entries (0 disables)",
    )
    tune.add_argument(
        "--measure-engine", choices=["tree", "bytecode"], default="bytecode",
        help="measurement backend: the flat register-bytecode VM (default) "
        "or the reference tree-walking interpreter; results are "
        "bit-identical either way",
    )
    tune.add_argument(
        "--no-fuse", dest="fuse", action="store_false", default=True,
        help="disable fused superblock kernels in the bytecode VM "
        "(measurements are bit-identical either way)",
    )
    tune.add_argument(
        "--no-execution-memo", dest="execution_memo", action="store_false",
        default=True,
        help="disable the IR-identity execution memo (byte-identical final "
        "IR re-executes instead of replaying the recorded execution; "
        "measured values are bit-identical either way)",
    )
    tune.add_argument(
        "--no-shared-artifacts", dest="shared_artifacts", action="store_false",
        default=True,
        help="disable the process-shared bytecode artifact cache",
    )
    tune.add_argument(
        "--artifact-store", default=None, metavar="DIR",
        help="spill compiled bytecode artifacts to DIR so resumed/daemon "
        "sessions start warm (implies shared artifacts)",
    )
    _add_fault_flags(tune)
    _add_obs_flags(tune)
    tune.set_defaults(func=_cmd_tune)

    progs = sub.add_parser("programs", help="list benchmark programs")
    progs.set_defaults(func=_cmd_programs)

    passes = sub.add_parser("passes", help="list the pass alphabet")
    passes.set_defaults(func=_cmd_passes)

    motivate = sub.add_parser("motivate", help="print the Table 5.1 motivation")
    motivate.set_defaults(func=_cmd_motivate)

    compare = sub.add_parser("compare", help="compare tuners on one program")
    compare.add_argument("program")
    compare.add_argument("--tuners", default="citroen,random,ga,boca")
    compare.add_argument("--budget", type=int, default=60)
    compare.add_argument("--platform", choices=["arm-a57", "amd-x86"], default="arm-a57")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--jobs", type=_positive_int, default=1)
    compare.add_argument("--compile-cache-size", type=int, default=2048)
    compare.add_argument(
        "--measure-engine", choices=["tree", "bytecode"], default="bytecode",
        help="measurement backend (see `tune --measure-engine`)",
    )
    _add_fault_flags(compare)
    _add_obs_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    watch = sub.add_parser(
        "watch",
        help="live terminal dashboard over a traced run directory: "
        "iteration progress, incumbent curve, cache/failure/quarantine/"
        "GP counters, ETA; works on running, killed, and resumed runs "
        "(polls the WAL and events.jsonl incrementally)",
    )
    watch.add_argument(
        "run_dir",
        help="a --trace-out directory (may not exist yet; watching starts "
        "when the run's first artifact lands)",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="poll interval (default 1.0)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (scriptable status check; "
        "exit code 3 when the run ended interrupted)",
    )
    watch.add_argument(
        "--frames", type=_positive_int, default=None, metavar="N",
        help="stop after N frames even if the run is still going",
    )
    watch.add_argument(
        "--json", action="store_true",
        help="print one machine-readable WatchState snapshot as JSON and "
        "exit (implies --once; exit code 3 when the run ended interrupted)",
    )
    watch.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="info"
    )
    watch.set_defaults(func=_cmd_watch)

    analyze = sub.add_parser(
        "analyze",
        help="render a markdown report (spans, calibration, provenance, "
        "convergence) from a recorded run directory",
    )
    analyze.add_argument(
        "run_dir",
        help="a --trace-out directory (tune or compare), or a directory "
        "of runs (the latest by manifest timestamp is selected)",
    )
    analyze.add_argument(
        "--out", default=None, metavar="FILE", help="also write the report to FILE"
    )
    analyze.add_argument(
        "--chrome-trace", default=None, metavar="FILE",
        help="also export the run's spans as Chrome Trace Event JSON "
        "(loads in Perfetto / chrome://tracing)",
    )
    analyze.add_argument(
        "--prometheus", default=None, metavar="FILE",
        help="also export the run's metrics.json as Prometheus text "
        "exposition (labeled with program/tuner/seed)",
    )
    analyze.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="info"
    )
    analyze.set_defaults(func=_cmd_analyze)

    explain = sub.add_parser(
        "explain",
        help="attribute a recorded run's speedup to individual passes: "
        "replay the incumbent with per-pass tracing, then measure "
        "leave-one-out and prefix ablations on the deterministic cost "
        "model (writes explain.json into the run dir)",
    )
    explain.add_argument(
        "run_dir",
        help="a --trace-out directory with a result.json (or a directory "
        "of runs; the latest is selected)",
    )
    explain.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the markdown report to FILE",
    )
    explain.add_argument(
        "--chrome-trace", default=None, metavar="FILE",
        help="also export the replay's pass.* spans as Chrome Trace "
        "Event JSON",
    )
    explain.add_argument(
        "--no-prefixes", action="store_true",
        help="skip the prefix-replay curve (faster; leave-one-out "
        "attribution and no-op detection still run)",
    )
    explain.add_argument(
        "--no-json", action="store_true",
        help="do not write explain.json into the run directory",
    )
    explain.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="info"
    )
    explain.set_defaults(func=_cmd_explain)

    obs = sub.add_parser(
        "obs",
        help="fleet warehouse: index recorded runs and bench payloads "
        "into sqlite, query cross-revision history",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_index = obs_sub.add_parser(
        "index",
        help="ingest run directories (tune or compare parents), run "
        "collections, and BENCH_*.json payloads; re-indexing a path "
        "refreshes its row",
    )
    obs_index.add_argument(
        "paths", nargs="+", metavar="RUNS",
        help="run directories and/or bench JSON files",
    )
    obs_index.add_argument(
        "--db", default="warehouse.sqlite", metavar="FILE",
        help="warehouse sqlite file (created on first use; "
        "default warehouse.sqlite)",
    )
    obs_index.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="info"
    )
    obs_index.set_defaults(func=_cmd_obs_index)
    obs_history = obs_sub.add_parser(
        "history",
        help="print the speedup/wall trajectory of indexed runs across "
        "git revisions (plus bench payload walls)",
    )
    obs_history.add_argument(
        "--benchmark", default=None, metavar="PROGRAM",
        help="restrict to one benchmark program (default: all)",
    )
    obs_history.add_argument(
        "--passes", action="store_true",
        help="aggregate the fleet's per-pass attribution instead: which "
        "passes appear in winning configurations, how often they change "
        "the IR, and their marginal runtime contribution (fed by "
        "explained runs; see `repro explain`)",
    )
    obs_history.add_argument(
        "--db", default="warehouse.sqlite", metavar="FILE",
        help="warehouse sqlite file (default warehouse.sqlite)",
    )
    obs_history.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="info"
    )
    obs_history.set_defaults(func=_cmd_obs_history)

    bench = sub.add_parser(
        "bench",
        help="time the surrogate hot path (fit/extend/predict/coverage at "
        "several dataset sizes plus a seeded end-to-end tune, fast vs "
        "legacy model path) and write a diffable JSON payload; "
        "`--suite interp` instead times the measurement engine (tree "
        "walker vs bytecode VM, micro kernels + workloads + "
        "measurements/sec)",
    )
    bench.add_argument(
        "--suite", choices=["surrogate", "interp"], default="surrogate",
        help="which benchmark suite to run (default surrogate)",
    )
    bench.add_argument("--program", default="security_sha")
    bench.add_argument("--budget", type=int, default=100)
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--seq-length", type=int, default=16)
    bench.add_argument(
        "--sizes", default="64,256,512", metavar="N,N,...",
        help="dataset sizes for the surrogate micro benchmarks "
        "(default 64,256,512)",
    )
    bench.add_argument(
        "--measurements", type=int, default=40, metavar="N",
        help="end-to-end measurement count for the interp suite (default 40)",
    )
    bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="JSON payload path (default BENCH_surrogate.json or "
        "BENCH_interp.json per --suite)",
    )
    bench.add_argument(
        "--no-baseline", action="store_true",
        help="skip the legacy-model-path comparison runs (faster; the "
        "payload then carries only the fast path)",
    )
    bench.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="info"
    )
    bench.set_defaults(func=_cmd_bench)

    diff = sub.add_parser(
        "diff",
        help="compare two recorded runs (or two `repro bench` JSON "
        "payloads); prints a verdict JSON and exits non-zero when run B "
        "regresses past the thresholds (CI gate)",
    )
    diff.add_argument(
        "run_a",
        help="baseline run directory (or bench JSON); with --against, "
        "the *candidate* run judged against the warehouse",
    )
    diff.add_argument(
        "run_b", nargs="?", default=None,
        help="candidate run directory (or bench JSON), judged against A "
        "(omit when using --against)",
    )
    diff.add_argument(
        "--against", default=None, metavar="warehouse:last-N",
        help="judge RUN_A against the rolling fleet baseline: the "
        "per-metric median of the warehouse's last N completed runs of "
        "the same program (see `repro obs index`)",
    )
    diff.add_argument(
        "--db", default="warehouse.sqlite", metavar="FILE",
        help="warehouse sqlite file for --against (default warehouse.sqlite)",
    )
    diff.add_argument(
        "--max-runtime-ratio", type=float, default=1.05, metavar="R",
        help="fail if B's best runtime exceeds R x A's (default 1.05)",
    )
    diff.add_argument(
        "--max-wall-ratio", type=float, default=2.0, metavar="R",
        help="fail if B's traced wall time exceeds R x A's (default 2.0)",
    )
    diff.add_argument(
        "--max-cache-hit-drop", type=float, default=0.2, metavar="D",
        help="fail if B's compile-cache hit rate drops more than D below "
        "A's (default 0.2)",
    )
    diff.add_argument(
        "--max-calibration-ratio", type=float, default=1.5, metavar="R",
        help="fail if B's surrogate-calibration RMSE exceeds R x A's "
        "(default 1.5)",
    )
    diff.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="also write the verdict JSON to FILE",
    )
    diff.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="info"
    )
    diff.set_defaults(func=_cmd_diff)
    return parser


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    """The observability flag group shared by tune and compare."""
    grp = sub.add_argument_group("observability")
    grp.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="record run artifacts (manifest.json, events.jsonl, "
        "metrics.json, result.json) into DIR and print the per-phase "
        "time breakdown; $REPRO_TRACE is the flag-less equivalent",
    )
    grp.add_argument(
        "--metrics-every", type=int, default=0, metavar="N",
        help="emit a metrics snapshot trace event (and a debug log line) "
        "every N measurements (0 disables)",
    )
    grp.add_argument(
        "--no-diagnostics", action="store_true",
        help="disable CITROEN's per-iteration decision records and "
        "generator provenance counters (histories are bit-identical "
        "either way; this only drops the introspection data)",
    )
    grp.add_argument(
        "--pipeline-trace", choices=["off", "incumbents", "all"],
        default="off",
        help="per-pass compiler observability: after a live measurement, "
        "recompile its modules with a PassTrace and emit pass.* spans "
        "(timing, changed flag, stats delta, IR delta per pass). "
        "'incumbents' traces only best-so-far improvements (bounded "
        "overhead); 'all' traces every live measurement; tuning "
        "histories are bit-identical in every mode (needs --trace-out)",
    )
    grp.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"],
        default="info",
        help="stdout verbosity; 'info' (default) is byte-compatible with "
        "the historical print() output",
    )


def _add_fault_flags(sub: argparse.ArgumentParser) -> None:
    """The chaos/fault-tolerance flag group shared by tune and compare."""
    grp = sub.add_argument_group("fault tolerance")
    grp.add_argument(
        "--inject-faults", default="none", metavar="KINDS",
        help="comma list of seeded fault classes to inject into candidate "
        "compiles: crash,hang,transient,miscompile (or 'all'/'none')",
    )
    grp.add_argument(
        "--fault-rate", type=float, default=0.05,
        help="per-candidate fault probability in [0,1] (default 0.05)",
    )
    grp.add_argument(
        "--fault-seed", type=int, default=0,
        help="chaos seed: same seed => identical faults, run after run",
    )
    grp.add_argument(
        "--fault-hang-seconds", type=float, default=0.25,
        help="sleep length of the 'hang' fault (default 0.25s)",
    )
    grp.add_argument(
        "--compile-timeout", type=float, default=None, metavar="SECONDS",
        help="per-candidate compile timeout; timed-out candidates are "
        "quarantined (defaults to half the hang delay when hangs are "
        "injected, otherwise off)",
    )
    grp.add_argument(
        "--kill-after-iter", type=_positive_int, default=None, metavar="N",
        help="chaos-test hook: SIGKILL this process immediately after the "
        "Nth live measurement's WAL record is durable (exercised by "
        "tests/chaos_resume.py; tune only)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
