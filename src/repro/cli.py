"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tune``       run CITROEN (or a baseline) on a benchmark program
``programs``   list the available benchmark programs
``passes``     list the phase-ordering pass alphabet
``motivate``   print the Table 5.1 motivation rows live
``compare``    run several tuners on one program and print the leaderboard
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import (
    AutotuningTask,
    BOCATuner,
    Citroen,
    EnsembleTuner,
    GATuner,
    RandomSearchTuner,
    available_passes,
    cbench_names,
    cbench_program,
    spec_names,
    spec_program,
)

__all__ = ["main"]

_TUNERS = {
    "citroen": lambda task, seed: Citroen(task, seed=seed),
    "random": lambda task, seed: RandomSearchTuner(task, seed=seed),
    "ga": lambda task, seed: GATuner(task, seed=seed),
    "ensemble": lambda task, seed: EnsembleTuner(task, seed=seed),
    "boca": lambda task, seed: BOCATuner(task, seed=seed),
}


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _fault_injector(args: argparse.Namespace):
    """Build the chaos injector from the CLI flags (``None`` when off)."""
    from repro.core.faults import FaultInjector, parse_fault_kinds

    try:
        kinds = parse_fault_kinds(args.inject_faults)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if not kinds:
        return None
    return FaultInjector(
        rate=args.fault_rate,
        kinds=kinds,
        seed=args.fault_seed,
        hang_seconds=args.fault_hang_seconds,
    )


def _make_task(args: argparse.Namespace, program_name: str):
    injector = _fault_injector(args)
    compile_timeout = args.compile_timeout
    if compile_timeout is None and injector is not None and "hang" in injector.kinds:
        # chaos run with hangs: default a timeout below the hang delay so
        # the hang fault actually trips the engine's timeout path
        compile_timeout = max(0.05, injector.hang_seconds / 2.0)
    return AutotuningTask(
        _load_program(program_name),
        platform=args.platform,
        seed=args.seed,
        seq_length=getattr(args, "seq_length", 32),
        jobs=args.jobs,
        compile_cache_size=args.compile_cache_size,
        fault_injector=injector,
        compile_timeout=compile_timeout,
    )


def _load_program(name: str):
    if name in cbench_names():
        return cbench_program(name)
    if name in spec_names():
        return spec_program(name)
    raise SystemExit(
        f"unknown program {name!r}; see `python -m repro programs`"
    )


def _cmd_tune(args: argparse.Namespace) -> int:
    with _make_task(args, args.program) as task:
        print(f"program      : {args.program}")
        print(f"platform     : {args.platform}")
        print(f"hot modules  : {task.hot_modules}")
        print(f"-O3 runtime  : {task.o3_runtime * 1e6:.2f} us")
        tuner = _TUNERS[args.tuner](task, args.seed)
        result = tuner.tune(args.budget)
        print(f"\nbest runtime : {result.best_runtime * 1e6:.2f} us")
        print(f"speedup/-O3  : {result.speedup_over_o3():.3f}x")
        timing = result.timing or task.timing_breakdown()
        wall = timing.get("compile_wall_seconds", 0.0)
        cpu = timing.get("compile_seconds", 0.0)
        print(
            f"compile      : {timing.get('n_compiles', 0)} compiles, "
            f"{100 * timing.get('compile_cache_hit_rate', 0.0):.1f}% cache hits, "
            f"{cpu * 1e3:.1f} ms worker time / {wall * 1e3:.1f} ms wall "
            f"(jobs={args.jobs})"
        )
        if task.fault_injector is not None:
            print(
                f"faults       : {result.n_infeasible} infeasible of "
                f"{len(result.measurements)} measurements | "
                f"{int(timing.get('compile_failures', 0))} compile failures, "
                f"{int(timing.get('compile_timeouts', 0))} timeouts, "
                f"{int(timing.get('compile_retries', 0))} retries, "
                f"{int(timing.get('quarantine_size', 0))} quarantined "
                f"({int(timing.get('quarantine_hits', 0))} hits), "
                f"{int(timing.get('measure_crashes', 0))} crashes, "
                f"{int(timing.get('measure_incorrect', 0))} miscompiles"
            )
            print(f"injected     : {task.fault_injector.stats()}")
        if args.show_sequences:
            for module, seq in result.best_config.items():
                print(f"\n[{module}]\n  {' '.join(seq)}")
    return 0


def _cmd_programs(_args: argparse.Namespace) -> int:
    print("cBench-like:")
    for n in cbench_names():
        print(f"   {n}")
    print("SPEC-like:")
    for n in spec_names():
        print(f"   {n}")
    return 0


def _cmd_passes(_args: argparse.Namespace) -> int:
    for p in available_passes():
        print(p)
    return 0


def _cmd_motivate(_args: argparse.Namespace) -> int:
    from repro import pipeline
    from repro.machine import Profiler, get_platform
    from repro.machine.interp import run_program

    sequences = [
        ["mem2reg", "slp-vectorizer"],
        ["slp-vectorizer", "mem2reg"],
        ["instcombine", "mem2reg", "slp-vectorizer"],
        ["mem2reg", "instcombine", "slp-vectorizer"],
        ["mem2reg", "slp-vectorizer", "instcombine"],
    ]
    program = cbench_program("telecom_gsm")
    platform = get_platform("arm-a57")
    profiler = Profiler(platform, seed=0)
    target = platform.target_info()
    ref = program.reference_output().output_signature()
    o3_linked, _ = program.compile(
        {m.name: pipeline("-O3") for m in program.modules}, target
    )
    o3 = profiler.measure(o3_linked).seconds
    print(f"{'pass sequence':45s}{'SLP.NVI':>9s}{'widened':>9s}{'speedup':>9s}")
    for seq in sequences:
        config = {m.name: pipeline("-O3") for m in program.modules}
        config["long_term"] = seq
        linked, results = program.compile(config, target)
        assert run_program(linked, fuel=program.fuel).output_signature() == ref
        t = profiler.measure(linked).seconds
        st = results["long_term"].stats_json()
        print(
            f"{' '.join(seq):45s}"
            f"{st.get('slp-vectorizer.NumVectorInstructions', 0):9d}"
            f"{st.get('instcombine.NumWidened', 0):9d}"
            f"{o3 / t:8.2f}x"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.reporting import ascii_curve, leaderboard

    results = {}
    for name in args.tuners.split(","):
        name = name.strip()
        with _make_task(args, args.program) as task:
            results[name] = _TUNERS[name](task, args.seed).tune(args.budget)
    print(ascii_curve(results))
    print()
    print(leaderboard(results))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CITROEN compiler phase-ordering autotuner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tune = sub.add_parser("tune", help="tune one program")
    tune.add_argument("program")
    tune.add_argument("--tuner", choices=sorted(_TUNERS), default="citroen")
    tune.add_argument("--budget", type=int, default=100)
    tune.add_argument("--platform", choices=["arm-a57", "amd-x86"], default="arm-a57")
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--seq-length", type=int, default=32)
    tune.add_argument("--show-sequences", action="store_true")
    tune.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="parallel compile workers (1 = deterministic serial loop; "
        "proposals are identical at any setting)",
    )
    tune.add_argument(
        "--compile-cache-size", type=int, default=2048,
        help="bounded LRU compilation cache entries (0 disables)",
    )
    _add_fault_flags(tune)
    tune.set_defaults(func=_cmd_tune)

    progs = sub.add_parser("programs", help="list benchmark programs")
    progs.set_defaults(func=_cmd_programs)

    passes = sub.add_parser("passes", help="list the pass alphabet")
    passes.set_defaults(func=_cmd_passes)

    motivate = sub.add_parser("motivate", help="print the Table 5.1 motivation")
    motivate.set_defaults(func=_cmd_motivate)

    compare = sub.add_parser("compare", help="compare tuners on one program")
    compare.add_argument("program")
    compare.add_argument("--tuners", default="citroen,random,ga,boca")
    compare.add_argument("--budget", type=int, default=60)
    compare.add_argument("--platform", choices=["arm-a57", "amd-x86"], default="arm-a57")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--jobs", type=_positive_int, default=1)
    compare.add_argument("--compile-cache-size", type=int, default=2048)
    _add_fault_flags(compare)
    compare.set_defaults(func=_cmd_compare)
    return parser


def _add_fault_flags(sub: argparse.ArgumentParser) -> None:
    """The chaos/fault-tolerance flag group shared by tune and compare."""
    grp = sub.add_argument_group("fault tolerance")
    grp.add_argument(
        "--inject-faults", default="none", metavar="KINDS",
        help="comma list of seeded fault classes to inject into candidate "
        "compiles: crash,hang,transient,miscompile (or 'all'/'none')",
    )
    grp.add_argument(
        "--fault-rate", type=float, default=0.05,
        help="per-candidate fault probability in [0,1] (default 0.05)",
    )
    grp.add_argument(
        "--fault-seed", type=int, default=0,
        help="chaos seed: same seed => identical faults, run after run",
    )
    grp.add_argument(
        "--fault-hang-seconds", type=float, default=0.25,
        help="sleep length of the 'hang' fault (default 0.25s)",
    )
    grp.add_argument(
        "--compile-timeout", type=float, default=None, metavar="SECONDS",
        help="per-candidate compile timeout; timed-out candidates are "
        "quarantined (defaults to half the hang delay when hangs are "
        "injected, otherwise off)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
