"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tune``       run CITROEN (or a baseline) on a benchmark program
``programs``   list the available benchmark programs
``passes``     list the phase-ordering pass alphabet
``motivate``   print the Table 5.1 motivation rows live
``compare``    run several tuners on one program and print the leaderboard
``analyze``    render a markdown report from a recorded run directory
``diff``       compare two recorded runs (or two ``repro bench`` JSON
               payloads); non-zero exit on regression
``bench``      time the surrogate hot path (micro + end-to-end) and write
               ``BENCH_surrogate.json``

Output goes through :mod:`repro.obs.log` (``--log-level`` selects
verbosity; the default ``info`` level is byte-compatible with the
historical ``print()`` output).  ``--trace-out DIR`` (or the
``REPRO_TRACE`` environment variable) records the run into a directory of
artifacts — ``manifest.json``, ``events.jsonl``, ``metrics.json``,
``result.json`` — and prints the per-phase time breakdown.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import (
    AutotuningTask,
    BOCATuner,
    Citroen,
    EnsembleTuner,
    GATuner,
    RandomSearchTuner,
    available_passes,
    cbench_names,
    cbench_program,
    spec_names,
    spec_program,
)
from repro.obs import RunRecorder, configure_logging

__all__ = ["main"]

_TUNERS = {
    "citroen": lambda task, seed, diagnostics=True: Citroen(
        task, seed=seed, diagnostics=diagnostics
    ),
    "random": lambda task, seed, diagnostics=True: RandomSearchTuner(task, seed=seed),
    "ga": lambda task, seed, diagnostics=True: GATuner(task, seed=seed),
    "ensemble": lambda task, seed, diagnostics=True: EnsembleTuner(task, seed=seed),
    "boca": lambda task, seed, diagnostics=True: BOCATuner(task, seed=seed),
}


def _build_tuner(name: str, task, args: argparse.Namespace):
    return _TUNERS[name](
        task, args.seed, diagnostics=not getattr(args, "no_diagnostics", False)
    )


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _fault_injector(args: argparse.Namespace):
    """Build the chaos injector from the CLI flags (``None`` when off)."""
    from repro.core.faults import FaultInjector, parse_fault_kinds

    try:
        kinds = parse_fault_kinds(args.inject_faults)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if not kinds:
        return None
    return FaultInjector(
        rate=args.fault_rate,
        kinds=kinds,
        seed=args.fault_seed,
        hang_seconds=args.fault_hang_seconds,
    )


def _trace_dir(args: argparse.Namespace) -> Optional[str]:
    """The run-artifact directory: --trace-out flag, else $REPRO_TRACE."""
    return getattr(args, "trace_out", None) or os.environ.get("REPRO_TRACE") or None


def _recorder(args: argparse.Namespace, out_dir: str, **manifest) -> RunRecorder:
    base = {
        "command": args.command,
        "program": getattr(args, "program", None),
        "budget": getattr(args, "budget", None),
        "seed": getattr(args, "seed", None),
        "platform": getattr(args, "platform", None),
        "seq_length": getattr(args, "seq_length", None),
        "jobs": getattr(args, "jobs", None),
        "measure_engine": getattr(args, "measure_engine", None),
        "inject_faults": getattr(args, "inject_faults", "none"),
    }
    base.update(manifest)
    return RunRecorder(out_dir, manifest=base)


def _make_task(
    args: argparse.Namespace, program_name: str, recorder: Optional[RunRecorder] = None
):
    injector = _fault_injector(args)
    compile_timeout = args.compile_timeout
    if compile_timeout is None and injector is not None and "hang" in injector.kinds:
        # chaos run with hangs: default a timeout below the hang delay so
        # the hang fault actually trips the engine's timeout path
        compile_timeout = max(0.05, injector.hang_seconds / 2.0)
    return AutotuningTask(
        _load_program(program_name),
        platform=args.platform,
        seed=args.seed,
        seq_length=getattr(args, "seq_length", 32),
        jobs=args.jobs,
        compile_cache_size=args.compile_cache_size,
        fault_injector=injector,
        compile_timeout=compile_timeout,
        tracer=recorder.tracer if recorder is not None else None,
        metrics=recorder.registry if recorder is not None else None,
        metrics_every=getattr(args, "metrics_every", 0),
        measure_engine=getattr(args, "measure_engine", "bytecode"),
    )


def _load_program(name: str):
    if name in cbench_names():
        return cbench_program(name)
    if name in spec_names():
        return spec_program(name)
    raise SystemExit(
        f"unknown program {name!r}; see `python -m repro programs`"
    )


def _cmd_tune(args: argparse.Namespace) -> int:
    log = configure_logging(args.log_level)
    trace_dir = _trace_dir(args)
    recorder = (
        _recorder(args, trace_dir, tuner=args.tuner) if trace_dir else None
    )
    try:
        with _make_task(args, args.program, recorder) as task:
            log.info(f"program      : {args.program}")
            log.info(f"platform     : {args.platform}")
            log.info(f"hot modules  : {task.hot_modules}")
            log.info(f"-O3 runtime  : {task.o3_runtime * 1e6:.2f} us")
            tuner = _build_tuner(args.tuner, task, args)
            result = tuner.tune(args.budget)
            log.info(f"\nbest runtime : {result.best_runtime * 1e6:.2f} us")
            log.info(f"speedup/-O3  : {result.speedup_over_o3():.3f}x")
            timing = result.timing or task.timing_breakdown()
            wall = timing.get("compile_wall_seconds", 0.0)
            cpu = timing.get("compile_seconds", 0.0)
            log.info(
                f"compile      : {timing.get('n_compiles', 0)} compiles, "
                f"{100 * timing.get('compile_cache_hit_rate', 0.0):.1f}% cache hits, "
                f"{cpu * 1e3:.1f} ms worker time / {wall * 1e3:.1f} ms wall "
                f"(jobs={args.jobs})"
            )
            if task.fault_injector is not None:
                log.info(
                    f"faults       : {result.n_infeasible} infeasible of "
                    f"{len(result.measurements)} measurements | "
                    f"{int(timing.get('compile_failures', 0))} compile failures, "
                    f"{int(timing.get('compile_timeouts', 0))} timeouts, "
                    f"{int(timing.get('compile_retries', 0))} retries, "
                    f"{int(timing.get('quarantine_size', 0))} quarantined "
                    f"({int(timing.get('quarantine_hits', 0))} hits), "
                    f"{int(timing.get('measure_crashes', 0))} crashes, "
                    f"{int(timing.get('measure_incorrect', 0))} miscompiles"
                )
                log.info(f"injected     : {task.fault_injector.stats()}")
            if args.show_sequences:
                for module, seq in result.best_config.items():
                    log.info(f"\n[{module}]\n  {' '.join(seq)}")
            if recorder is not None:
                from repro.reporting import span_table

                recorder.write_result(result)
                recorder.write_metrics()
                log.info(f"\nwhere did the time go (trace: {recorder.path})")
                log.info(span_table(recorder.tracer))
                from repro.obs.diagnostics import (
                    attribution_table,
                    calibration_table,
                    decision_records,
                )

                if decision_records(result):
                    log.info("\nsurrogate calibration")
                    log.info(calibration_table(result))
                    log.info("\ngenerator provenance")
                    log.info(attribution_table(result))
                log.info(
                    f"\nfull report: python -m repro analyze {recorder.path}"
                )
    finally:
        if recorder is not None:
            recorder.close()
    return 0


def _cmd_programs(args: argparse.Namespace) -> int:
    log = configure_logging(getattr(args, "log_level", "info"))
    log.info("cBench-like:")
    for n in cbench_names():
        log.info(f"   {n}")
    log.info("SPEC-like:")
    for n in spec_names():
        log.info(f"   {n}")
    return 0


def _cmd_passes(args: argparse.Namespace) -> int:
    log = configure_logging(getattr(args, "log_level", "info"))
    for p in available_passes():
        log.info(p)
    return 0


def _cmd_motivate(args: argparse.Namespace) -> int:
    log = configure_logging(getattr(args, "log_level", "info"))
    from repro import pipeline
    from repro.machine import Profiler, get_platform
    from repro.machine.interp import run_program

    sequences = [
        ["mem2reg", "slp-vectorizer"],
        ["slp-vectorizer", "mem2reg"],
        ["instcombine", "mem2reg", "slp-vectorizer"],
        ["mem2reg", "instcombine", "slp-vectorizer"],
        ["mem2reg", "slp-vectorizer", "instcombine"],
    ]
    program = cbench_program("telecom_gsm")
    platform = get_platform("arm-a57")
    profiler = Profiler(platform, seed=0)
    target = platform.target_info()
    ref = program.reference_output().output_signature()
    o3_linked, _ = program.compile(
        {m.name: pipeline("-O3") for m in program.modules}, target
    )
    o3 = profiler.measure(o3_linked).seconds
    log.info(f"{'pass sequence':45s}{'SLP.NVI':>9s}{'widened':>9s}{'speedup':>9s}")
    for seq in sequences:
        config = {m.name: pipeline("-O3") for m in program.modules}
        config["long_term"] = seq
        linked, results = program.compile(config, target)
        assert run_program(linked, fuel=program.fuel).output_signature() == ref
        t = profiler.measure(linked).seconds
        st = results["long_term"].stats_json()
        log.info(
            f"{' '.join(seq):45s}"
            f"{st.get('slp-vectorizer.NumVectorInstructions', 0):9d}"
            f"{st.get('instcombine.NumWidened', 0):9d}"
            f"{o3 / t:8.2f}x"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.reporting import ascii_curve, leaderboard, span_table

    log = configure_logging(args.log_level)
    trace_dir = _trace_dir(args)
    results = {}
    for name in args.tuners.split(","):
        name = name.strip()
        # one run directory per tuner so traces stay comparable side by side
        recorder = (
            _recorder(args, os.path.join(trace_dir, name), tuner=name)
            if trace_dir
            else None
        )
        try:
            with _make_task(args, args.program, recorder) as task:
                results[name] = _build_tuner(name, task, args).tune(args.budget)
            if recorder is not None:
                recorder.write_result(results[name])
                recorder.write_metrics()
                log.info(f"[{name}] trace: {recorder.path}")
                log.info(span_table(recorder.tracer, top=8))
        finally:
            if recorder is not None:
                recorder.close()
    log.info(ascii_curve(results))
    log.info("")
    log.info(leaderboard(results))
    if trace_dir:
        # the shared parent gets the machine-readable leaderboard, so the
        # offline analyzer can consume a baseline comparison as one unit
        _write_compare_json(trace_dir, args, results)
        log.info(f"\nfull report: python -m repro analyze {trace_dir}")
    return 0


def _write_compare_json(trace_dir: str, args: argparse.Namespace, results) -> None:
    """Write the ``compare.json`` leaderboard into the shared parent dir."""
    import json

    from repro.obs.recorder import _jsonable

    board = sorted(
        (
            {
                "tuner": name,
                "best_runtime": res.best_runtime if res.measurements else None,
                "speedup_vs_o3": res.speedup_over_o3() if res.measurements else None,
                "n_measurements": len(res.measurements),
                "n_infeasible": res.n_infeasible,
                "run_dir": name,
            }
            for name, res in results.items()
        ),
        key=lambda e: -(e["speedup_vs_o3"] or 0.0),
    )
    payload = {
        "command": "compare",
        "program": args.program,
        "budget": args.budget,
        "seed": args.seed,
        "tuners": [e["tuner"] for e in board],
        "leaderboard": board,
    }
    path = os.path.join(trace_dir, "compare.json")
    with open(path, "w") as fh:
        json.dump(_jsonable(payload), fh, indent=2, sort_keys=True)
        fh.write("\n")


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.obs.analysis import analyze_run

    log = configure_logging(args.log_level)
    try:
        report = analyze_run(args.run_dir)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
    log.info(report.rstrip())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_bench, run_interp_bench, summary_table, write_bench

    log = configure_logging(args.log_level)
    out = args.out or (
        "BENCH_interp.json" if args.suite == "interp" else "BENCH_surrogate.json"
    )
    if args.suite == "interp":
        payload = run_interp_bench(
            program=args.program,
            seed=args.seed,
            n_measurements=args.measurements,
        )
    else:
        try:
            sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
        except ValueError:
            raise SystemExit(
                f"--sizes must be a comma list of ints, got {args.sizes!r}"
            )
        payload = run_bench(
            program=args.program,
            budget=args.budget,
            seed=args.seed,
            seq_length=args.seq_length,
            sizes=sizes,
            baseline=not args.no_baseline,
        )
    write_bench(payload, out)
    log.info(summary_table(payload))
    log.info(f"\nwrote {out}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.analysis import DiffThresholds, diff_runs
    from repro.obs.recorder import _jsonable

    log = configure_logging(args.log_level)
    if os.path.isfile(args.run_a) or os.path.isfile(args.run_b):
        # two `repro bench` payloads: gate on the model-side wall ratio
        from repro.bench import diff_bench

        try:
            verdict = diff_bench(
                args.run_a, args.run_b, max_model_ratio=args.max_wall_ratio
            )
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(str(exc))
        text = json.dumps(_jsonable(verdict), indent=2, sort_keys=True)
        if args.json_out:
            with open(args.json_out, "w") as fh:
                fh.write(text + "\n")
        log.info(text)
        return 1 if verdict["regressed"] else 0
    thresholds = DiffThresholds(
        max_runtime_ratio=args.max_runtime_ratio,
        max_wall_ratio=args.max_wall_ratio,
        max_cache_hit_drop=args.max_cache_hit_drop,
        max_calibration_ratio=args.max_calibration_ratio,
    )
    try:
        verdict = diff_runs(args.run_a, args.run_b, thresholds)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    text = json.dumps(_jsonable(verdict), indent=2, sort_keys=True)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(text + "\n")
    log.info(text)
    # the regression gate: CI can run `repro diff base candidate` directly
    return 1 if verdict["regressed"] else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CITROEN compiler phase-ordering autotuner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tune = sub.add_parser("tune", help="tune one program")
    tune.add_argument("program")
    tune.add_argument("--tuner", choices=sorted(_TUNERS), default="citroen")
    tune.add_argument("--budget", type=int, default=100)
    tune.add_argument("--platform", choices=["arm-a57", "amd-x86"], default="arm-a57")
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--seq-length", type=int, default=32)
    tune.add_argument("--show-sequences", action="store_true")
    tune.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="parallel compile workers (1 = deterministic serial loop; "
        "proposals are identical at any setting)",
    )
    tune.add_argument(
        "--compile-cache-size", type=int, default=2048,
        help="bounded LRU compilation cache entries (0 disables)",
    )
    tune.add_argument(
        "--measure-engine", choices=["tree", "bytecode"], default="bytecode",
        help="measurement backend: the flat register-bytecode VM (default) "
        "or the reference tree-walking interpreter; results are "
        "bit-identical either way",
    )
    _add_fault_flags(tune)
    _add_obs_flags(tune)
    tune.set_defaults(func=_cmd_tune)

    progs = sub.add_parser("programs", help="list benchmark programs")
    progs.set_defaults(func=_cmd_programs)

    passes = sub.add_parser("passes", help="list the pass alphabet")
    passes.set_defaults(func=_cmd_passes)

    motivate = sub.add_parser("motivate", help="print the Table 5.1 motivation")
    motivate.set_defaults(func=_cmd_motivate)

    compare = sub.add_parser("compare", help="compare tuners on one program")
    compare.add_argument("program")
    compare.add_argument("--tuners", default="citroen,random,ga,boca")
    compare.add_argument("--budget", type=int, default=60)
    compare.add_argument("--platform", choices=["arm-a57", "amd-x86"], default="arm-a57")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--jobs", type=_positive_int, default=1)
    compare.add_argument("--compile-cache-size", type=int, default=2048)
    compare.add_argument(
        "--measure-engine", choices=["tree", "bytecode"], default="bytecode",
        help="measurement backend (see `tune --measure-engine`)",
    )
    _add_fault_flags(compare)
    _add_obs_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    analyze = sub.add_parser(
        "analyze",
        help="render a markdown report (spans, calibration, provenance, "
        "convergence) from a recorded run directory",
    )
    analyze.add_argument("run_dir", help="a --trace-out directory (tune or compare)")
    analyze.add_argument(
        "--out", default=None, metavar="FILE", help="also write the report to FILE"
    )
    analyze.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="info"
    )
    analyze.set_defaults(func=_cmd_analyze)

    bench = sub.add_parser(
        "bench",
        help="time the surrogate hot path (fit/extend/predict/coverage at "
        "several dataset sizes plus a seeded end-to-end tune, fast vs "
        "legacy model path) and write a diffable JSON payload; "
        "`--suite interp` instead times the measurement engine (tree "
        "walker vs bytecode VM, micro kernels + workloads + "
        "measurements/sec)",
    )
    bench.add_argument(
        "--suite", choices=["surrogate", "interp"], default="surrogate",
        help="which benchmark suite to run (default surrogate)",
    )
    bench.add_argument("--program", default="security_sha")
    bench.add_argument("--budget", type=int, default=100)
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--seq-length", type=int, default=16)
    bench.add_argument(
        "--sizes", default="64,256,512", metavar="N,N,...",
        help="dataset sizes for the surrogate micro benchmarks "
        "(default 64,256,512)",
    )
    bench.add_argument(
        "--measurements", type=int, default=40, metavar="N",
        help="end-to-end measurement count for the interp suite (default 40)",
    )
    bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="JSON payload path (default BENCH_surrogate.json or "
        "BENCH_interp.json per --suite)",
    )
    bench.add_argument(
        "--no-baseline", action="store_true",
        help="skip the legacy-model-path comparison runs (faster; the "
        "payload then carries only the fast path)",
    )
    bench.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="info"
    )
    bench.set_defaults(func=_cmd_bench)

    diff = sub.add_parser(
        "diff",
        help="compare two recorded runs (or two `repro bench` JSON "
        "payloads); prints a verdict JSON and exits non-zero when run B "
        "regresses past the thresholds (CI gate)",
    )
    diff.add_argument("run_a", help="baseline run directory (or bench JSON)")
    diff.add_argument(
        "run_b", help="candidate run directory (or bench JSON), judged against A"
    )
    diff.add_argument(
        "--max-runtime-ratio", type=float, default=1.05, metavar="R",
        help="fail if B's best runtime exceeds R x A's (default 1.05)",
    )
    diff.add_argument(
        "--max-wall-ratio", type=float, default=2.0, metavar="R",
        help="fail if B's traced wall time exceeds R x A's (default 2.0)",
    )
    diff.add_argument(
        "--max-cache-hit-drop", type=float, default=0.2, metavar="D",
        help="fail if B's compile-cache hit rate drops more than D below "
        "A's (default 0.2)",
    )
    diff.add_argument(
        "--max-calibration-ratio", type=float, default=1.5, metavar="R",
        help="fail if B's surrogate-calibration RMSE exceeds R x A's "
        "(default 1.5)",
    )
    diff.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="also write the verdict JSON to FILE",
    )
    diff.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="info"
    )
    diff.set_defaults(func=_cmd_diff)
    return parser


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    """The observability flag group shared by tune and compare."""
    grp = sub.add_argument_group("observability")
    grp.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="record run artifacts (manifest.json, events.jsonl, "
        "metrics.json, result.json) into DIR and print the per-phase "
        "time breakdown; $REPRO_TRACE is the flag-less equivalent",
    )
    grp.add_argument(
        "--metrics-every", type=int, default=0, metavar="N",
        help="emit a metrics snapshot trace event (and a debug log line) "
        "every N measurements (0 disables)",
    )
    grp.add_argument(
        "--no-diagnostics", action="store_true",
        help="disable CITROEN's per-iteration decision records and "
        "generator provenance counters (histories are bit-identical "
        "either way; this only drops the introspection data)",
    )
    grp.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"],
        default="info",
        help="stdout verbosity; 'info' (default) is byte-compatible with "
        "the historical print() output",
    )


def _add_fault_flags(sub: argparse.ArgumentParser) -> None:
    """The chaos/fault-tolerance flag group shared by tune and compare."""
    grp = sub.add_argument_group("fault tolerance")
    grp.add_argument(
        "--inject-faults", default="none", metavar="KINDS",
        help="comma list of seeded fault classes to inject into candidate "
        "compiles: crash,hang,transient,miscompile (or 'all'/'none')",
    )
    grp.add_argument(
        "--fault-rate", type=float, default=0.05,
        help="per-candidate fault probability in [0,1] (default 0.05)",
    )
    grp.add_argument(
        "--fault-seed", type=int, default=0,
        help="chaos seed: same seed => identical faults, run after run",
    )
    grp.add_argument(
        "--fault-hang-seconds", type=float, default=0.25,
        help="sleep length of the 'hang' fault (default 0.25s)",
    )
    grp.add_argument(
        "--compile-timeout", type=float, default=None, metavar="SECONDS",
        help="per-candidate compile timeout; timed-out candidates are "
        "quarantined (defaults to half the hang delay when hangs are "
        "injected, otherwise off)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
