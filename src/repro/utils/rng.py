"""Deterministic randomness plumbing.

Every stochastic component in this library accepts either an integer seed, a
``numpy.random.Generator``, or ``None``.  Routing everything through
:func:`as_generator` keeps experiments reproducible and lets callers share a
single generator between cooperating components when they want correlated
streams.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    ``None`` yields a nondeterministic generator; an ``int`` yields a seeded
    one; an existing generator is returned unchanged (not copied), so state
    is shared with the caller.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` independent child generators from ``rng``.

    Children are statistically independent of each other and of the parent's
    future output, which makes parallel fan-out (e.g. per-repetition tuner
    runs) reproducible regardless of execution order.
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
