"""Shared utilities: deterministic RNG plumbing and small helpers."""

from repro.utils.rng import as_generator, spawn

__all__ = ["as_generator", "spawn"]
