"""Genetic operators: tournament selection, SBX crossover, polynomial
mutation (continuous) and point operators (sequences).

The continuous operators follow the pymoo defaults the paper configures
(§4.3.2): binary tournament, SBX with crossover probability 0.5,
polynomial mutation with probability 1/D.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "tournament_select",
    "sbx_crossover",
    "polynomial_mutation",
    "seq_two_point_crossover",
    "seq_point_mutation",
]


def tournament_select(
    fitness: np.ndarray, n: int, rng: np.random.Generator, k: int = 2
) -> np.ndarray:
    """Return ``n`` indices chosen by size-``k`` tournaments (lower = better)."""
    pop = len(fitness)
    entrants = rng.integers(0, pop, size=(n, k))
    winners = entrants[np.arange(n), np.argmin(fitness[entrants], axis=1)]
    return winners


def sbx_crossover(
    p1: np.ndarray,
    p2: np.ndarray,
    rng: np.random.Generator,
    eta: float = 15.0,
    prob: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Simulated binary crossover on the unit box (per-gene with ``prob``)."""
    c1, c2 = p1.copy(), p2.copy()
    mask = rng.random(p1.shape) < prob
    u = rng.random(p1.shape)
    beta = np.where(
        u <= 0.5,
        (2.0 * u) ** (1.0 / (eta + 1.0)),
        (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (eta + 1.0)),
    )
    mean = 0.5 * (p1 + p2)
    diff = 0.5 * np.abs(p2 - p1)
    lo = mean - beta * diff
    hi = mean + beta * diff
    c1[mask] = lo[mask]
    c2[mask] = hi[mask]
    return np.clip(c1, 0.0, 1.0), np.clip(c2, 0.0, 1.0)


def polynomial_mutation(
    x: np.ndarray, rng: np.random.Generator, eta: float = 20.0, prob: float = None
) -> np.ndarray:
    """Polynomial mutation on the unit box; default prob = 1/D."""
    d = x.shape[-1]
    if prob is None:
        prob = 1.0 / d
    y = x.copy()
    mask = rng.random(x.shape) < prob
    u = rng.random(x.shape)
    delta = np.where(
        u < 0.5,
        (2.0 * u) ** (1.0 / (eta + 1.0)) - 1.0,
        1.0 - (2.0 * (1.0 - u)) ** (1.0 / (eta + 1.0)),
    )
    y[mask] = np.clip(y[mask] + delta[mask], 0.0, 1.0)
    return y


def seq_two_point_crossover(
    p1: np.ndarray, p2: np.ndarray, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Two-point crossover on integer sequences."""
    n = len(p1)
    a, b = sorted(rng.integers(0, n + 1, size=2))
    c1, c2 = p1.copy(), p2.copy()
    c1[a:b], c2[a:b] = p2[a:b].copy(), p1[a:b].copy()
    return c1, c2


def seq_point_mutation(
    x: np.ndarray,
    alphabet: int,
    rng: np.random.Generator,
    prob: float = None,
    weights: np.ndarray = None,
) -> np.ndarray:
    """Per-gene random-reset mutation; default prob = 1/length.

    ``weights`` biases the replacement gene distribution (pass-correlation
    prior support).
    """
    n = len(x)
    if prob is None:
        prob = 1.0 / n
    y = x.copy()
    mask = rng.random(n) < prob
    if not mask.any():
        mask[rng.integers(0, n)] = True  # always mutate at least one gene
    k = int(mask.sum())
    if weights is None:
        y[mask] = rng.integers(0, alphabet, size=k)
    else:
        y[mask] = rng.choice(alphabet, size=k, p=weights)
    return y
