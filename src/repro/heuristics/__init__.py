"""Heuristic black-box optimisers (ask/tell interface).

Continuous optimisers operate on the unit box ``[0, 1]^d``; discrete
sequence optimisers operate on fixed-length integer vectors over a pass
alphabet.  All are minimisers.  AIBO (Ch. 4) uses them to *initialise* the
acquisition-function maximiser — not to optimise the AF — which is the
paper's central distinction (Fig 4.2).
"""

from repro.heuristics.base import ContinuousOptimizer, SequenceOptimizer
from repro.heuristics.cmaes import CMAES
from repro.heuristics.ga import ContinuousGA, SequenceGA
from repro.heuristics.des import DiscreteES
from repro.heuristics.random_search import RandomSearch, RandomSequenceSearch
from repro.heuristics.hill_climbing import HillClimbing, SequenceHillClimbing
from repro.heuristics.simulated_annealing import SequenceSimulatedAnnealing
from repro.heuristics.pso import PSO

__all__ = [
    "ContinuousOptimizer",
    "SequenceOptimizer",
    "CMAES",
    "ContinuousGA",
    "SequenceGA",
    "DiscreteES",
    "RandomSearch",
    "RandomSequenceSearch",
    "HillClimbing",
    "SequenceHillClimbing",
    "SequenceSimulatedAnnealing",
    "PSO",
]
