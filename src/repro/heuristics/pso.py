"""Particle swarm optimisation on the unit box (OpenTuner-style technique)."""

from __future__ import annotations

import numpy as np

from repro.heuristics.base import ContinuousOptimizer
from repro.utils.rng import SeedLike

__all__ = ["PSO"]


class PSO(ContinuousOptimizer):
    """Canonical global-best PSO; ``ask`` advances particles one step."""

    def __init__(
        self,
        dim: int,
        swarm: int = 20,
        seed: SeedLike = None,
        inertia: float = 0.72,
        c_personal: float = 1.49,
        c_global: float = 1.49,
    ) -> None:
        super().__init__(dim, seed)
        self.swarm = swarm
        self.inertia = inertia
        self.c_personal = c_personal
        self.c_global = c_global
        self.x = self.rng.random((swarm, dim))
        self.v = 0.1 * (self.rng.random((swarm, dim)) - 0.5)
        self.p_best_x = self.x.copy()
        self.p_best_y = np.full(swarm, np.inf)
        self._cursor = 0

    def ask(self, n: int) -> np.ndarray:
        """Advance ``n`` particles one velocity step each."""
        out = []
        for _ in range(n):
            i = self._cursor % self.swarm
            self._cursor += 1
            g = self.best_x if self.best_x is not None else self.x[i]
            r1, r2 = self.rng.random(self.dim), self.rng.random(self.dim)
            self.v[i] = (
                self.inertia * self.v[i]
                + self.c_personal * r1 * (self.p_best_x[i] - self.x[i])
                + self.c_global * r2 * (g - self.x[i])
            )
            self.x[i] = np.clip(self.x[i] + self.v[i], 0.0, 1.0)
            out.append(self.x[i].copy())
        return np.asarray(out)

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:
        for xi, yi in zip(X, y):
            i = int(self.rng.integers(0, self.swarm)) if self.swarm else 0
            # attribute the sample to the nearest particle's personal best
            d = ((self.x - xi) ** 2).sum(1)
            i = int(np.argmin(d))
            if yi < self.p_best_y[i]:
                self.p_best_y[i] = float(yi)
                self.p_best_x[i] = np.asarray(xi, dtype=float).copy()
