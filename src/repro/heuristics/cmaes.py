"""Covariance Matrix Adaptation Evolution Strategy (CMA-ES).

Full (mu/mu_w, lambda) implementation with cumulative step-size adaptation
and rank-one + rank-mu covariance updates (eqs 2.8–2.12 of the thesis /
Hansen's tutorial).  The ask/tell interface buffers told samples and runs a
generation update every ``lam`` samples, so AIBO can feed it one AF-chosen
point per BO iteration.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.heuristics.base import ContinuousOptimizer
from repro.utils.rng import SeedLike

__all__ = ["CMAES"]


class CMAES(ContinuousOptimizer):
    """CMA-ES on the unit box (samples are clipped to ``[0, 1]``)."""

    def __init__(
        self,
        dim: int,
        sigma0: float = 0.2,
        lam: Optional[int] = None,
        seed: SeedLike = None,
        mean0: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(dim, seed)
        n = dim
        self.lam = lam if lam is not None else 4 + int(3 * math.log(n))
        self.mu = self.lam // 2
        w = math.log(self.mu + 0.5) - np.log(np.arange(1, self.mu + 1))
        self.weights = w / w.sum()
        self.mu_eff = 1.0 / float((self.weights**2).sum())

        # strategy parameters (Hansen's defaults)
        self.c_sigma = (self.mu_eff + 2.0) / (n + self.mu_eff + 5.0)
        self.d_sigma = (
            1.0 + 2.0 * max(0.0, math.sqrt((self.mu_eff - 1.0) / (n + 1.0)) - 1.0) + self.c_sigma
        )
        self.c_c = (4.0 + self.mu_eff / n) / (n + 4.0 + 2.0 * self.mu_eff / n)
        self.c_1 = 2.0 / ((n + 1.3) ** 2 + self.mu_eff)
        self.c_mu = min(
            1.0 - self.c_1,
            2.0 * (self.mu_eff - 2.0 + 1.0 / self.mu_eff) / ((n + 2.0) ** 2 + self.mu_eff),
        )
        self.chi_n = math.sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n))

        self.mean = (
            np.asarray(mean0, dtype=float) if mean0 is not None else np.full(n, 0.5)
        )
        self.sigma = sigma0
        self.C = np.eye(n)
        self.p_sigma = np.zeros(n)
        self.p_c = np.zeros(n)
        self._eigen_fresh = False
        self._B = np.eye(n)
        self._D = np.ones(n)
        self._buffer: List[Tuple[np.ndarray, float]] = []
        self.generation = 0

    # -- sampling -------------------------------------------------------------
    def _decompose(self) -> None:
        if self._eigen_fresh:
            return
        C = (self.C + self.C.T) / 2.0
        vals, vecs = np.linalg.eigh(C)
        vals = np.maximum(vals, 1e-20)
        self._B = vecs
        self._D = np.sqrt(vals)
        self._eigen_fresh = True

    def ask(self, n: int) -> np.ndarray:
        """Sample ``n`` points from the current search distribution."""
        self._decompose()
        z = self.rng.standard_normal((n, self.dim))
        y = z * self._D  # scale
        x = self.mean + self.sigma * (y @ self._B.T)
        return np.clip(x, 0.0, 1.0)

    def seed_mean(self, x: np.ndarray) -> None:
        """Centre the search distribution on ``x`` (best initial sample)."""
        self.mean = np.asarray(x, dtype=float).copy()

    # -- update -----------------------------------------------------------------
    def _update(self, X: np.ndarray, y: np.ndarray) -> None:
        for xi, yi in zip(X, y):
            self._buffer.append((np.asarray(xi, dtype=float), float(yi)))
        while len(self._buffer) >= self.lam:
            batch = self._buffer[: self.lam]
            self._buffer = self._buffer[self.lam :]
            self._generation_update(batch)

    def _generation_update(self, batch: List[Tuple[np.ndarray, float]]) -> None:
        n = self.dim
        batch.sort(key=lambda t: t[1])
        xs = np.asarray([b[0] for b in batch[: self.mu]])
        old_mean = self.mean.copy()
        self.mean = (self.weights[:, None] * xs).sum(axis=0)  # eq 2.8

        self._decompose()
        inv_sqrt = self._B @ np.diag(1.0 / self._D) @ self._B.T
        delta = (self.mean - old_mean) / max(self.sigma, 1e-12)

        # eq 2.9: evolution path for sigma
        self.p_sigma = (1.0 - self.c_sigma) * self.p_sigma + math.sqrt(
            self.c_sigma * (2.0 - self.c_sigma) * self.mu_eff
        ) * (inv_sqrt @ delta)
        # eq 2.10: step-size update
        self.sigma *= math.exp(
            (self.c_sigma / self.d_sigma) * (np.linalg.norm(self.p_sigma) / self.chi_n - 1.0)
        )
        self.sigma = float(np.clip(self.sigma, 1e-8, 1.0))

        # eq 2.11: evolution path for C (with stall indicator h_sigma)
        denom = math.sqrt(
            1.0 - (1.0 - self.c_sigma) ** (2.0 * (self.generation + 1))
        )
        h_sigma = (
            np.linalg.norm(self.p_sigma) / max(denom, 1e-12)
            < (1.4 + 2.0 / (n + 1.0)) * self.chi_n
        )
        self.p_c = (1.0 - self.c_c) * self.p_c
        if h_sigma:
            self.p_c += math.sqrt(self.c_c * (2.0 - self.c_c) * self.mu_eff) * delta

        # eq 2.12: covariance update (rank-one + rank-mu)
        artmp = (xs - old_mean) / max(self.sigma, 1e-12)
        rank_mu = (self.weights[:, None, None] * (artmp[:, :, None] @ artmp[:, None, :])).sum(0)
        c1a = self.c_1 * (1.0 - (0 if h_sigma else 1) * self.c_c * (2.0 - self.c_c))
        self.C = (
            (1.0 - c1a - self.c_mu) * self.C
            + self.c_1 * np.outer(self.p_c, self.p_c)
            + self.c_mu * rank_mu
        )
        self._eigen_fresh = False
        self.generation += 1
