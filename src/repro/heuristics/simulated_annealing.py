"""Simulated annealing over pass sequences (OpenTuner-style technique)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.heuristics.base import SequenceOptimizer
from repro.heuristics.operators import seq_point_mutation
from repro.utils.rng import SeedLike

__all__ = ["SequenceSimulatedAnnealing"]


class SequenceSimulatedAnnealing(SequenceOptimizer):
    """Metropolis acceptance around a walking incumbent with geometric
    cooling.  Temperatures are relative to the observed objective scale."""

    def __init__(
        self,
        length: int,
        alphabet: int,
        seed: SeedLike = None,
        t0: float = 0.1,
        cooling: float = 0.97,
    ) -> None:
        super().__init__(length, alphabet, seed)
        self.t0 = t0
        self.cooling = cooling
        self.temperature = t0
        self.current_x: Optional[np.ndarray] = None
        self.current_y = float("inf")
        self._scale = 1.0

    def ask(self, n: int) -> np.ndarray:
        """Propose ``n`` mutations of the current (walking) state."""
        if self.current_x is None:
            return self.random_sequences(n)
        return np.asarray(
            [seq_point_mutation(self.current_x, self.alphabet, self.rng) for _ in range(n)],
            dtype=int,
        )

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:
        for xi, yi in zip(X, y):
            self._scale = max(self._scale * 0.99, abs(float(yi)), 1e-12)
            if self.current_x is None:
                self.current_x, self.current_y = xi.copy(), float(yi)
                continue
            delta = (float(yi) - self.current_y) / self._scale
            if delta <= 0 or self.rng.random() < np.exp(-delta / max(self.temperature, 1e-9)):
                self.current_x, self.current_y = xi.copy(), float(yi)
            self.temperature *= self.cooling
