"""Hill climbing (continuous Gaussian-step and sequence point-step)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.heuristics.base import ContinuousOptimizer, SequenceOptimizer
from repro.heuristics.operators import seq_point_mutation
from repro.utils.rng import SeedLike

__all__ = ["HillClimbing", "SequenceHillClimbing"]


class HillClimbing(ContinuousOptimizer):
    """Gaussian-perturbation hill climbing around the incumbent best."""

    def __init__(self, dim: int, step: float = 0.1, seed: SeedLike = None) -> None:
        super().__init__(dim, seed)
        self.step = step

    def ask(self, n: int) -> np.ndarray:
        """Propose ``n`` perturbations of the incumbent best."""
        if self.best_x is None:
            return self.rng.random((n, self.dim))
        prop = self.best_x + self.step * self.rng.standard_normal((n, self.dim))
        return np.clip(prop, 0.0, 1.0)

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:  # best tracked in base
        pass


class SequenceHillClimbing(SequenceOptimizer):
    """First-improvement hill climbing with point mutations of the best."""

    def __init__(self, length: int, alphabet: int, seed: SeedLike = None) -> None:
        super().__init__(length, alphabet, seed)

    def ask(self, n: int) -> np.ndarray:
        """Propose ``n`` perturbations of the incumbent best."""
        if self.best_x is None:
            return self.random_sequences(n)
        return np.asarray(
            [seq_point_mutation(self.best_x, self.alphabet, self.rng) for _ in range(n)],
            dtype=int,
        )

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:
        pass
