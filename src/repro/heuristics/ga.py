"""Genetic algorithms: continuous (unit box) and sequence variants."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.heuristics.base import ContinuousOptimizer, SequenceOptimizer
from repro.heuristics.operators import (
    polynomial_mutation,
    sbx_crossover,
    seq_point_mutation,
    seq_two_point_crossover,
    tournament_select,
)
from repro.utils.rng import SeedLike

__all__ = ["ContinuousGA", "SequenceGA"]


class ContinuousGA(ContinuousOptimizer):
    """GA over the unit box: tournament + SBX + polynomial mutation.

    The population is updated with whatever samples ``tell`` provides,
    keeping the fittest ``pop_size`` individuals (steady-state survival, the
    behaviour AIBO relies on: the population reflects the AF's choices, so
    an exploratory AF yields a diverse population — §4.5.8).
    """

    def __init__(
        self,
        dim: int,
        pop_size: int = 50,
        seed: SeedLike = None,
        eta_crossover: float = 15.0,
        eta_mutation: float = 20.0,
    ) -> None:
        super().__init__(dim, seed)
        self.pop_size = pop_size
        self.eta_crossover = eta_crossover
        self.eta_mutation = eta_mutation
        self.pop_x = np.empty((0, dim))
        self.pop_y = np.empty((0,))

    def seed_population(self, X: np.ndarray, y: np.ndarray) -> None:
        """Insert initial samples into the population."""
        self.tell(X, y)

    def ask(self, n: int) -> np.ndarray:
        """Breed ``n`` children via tournament + crossover + mutation."""
        if len(self.pop_x) < 2:
            return self.rng.random((n, self.dim))
        out: List[np.ndarray] = []
        while len(out) < n:
            idx = tournament_select(self.pop_y, 2, self.rng)
            c1, c2 = sbx_crossover(
                self.pop_x[idx[0]], self.pop_x[idx[1]], self.rng, eta=self.eta_crossover
            )
            out.append(polynomial_mutation(c1, self.rng, eta=self.eta_mutation))
            if len(out) < n:
                out.append(polynomial_mutation(c2, self.rng, eta=self.eta_mutation))
        return np.asarray(out)

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:
        self.pop_x = np.vstack([self.pop_x, X])
        self.pop_y = np.concatenate([self.pop_y, y])
        if len(self.pop_x) > self.pop_size:
            order = np.argsort(self.pop_y, kind="stable")[: self.pop_size]
            self.pop_x = self.pop_x[order]
            self.pop_y = self.pop_y[order]

    def population_diversity(self) -> float:
        """Mean pairwise distance of the population (Fig 4.15's metric)."""
        if len(self.pop_x) < 2:
            return 0.0
        diffs = self.pop_x[:, None, :] - self.pop_x[None, :, :]
        dists = np.sqrt((diffs**2).sum(-1))
        m = len(self.pop_x)
        return float(dists.sum() / (m * (m - 1)))


class SequenceGA(SequenceOptimizer):
    """GA over pass sequences: tournament + two-point crossover + reset
    mutation.  Used both as a phase-ordering baseline and as a CITROEN
    candidate-generation strategy."""

    def __init__(
        self,
        length: int,
        alphabet: int,
        pop_size: int = 20,
        seed: SeedLike = None,
        mutation_prob: Optional[float] = None,
        gene_weights=None,
    ) -> None:
        super().__init__(length, alphabet, seed, gene_weights=gene_weights)
        self.pop_size = pop_size
        self.mutation_prob = mutation_prob
        self.pop_x = np.empty((0, length), dtype=int)
        self.pop_y = np.empty((0,))

    def ask(self, n: int) -> np.ndarray:
        """Breed ``n`` children via tournament + crossover + mutation."""
        if len(self.pop_x) < 2:
            return self.random_sequences(n)
        out: List[np.ndarray] = []
        while len(out) < n:
            idx = tournament_select(self.pop_y, 2, self.rng)
            c1, c2 = seq_two_point_crossover(self.pop_x[idx[0]], self.pop_x[idx[1]], self.rng)
            out.append(seq_point_mutation(c1, self.alphabet, self.rng, self.mutation_prob, weights=self.gene_weights))
            if len(out) < n:
                out.append(seq_point_mutation(c2, self.alphabet, self.rng, self.mutation_prob, weights=self.gene_weights))
        return np.asarray(out, dtype=int)

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:
        self.pop_x = np.vstack([self.pop_x, X]) if len(self.pop_x) else X.copy()
        self.pop_y = np.concatenate([self.pop_y, y])
        if len(self.pop_x) > self.pop_size:
            order = np.argsort(self.pop_y, kind="stable")[: self.pop_size]
            self.pop_x = self.pop_x[order]
            self.pop_y = self.pop_y[order]

    def population_diversity(self) -> float:
        """Mean pairwise Hamming distance of the population."""
        if len(self.pop_x) < 2:
            return 0.0
        neq = (self.pop_x[:, None, :] != self.pop_x[None, :, :]).sum(-1)
        m = len(self.pop_x)
        return float(neq.sum() / (m * (m - 1)))
