"""Discrete 1+lambda Evolution Strategy (DES) over pass sequences (§2.2.3).

The parent is the best sequence seen so far; offspring are point mutations
of it.  CITROEN uses DES as its primary candidate-sequence generator
(§5.3.5): mutants of the incumbent are exactly the "nearby sequences whose
statistics the cost model can judge" that make the statistics feature
space informative.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.heuristics.base import SequenceOptimizer
from repro.heuristics.operators import seq_point_mutation
from repro.utils.rng import SeedLike

__all__ = ["DiscreteES"]


class DiscreteES(SequenceOptimizer):
    """1+lambda ES: mutate the incumbent; replace it on improvement."""

    def __init__(
        self,
        length: int,
        alphabet: int,
        seed: SeedLike = None,
        mutation_prob: Optional[float] = None,
        insert_swap_prob: float = 0.3,
        gene_weights=None,
    ) -> None:
        super().__init__(length, alphabet, seed, gene_weights=gene_weights)
        self.mutation_prob = mutation_prob
        self.insert_swap_prob = insert_swap_prob
        self.parent: Optional[np.ndarray] = None

    def seed_parent(self, x: np.ndarray) -> None:
        """Set the incumbent the 1+lambda mutants derive from."""
        self.parent = np.asarray(x, dtype=int).copy()

    def _mutant(self) -> np.ndarray:
        assert self.parent is not None
        y = seq_point_mutation(self.parent, self.alphabet, self.rng, self.mutation_prob, weights=self.gene_weights)
        # order matters for phase ordering: occasionally swap two positions
        # or rotate a small window instead of resetting genes
        if self.rng.random() < self.insert_swap_prob:
            i, j = self.rng.integers(0, self.length, size=2)
            y[i], y[j] = y[j], y[i]
        return y

    def ask(self, n: int) -> np.ndarray:
        """Generate ``n`` mutants of the parent (random before seeding)."""
        if self.parent is None:
            return self.random_sequences(n)
        return np.asarray([self._mutant() for _ in range(n)], dtype=int)

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:
        # 1+lambda selection: the all-time best becomes/stays the parent
        if self.best_x is not None:
            self.parent = self.best_x.copy()
