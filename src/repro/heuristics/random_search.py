"""Uniform random search (continuous and sequence variants)."""

from __future__ import annotations

import numpy as np

from repro.heuristics.base import ContinuousOptimizer, SequenceOptimizer
from repro.utils.rng import SeedLike

__all__ = ["RandomSearch", "RandomSequenceSearch"]


class RandomSearch(ContinuousOptimizer):
    """Uniform sampling over the unit box; ``tell`` only tracks the best."""

    def ask(self, n: int) -> np.ndarray:
        """Draw ``n`` uniform random candidates."""
        return self.rng.random((n, self.dim))

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:  # stateless
        pass


class RandomSequenceSearch(SequenceOptimizer):
    """Uniform random pass sequences — the paper's random-search baseline."""

    def ask(self, n: int) -> np.ndarray:
        """Draw ``n`` uniform random candidates."""
        return self.random_sequences(n)

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:  # stateless
        pass
