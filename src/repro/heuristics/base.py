"""Ask/tell optimiser interfaces."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator

__all__ = ["ContinuousOptimizer", "SequenceOptimizer"]


class ContinuousOptimizer:
    """Minimiser over the unit box ``[0, 1]^dim``.

    ``ask(n)`` proposes candidate points; ``tell(X, y)`` feeds back evaluated
    samples (which need not be the points asked for — AIBO tells the
    AF-chosen sample to *every* strategy, Alg. 1 line 16).
    """

    def __init__(self, dim: int, seed: SeedLike = None) -> None:
        self.dim = dim
        self.rng = as_generator(seed)
        self.best_x: Optional[np.ndarray] = None
        self.best_y: float = float("inf")

    def ask(self, n: int) -> np.ndarray:
        """Propose ``n`` candidate points to evaluate."""
        raise NotImplementedError

    def tell(self, X: np.ndarray, y: np.ndarray) -> None:
        """Feed back evaluated samples; updates the incumbent and state."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.atleast_1d(np.asarray(y, dtype=float))
        i = int(np.argmin(y))
        if y[i] < self.best_y:
            self.best_y = float(y[i])
            self.best_x = X[i].copy()
        self._update(X, y)

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError


class SequenceOptimizer:
    """Minimiser over fixed-length sequences from an integer alphabet.

    Candidates are ``(n, length)`` integer arrays with entries in
    ``[0, alphabet)``.  ``gene_weights``, when given, biases random gene
    draws (used by the cross-program pass-correlation prior, §6.3.2).
    """

    def __init__(
        self,
        length: int,
        alphabet: int,
        seed: SeedLike = None,
        gene_weights: Optional[np.ndarray] = None,
    ) -> None:
        self.length = length
        self.alphabet = alphabet
        self.rng = as_generator(seed)
        self.gene_weights = (
            np.asarray(gene_weights, dtype=float) / np.sum(gene_weights)
            if gene_weights is not None
            else None
        )
        self.best_x: Optional[np.ndarray] = None
        self.best_y: float = float("inf")

    def random_sequences(self, n: int) -> np.ndarray:
        """Draw ``n`` random sequences (gene-weighted when configured)."""
        if self.gene_weights is None:
            return self.rng.integers(0, self.alphabet, size=(n, self.length))
        return self.rng.choice(
            self.alphabet, size=(n, self.length), p=self.gene_weights
        )

    def ask(self, n: int) -> np.ndarray:
        """Propose ``n`` candidate points to evaluate."""
        raise NotImplementedError

    def tell(self, X: np.ndarray, y: np.ndarray) -> None:
        """Feed back evaluated samples; updates the incumbent and state."""
        X = np.atleast_2d(np.asarray(X, dtype=int))
        y = np.atleast_1d(np.asarray(y, dtype=float))
        i = int(np.argmin(y))
        if y[i] < self.best_y:
            self.best_y = float(y[i])
            self.best_x = X[i].copy()
        self._update(X, y)

    def _update(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError
