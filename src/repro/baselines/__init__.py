"""Baseline phase-ordering tuners (§5.4.4's competing methods).

* random search — the floor every method must beat;
* GA — the classic search-based autotuner (Cooper et al.);
* ensemble — OpenTuner-style bandit over GA / hill climbing / simulated
  annealing / random;
* BOCA-like — BO with a random-forest surrogate on raw sequence features;
* "standard BO" — CITROEN's machinery with raw sequence features, random
  candidates and a vanilla UCB (configure via
  ``Citroen(feature_mode="seq", generators=("random",), use_coverage=False)``).
"""

from repro.baselines.base import BaseTuner
from repro.baselines.random_tuner import RandomSearchTuner
from repro.baselines.ga_tuner import GATuner
from repro.baselines.ensemble import EnsembleTuner
from repro.baselines.boca import BOCATuner

__all__ = [
    "BaseTuner",
    "BOCATuner",
    "EnsembleTuner",
    "GATuner",
    "RandomSearchTuner",
]
