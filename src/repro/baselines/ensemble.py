"""OpenTuner-style ensemble tuner (§3.1.1, Ansel et al.).

Runs several search techniques per module — GA, hill climbing, simulated
annealing, random — and allocates each measurement with a UCB1 bandit over
techniques: techniques that recently produced improvements get a larger
share of the budget, OpenTuner's defining mechanism.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.base import BaseTuner
from repro.core.task import AutotuningTask
from repro.heuristics.ga import SequenceGA
from repro.heuristics.hill_climbing import SequenceHillClimbing
from repro.heuristics.random_search import RandomSequenceSearch
from repro.heuristics.simulated_annealing import SequenceSimulatedAnnealing
from repro.utils.rng import SeedLike, spawn

__all__ = ["EnsembleTuner"]

_TECHNIQUES = ("ga", "hillclimb", "anneal", "random")


class EnsembleTuner(BaseTuner):
    """UCB1 bandit over heterogeneous techniques, round-robin over modules."""

    name = "ensemble"

    def __init__(self, task: AutotuningTask, seed: SeedLike = None) -> None:
        super().__init__(task, seed)
        self.techs: Dict[str, Dict[str, object]] = {}
        for m in task.hot_modules:
            children = spawn(self.rng, 4)
            self.techs[m] = {
                "ga": SequenceGA(task.seq_length, task.alphabet, seed=children[0]),
                "hillclimb": SequenceHillClimbing(task.seq_length, task.alphabet, seed=children[1]),
                "anneal": SequenceSimulatedAnnealing(task.seq_length, task.alphabet, seed=children[2]),
                "random": RandomSequenceSearch(task.seq_length, task.alphabet, seed=children[3]),
            }
        self.pulls: Dict[str, int] = {t: 0 for t in _TECHNIQUES}
        self.wins: Dict[str, float] = {t: 0.0 for t in _TECHNIQUES}
        self._pending: Dict[Tuple[str, Tuple], str] = {}
        self._incumbent = float("inf")

    def _pick_technique(self) -> str:
        total = sum(self.pulls.values()) + 1
        best_t, best_v = None, -np.inf
        for t in _TECHNIQUES:
            n = self.pulls[t]
            if n == 0:
                return t
            v = self.wins[t] / n + math.sqrt(2.0 * math.log(total) / n)
            if v > best_v:
                best_t, best_v = t, v
        return best_t

    def propose(self) -> Tuple[str, np.ndarray]:
        """Pick a technique by UCB1 and ask it for one sequence."""
        m = self.next_module()
        tech = self._pick_technique()
        seq = self.techs[m][tech].ask(1)[0]
        self._pending[(m, tuple(int(i) for i in seq))] = tech
        return m, seq

    def observe(self, module: str, seq: np.ndarray, runtime: float) -> None:
        tech = self._pending.pop((module, tuple(int(i) for i in seq)), "random")
        self.pulls[tech] += 1
        if runtime < self._incumbent:
            self.wins[tech] += 1.0
            self._incumbent = runtime
        for opt in self.techs[module].values():
            opt.tell(seq[None, :], np.asarray([runtime]))
