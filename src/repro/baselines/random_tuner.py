"""Random search over pass sequences — the floor baseline (§5.4.4)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.base import BaseTuner

__all__ = ["RandomSearchTuner"]


class RandomSearchTuner(BaseTuner):
    """Uniform random per-module sequences, round-robin across modules."""

    name = "random"

    def propose(self) -> Tuple[str, np.ndarray]:
        """A random sequence for the next module in rotation."""
        return self.next_module(), self.random_sequence()
