"""Shared scaffolding for the baseline tuners."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.result import Measurement, TuningResult
from repro.core.task import AutotuningTask
from repro.utils.rng import SeedLike, as_generator

__all__ = ["BaseTuner"]


class BaseTuner:
    """Holds the task, the incumbent configuration, and result recording.

    Subclasses implement :meth:`propose` returning ``(module, sequence)``;
    the base class compiles, measures (against the incumbent for the other
    modules), records, and calls :meth:`observe` with the outcome.
    """

    name = "base"

    def __init__(
        self, task: AutotuningTask, seed: SeedLike = None, seed_with_o3: bool = True
    ) -> None:
        self.task = task
        self.rng = as_generator(seed)
        self.seed_with_o3 = seed_with_o3
        self._best_seq: Dict[str, np.ndarray] = {}
        self._best_compiled: Dict[str, object] = {}
        self._best_runtime = float("inf")
        self._rr = 0
        self._o3_seeded: List[str] = []

    def _o3_sequence(self) -> np.ndarray:
        from repro.compiler.pipelines import pipeline

        index = {p: i for i, p in enumerate(self.task.passes)}
        ids = [index[p] for p in pipeline("-O3") if p in index]
        L = self.task.seq_length
        if not ids:
            # pass alphabet disjoint from the -O3 pipeline: nothing to encode
            import warnings

            warnings.warn(
                "no -O3 pipeline pass is in the search alphabet; "
                "seeding with a random sequence instead",
                stacklevel=2,
            )
            return self.random_sequence()
        if len(ids) >= L:
            return np.asarray(ids[:L], dtype=int)
        reps = ids * (L // len(ids) + 1)
        return np.asarray(reps[:L], dtype=int)

    # -- subclass interface ----------------------------------------------------
    def propose(self) -> Tuple[str, np.ndarray]:
        """Return the next ``(module, sequence)`` to measure."""
        raise NotImplementedError

    def observe(self, module: str, seq: np.ndarray, runtime: float) -> None:
        """Feedback hook; default does nothing."""

    # -- helpers ------------------------------------------------------------------
    def next_module(self) -> str:
        """Round-robin over the hot modules."""
        mods = self.task.hot_modules
        m = mods[self._rr % len(mods)]
        self._rr += 1
        return m

    def random_sequence(self) -> np.ndarray:
        """A uniformly random pass sequence."""
        return self.rng.integers(0, self.task.alphabet, size=self.task.seq_length)

    def _record(self, result, module, seq, runtime, ok, status) -> None:
        task = self.task
        full_config = {m: tuple(task.decode(s)) for m, s in self._best_seq.items()}
        full_config[module] = tuple(task.decode(seq))
        idx = len(result.measurements)
        result.measurements.append(
            Measurement(
                index=idx,
                module=module,
                sequence=tuple(task.decode(seq)),
                runtime=runtime if ok else float("inf"),
                speedup_vs_o3=task.o3_runtime / runtime if ok else 0.0,
                correct=ok,
                sequences=full_config,
                status=status,
            )
        )
        task.wal_slot(
            {
                "index": idx,
                "module": module,
                "winner": self.name,
                "sequences": {n: list(s) for n, s in full_config.items()},
                "runtime": runtime if ok else float("inf"),
                "correct": ok,
                "status": status,
            }
        )

    # -- driver ---------------------------------------------------------------------
    def tune(self, budget: int) -> TuningResult:
        """Run the search for ``budget`` measurements; returns the trace.

        Fault-tolerant: a candidate that fails to compile (crash, timeout,
        quarantined key), crashes during measurement, or miscompiles is
        recorded as an infeasible measurement with penalty fitness fed to
        :meth:`observe`; it never becomes the incumbent and the search
        continues to its full budget.
        """
        task = self.task
        tracer = task.tracer
        result = TuningResult(
            program=task.program.name,
            tuner=self.name,
            o3_runtime=task.o3_runtime,
            o0_runtime=task.o0_runtime,
        )
        while len(result.measurements) < budget and not task.stop_requested:
            # every tuner starts from the default configuration: one O3-seeded
            # measurement per hot module (standard autotuning practice)
            with tracer.span(
                "propose", tuner=self.name, iteration=len(result.measurements)
            ):
                if self.seed_with_o3 and len(self._o3_seeded) < len(task.hot_modules):
                    module = task.hot_modules[len(self._o3_seeded)]
                    self._o3_seeded.append(module)
                    seq = self._o3_sequence()
                else:
                    module, seq = self.propose()
            # through the task's CompileEngine: candidates a tuner re-visits
            # (O3 re-seeds, GA elitism, mutation collisions) are cache hits
            outcome = task.compile_batch([(module, seq)], outcomes=True)[0]
            if not outcome.ok:
                self._record(result, module, seq, float("inf"), False, outcome.status)
                self.observe(module, seq, task.penalty_runtime)
                continue
            compiled, _stats = outcome.value
            link = dict(self._best_compiled)
            link[module] = compiled
            cfg = dict(self._best_seq)
            cfg[module] = seq
            key = tuple(
                sorted((n, tuple(int(i) for i in s)) for n, s in cfg.items())
            )
            runtime, ok = task.measure(link, config_key=key)
            self._record(
                result, module, seq, runtime, ok,
                "ok" if ok else (task.last_failure or "incorrect"),
            )
            if ok:
                self.observe(module, seq, runtime)
                if runtime < self._best_runtime:
                    self._best_runtime = runtime
                    self._best_seq[module] = np.asarray(seq, dtype=int).copy()
                    self._best_compiled[module] = compiled
            else:
                # infeasible: penalty feedback, incumbent untouched
                self.observe(module, seq, task.penalty_runtime)
        if len(result.measurements) < budget:
            # stopped early (graceful SIGINT/SIGTERM): partial but valid
            result.extras["interrupted"] = True
        result.best_config = {m: tuple(task.decode(s)) for m, s in self._best_seq.items()}
        result.timing = dict(task.timing_breakdown())
        return result
