"""Genetic-algorithm phase-ordering tuner (Cooper-style, §3.1.1)."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.baselines.base import BaseTuner
from repro.core.task import AutotuningTask
from repro.heuristics.ga import SequenceGA
from repro.utils.rng import SeedLike, spawn

__all__ = ["GATuner"]


class GATuner(BaseTuner):
    """One SequenceGA per hot module, served round-robin."""

    name = "ga"

    def __init__(self, task: AutotuningTask, seed: SeedLike = None, pop_size: int = 20) -> None:
        super().__init__(task, seed)
        children = spawn(self.rng, len(task.hot_modules))
        self.gas: Dict[str, SequenceGA] = {
            m: SequenceGA(task.seq_length, task.alphabet, pop_size=pop_size, seed=r)
            for m, r in zip(task.hot_modules, children)
        }

    def propose(self) -> Tuple[str, np.ndarray]:
        """Ask the next module's GA for one child sequence."""
        m = self.next_module()
        return m, self.gas[m].ask(1)[0]

    def observe(self, module: str, seq: np.ndarray, runtime: float) -> None:
        self.gas[module].tell(seq[None, :], np.asarray([runtime]))
