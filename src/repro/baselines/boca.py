"""BOCA-like tuner: BO with a random-forest surrogate on raw sequence
features (Chen et al., §3.3).

BOCA tunes binary compiler flags with an RF surrogate and an EI-style
acquisition over a candidate neighbourhood of the incumbent; this adapts
the same design to phase ordering: per-position sequence features, a
bagged-tree model, and candidates drawn half from mutations of the best
sequence and half uniformly at random.

The candidate pool is scored on raw sequence features (no compilation),
so only the chosen candidate is built — via the task's
:class:`~repro.core.eval_engine.CompileEngine` (see ``BaseTuner.tune``),
whose LRU cache absorbs the frequent mutation collisions around the
incumbent that BOCA's half-mutation pool produces.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy import stats as _st

from repro.baselines.base import BaseTuner
from repro.bo.random_forest import RandomForestRegressor
from repro.core.task import AutotuningTask
from repro.features.seq_features import sequence_features
from repro.heuristics.operators import seq_point_mutation
from repro.utils.rng import SeedLike

__all__ = ["BOCATuner"]


class BOCATuner(BaseTuner):
    """RF-surrogate BO over per-module pass sequences (round-robin)."""

    name = "boca"

    def __init__(
        self,
        task: AutotuningTask,
        seed: SeedLike = None,
        n_init: int = 8,
        pool: int = 60,
        n_trees: int = 20,
    ) -> None:
        super().__init__(task, seed)
        self.n_init = n_init
        self.pool = pool
        self.n_trees = n_trees
        self.data: Dict[str, Tuple[List[np.ndarray], List[float]]] = {
            m: ([], []) for m in task.hot_modules
        }

    def _features(self, seq: np.ndarray) -> np.ndarray:
        return sequence_features(seq, self.task.alphabet)

    def propose(self) -> Tuple[str, np.ndarray]:
        """EI over an RF surrogate on a mutation+random candidate pool."""
        m = self.next_module()
        X, y = self.data[m]
        if len(y) < max(3, self.n_init // len(self.task.hot_modules)):
            return m, self.random_sequence()
        rf = RandomForestRegressor(n_trees=self.n_trees, seed=self.rng)
        rf.fit(np.asarray(X), np.asarray(y))
        best_y = min(y)
        best_seq = np.asarray(self._best_seq.get(m, self.random_sequence()), dtype=int)
        cands = []
        for _ in range(self.pool // 2):
            cands.append(seq_point_mutation(best_seq, self.task.alphabet, self.rng, prob=0.15))
        for _ in range(self.pool - len(cands)):
            cands.append(self.random_sequence())
        F = np.asarray([self._features(s) for s in cands])
        mu, sigma = rf.predict(F)
        sigma = np.maximum(sigma, 1e-9)
        z = (best_y - mu) / sigma
        ei = sigma * (z * _st.norm.cdf(z) + _st.norm.pdf(z))
        return m, cands[int(np.argmax(ei))]

    def observe(self, module: str, seq: np.ndarray, runtime: float) -> None:
        X, y = self.data[module]
        X.append(self._features(np.asarray(seq, dtype=int)))
        y.append(float(runtime))
