"""Random program generator for property-based (differential) testing.

Generates small but structurally diverse programs — loops, branches, calls,
mixed integer widths, global arrays — whose outputs are data-dependent.
The hypothesis test suite runs random pass sequences over these programs
and checks output equivalence against ``-O0``, which is how pass bugs are
found mechanically.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import GlobalVar, I8, I16, I32, I64, PTR, Module, Type
from repro.utils.rng import SeedLike, as_generator
from repro.workloads.program import Program

__all__ = ["random_program"]

_INT_TYPES = [I16, I32, I64]
_BINOPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "ashr"]
_PREDS = ["eq", "ne", "slt", "sle", "sgt", "sge"]


class _Gen:
    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def choice(self, seq):
        return seq[int(self.rng.integers(0, len(seq)))]

    def int(self, lo: int, hi: int) -> int:
        return int(self.rng.integers(lo, hi))

    def chance(self, p: float) -> bool:
        return bool(self.rng.random() < p)


def _emit_expr(g: _Gen, b: FunctionBuilder, pool: List[str], ty: Type, depth: int = 0) -> str:
    """Emit a random expression over ``pool`` registers of type ``ty``."""
    if depth > 2 or g.chance(0.35):
        if pool and g.chance(0.8):
            return g.choice(pool)
        return b.add(g.choice(pool) if pool else c(g.int(-50, 50), ty), c(g.int(-9, 9), ty), ty)
    op = g.choice(_BINOPS)
    a = _emit_expr(g, b, pool, ty, depth + 1)
    d = _emit_expr(g, b, pool, ty, depth + 1)
    if op in ("shl", "ashr"):
        d = c(g.int(0, 5), ty)
    return b.binop(op, a, d, ty)


def _emit_body(g: _Gen, b: FunctionBuilder, arr: str, n: int, acc: str, ty: Type, depth: int) -> None:
    """Emit a random statement soup inside the current block."""
    n_stmts = g.int(2, 6)
    pool: List[str] = []
    for _ in range(n_stmts):
        kind = g.int(0, 10)
        if kind < 4:  # array read feeding the pool
            idx = c(g.int(0, n), I32)
            v = b.load(ty, b.gep(arr, idx, ty))
            pool.append(v)
        elif kind < 6 and pool:  # accumulate
            cur = b.load(ty, acc)
            b.store(b.binop(g.choice(["add", "xor", "sub"]), cur, g.choice(pool), ty), acc)
        elif kind < 8:  # expression chain
            pool.append(_emit_expr(g, b, pool, ty))
        elif kind < 9 and depth < 2:  # branch
            cond_v = g.choice(pool) if pool else c(g.int(0, 2), ty)
            cond = b.icmp(g.choice(_PREDS), cond_v, c(g.int(-5, 5), ty))
            captured_pool = list(pool)

            def then_b(bt: FunctionBuilder) -> None:
                cur = bt.load(ty, acc)
                val = captured_pool[0] if captured_pool else c(1, ty)
                bt.store(bt.add(cur, val, ty), acc)

            def else_b(bt: FunctionBuilder) -> None:
                cur = bt.load(ty, acc)
                bt.store(bt.xor(cur, c(g.int(0, 99), ty), ty), acc)

            b.if_then(cond, then_b, else_b if g.chance(0.5) else None, tag=f"rb{g.int(0, 9999)}")
        else:  # array write
            idx = c(g.int(0, n), I32)
            val = g.choice(pool) if pool else c(g.int(-20, 20), ty)
            b.store(val, b.gep(arr, idx, ty))
        # occasionally drop pool values that went out of dominance scope
        if g.chance(0.3):
            pool = pool[-1:]


def random_program(seed: SeedLike = None, n_modules: int = 1) -> Program:
    """Generate a random, terminating, output-producing program."""
    rng = as_generator(seed)
    g = _Gen(rng)
    ty = g.choice(_INT_TYPES)
    n = g.int(8, 24)
    modules: List[Module] = []

    lib_fns: List[str] = []
    for mi in range(max(0, n_modules - 1)):
        lib = Module(f"rlib{mi}")
        fname = f"kern{mi}"
        b = FunctionBuilder(lib, fname, [("a", PTR), ("m", I32)], ty)
        acc = b.alloca(ty, hint="acc")
        b.store(c(g.int(-5, 5), ty), acc)

        def loop_body(bb: FunctionBuilder, i: str, _b=b, _acc=acc) -> None:
            x = bb.load(ty, bb.gep("a", i, ty))
            cur = bb.load(ty, _acc)
            bb.store(bb.binop(g.choice(["add", "xor"]), cur, x, ty), _acc)

        b.counted_loop(c(0, I32), c(g.int(2, n), I32), loop_body, tag="k")
        _emit_body(g, b, "a", n, acc, ty, depth=1)
        b.ret(b.load(ty, acc))
        if g.chance(0.3):
            b.fn.attrs.add("internal")
            # internal functions need an exported caller; wrap it
            wb = FunctionBuilder(lib, f"call_{fname}", [("a", PTR), ("m", I32)], ty)
            r = wb.call(fname, ["a", "m"], ty)
            wb.ret(r)
            lib_fns.append(f"call_{fname}")
        else:
            lib_fns.append(fname)
        modules.append(lib)

    main = Module("rmain")
    init = [g.int(-100, 100) for _ in range(n)]
    main.add_global(GlobalVar("data", ty, init))
    b = FunctionBuilder(main, "main", [], ty)
    arr = b.gaddr("data")
    acc = b.alloca(ty, hint="acc")
    b.store(c(0, ty), acc)

    def main_loop(bb: FunctionBuilder, i: str) -> None:
        _emit_body(g, bb, arr, n, acc, ty, depth=0)
        for fname in lib_fns:
            if g.chance(0.6):
                v = bb.call(fname, [arr, c(n, I32)], ty)
                cur = bb.load(ty, acc)
                bb.store(bb.add(cur, v, ty), acc)

    b.counted_loop(c(0, I32), c(g.int(2, 9), I32), main_loop, tag="main")
    _emit_body(g, b, arr, n, acc, ty, depth=0)
    out = b.load(ty, acc)
    b.output(out)
    chk = b.load(ty, b.gep(arr, c(g.int(0, n), I32), ty))
    b.output(chk)
    b.ret(out)
    modules.append(main)
    return Program(f"random_{rng.integers(0, 10**9)}", modules, suite="random")
