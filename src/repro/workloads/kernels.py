"""Reusable IR kernel builders.

Each helper emits front-end style (``-O0``) code — locals in allocas, loops
with memory-resident induction variables — so the optimisation passes have
realistic work to do.  The kernels are chosen to exercise distinct pass
interactions:

================  ============================================================
kernel            passes it rewards / punishes
================  ============================================================
dot product       mem2reg -> slp-vectorizer; destroyed by instcombine widening
saxpy loop        loop-vectorize (after mem2reg + indvars)
sum loop          loop-vectorize with reduction; licm for bound loads
init loop         loop-idiom (memset)
copy loop         loop-idiom (memcpy)
branchy abs       simplifycfg / sink / select-formation pressure
table mix         gvn / early-cse of repeated loads, not vectorisable
shift mix         sequential dependence; instcombine chains, reassociate
divmod loop       div-rem-pairs; expensive scalar ops
helper calls      inline + function-attrs -> gvn across calls
================  ============================================================
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import (
    F64,
    I8,
    I16,
    I32,
    I64,
    Const,
    GlobalVar,
    Module,
    Type,
)

__all__ = [
    "lcg_values",
    "add_data_global",
    "emit_dot_product_unrolled",
    "emit_saxpy_loop",
    "emit_sum_loop",
    "emit_init_loop",
    "emit_copy_loop",
    "emit_branchy_abs_loop",
    "emit_table_mix_loop",
    "emit_shift_mix_loop",
    "emit_divmod_loop",
    "emit_stencil_loop",
]


def lcg_values(seed: int, n: int, lo: int = -99, hi: int = 100) -> List[int]:
    """Deterministic pseudo-random data for global initialisers."""
    out = []
    state = (seed * 2654435761 + 12345) & 0xFFFFFFFF
    span = hi - lo
    for _ in range(n):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(lo + (state >> 16) % span)
    return out


def add_data_global(
    module: Module, name: str, elem_ty: Type, n: int, seed: int, lo: int = -99, hi: int = 100
) -> GlobalVar:
    """Add a module global initialised with deterministic pseudo-random data."""
    vals = lcg_values(seed, n, lo, hi)
    if elem_ty.is_float:
        vals = [float(v) / 7.0 for v in vals]
    return module.add_global(GlobalVar(name, elem_ty, vals))


def emit_dot_product_unrolled(
    b: FunctionBuilder,
    w_ptr: str,
    d_ptr: str,
    lanes: int = 8,
    elem_ty: Type = I16,
    mul_ty: Type = I32,
    acc_ty: Type = I64,
) -> str:
    """The Fig 5.1 pattern: manually unrolled widening dot product.

    ``result += (acc_ty)((mul_ty)w[i] * (mul_ty)d[i])`` for i in 0..lanes,
    accumulated through a stack slot.  Returns the register holding the
    final accumulator value.
    """
    acc = b.alloca(acc_ty, hint="dot.acc")
    b.store(Const(0, acc_ty), acc)
    for i in range(lanes):
        wv = b.load(elem_ty, b.gep(w_ptr, c(i, I64), elem_ty))
        dv = b.load(elem_ty, b.gep(d_ptr, c(i, I64), elem_ty))
        ws = b.sext(wv, mul_ty)
        ds = b.sext(dv, mul_ty)
        m = b.mul(ws, ds, mul_ty)
        mw = b.sext(m, acc_ty) if acc_ty.bits > mul_ty.bits else m
        cur = b.load(acc_ty, acc)
        b.store(b.add(cur, mw, acc_ty), acc)
    return b.load(acc_ty, acc)


def emit_saxpy_loop(
    b: FunctionBuilder,
    dst: str,
    src_a: str,
    src_b: str,
    n: int,
    k: int = 3,
    elem_ty: Type = I32,
    tag: str = "saxpy",
) -> None:
    """``dst[i] = a[i]*k + b[i]`` — the canonical loop-vectorise target."""

    def body(bb: FunctionBuilder, i: str) -> None:
        av = bb.load(elem_ty, bb.gep(src_a, i, elem_ty))
        bv = bb.load(elem_ty, bb.gep(src_b, i, elem_ty))
        prod = bb.mul(av, c(k, elem_ty), elem_ty)
        bb.store(bb.add(prod, bv, elem_ty), bb.gep(dst, i, elem_ty))

    b.counted_loop(c(0, I32), c(n, I32), body, tag=tag)


def emit_sum_loop(
    b: FunctionBuilder,
    src: str,
    n: int,
    elem_ty: Type = I32,
    tag: str = "sum",
) -> str:
    """``acc += src[i]`` reduction; returns the final accumulator register."""
    acc = b.alloca(elem_ty, hint=f"{tag}.acc")
    b.store(Const(0, elem_ty), acc)

    def body(bb: FunctionBuilder, i: str) -> None:
        v = bb.load(elem_ty, bb.gep(src, i, elem_ty))
        cur = bb.load(elem_ty, acc)
        bb.store(bb.add(cur, v, elem_ty), acc)

    b.counted_loop(c(0, I32), c(n, I32), body, tag=tag)
    return b.load(elem_ty, acc)


def emit_init_loop(
    b: FunctionBuilder, dst: str, n: int, value: int = 0, elem_ty: Type = I32, tag: str = "init"
) -> None:
    """``dst[i] = value`` — loop-idiom's memset target."""

    def body(bb: FunctionBuilder, i: str) -> None:
        bb.store(c(value, elem_ty), bb.gep(dst, i, elem_ty))

    b.counted_loop(c(0, I32), c(n, I32), body, tag=tag)


def emit_copy_loop(
    b: FunctionBuilder, dst: str, src: str, n: int, elem_ty: Type = I32, tag: str = "copy"
) -> None:
    """``dst[i] = src[i]`` — loop-idiom's memcpy target."""

    def body(bb: FunctionBuilder, i: str) -> None:
        bb.store(bb.load(elem_ty, bb.gep(src, i, elem_ty)), bb.gep(dst, i, elem_ty))

    b.counted_loop(c(0, I32), c(n, I32), body, tag=tag)


def emit_branchy_abs_loop(
    b: FunctionBuilder, src: str, n: int, elem_ty: Type = I32, tag: str = "babs"
) -> str:
    """``acc += x<0 ? -x : x`` with a real branch, plus a threshold branch."""
    acc = b.alloca(elem_ty, hint=f"{tag}.acc")
    b.store(Const(0, elem_ty), acc)

    def body(bb: FunctionBuilder, i: str) -> None:
        v = bb.load(elem_ty, bb.gep(src, i, elem_ty))
        neg = bb.icmp("slt", v, c(0, elem_ty))
        slot = bb.alloca(elem_ty, hint=f"{tag}.t")

        def then_b(bt: FunctionBuilder) -> None:
            bt.store(bt.sub(c(0, elem_ty), v, elem_ty), slot)

        def else_b(bt: FunctionBuilder) -> None:
            bt.store(v, slot)

        bb.if_then(neg, then_b, else_b, tag=f"{tag}.if")
        av = bb.load(elem_ty, slot)
        big = bb.icmp("sgt", av, c(64, elem_ty))

        def clamp_b(bt: FunctionBuilder) -> None:
            cur2 = bt.load(elem_ty, acc)
            bt.store(bt.add(cur2, c(64, elem_ty), elem_ty), acc)

        def keep_b(bt: FunctionBuilder) -> None:
            cur2 = bt.load(elem_ty, acc)
            bt.store(bt.add(cur2, av, elem_ty), acc)

        bb.if_then(big, clamp_b, keep_b, tag=f"{tag}.cl")

    b.counted_loop(c(0, I32), c(n, I32), body, tag=tag)
    return b.load(elem_ty, acc)


def emit_table_mix_loop(
    b: FunctionBuilder, src: str, table: str, n: int, tag: str = "tmix"
) -> str:
    """S-box style mixing: ``acc ^= T[x & 15] + T[(x >> 4) & 15]``."""
    acc = b.alloca(I32, hint=f"{tag}.acc")
    b.store(Const(0x5A5A, I32), acc)

    def body(bb: FunctionBuilder, i: str) -> None:
        x = bb.load(I32, bb.gep(src, i, I32))
        lo = bb.and_(x, c(15, I32), I32)
        hi = bb.and_(bb.ashr(x, c(4, I32), I32), c(15, I32), I32)
        t0 = bb.load(I32, bb.gep(table, lo, I32))
        t1 = bb.load(I32, bb.gep(table, hi, I32))
        # the repeated `T[x & 15]` read rewards load CSE
        t0b = bb.load(I32, bb.gep(table, lo, I32))
        cur = bb.load(I32, acc)
        mixed = bb.xor(cur, bb.add(t0, bb.add(t1, t0b, I32), I32), I32)
        bb.store(mixed, acc)

    b.counted_loop(c(0, I32), c(n, I32), body, tag=tag)
    return b.load(I32, acc)


def emit_shift_mix_loop(
    b: FunctionBuilder, src: str, n: int, tag: str = "smix"
) -> str:
    """SHA-flavoured sequential mixing (rotate/xor/add chains)."""
    acc = b.alloca(I32, hint=f"{tag}.h")
    b.store(Const(0x6745, I32), acc)

    def body(bb: FunctionBuilder, i: str) -> None:
        h = bb.load(I32, acc)
        x = bb.load(I32, bb.gep(src, i, I32))
        r1 = bb.shl(h, c(5, I32), I32)
        r2 = bb.ashr(h, c(27, I32), I32)
        rot = bb.or_(r1, r2, I32)
        t = bb.add(rot, x, I32)
        t = bb.xor(t, bb.and_(h, c(0x7FFF, I32), I32), I32)
        t = bb.add(t, c(0x7999, I32), I32)
        # redundant recomputation for GVN to clean
        r1b = bb.shl(h, c(5, I32), I32)
        t = bb.add(t, bb.xor(r1b, r1, I32), I32)
        bb.store(t, acc)

    b.counted_loop(c(0, I32), c(n, I32), body, tag=tag)
    return b.load(I32, acc)


def emit_divmod_loop(
    b: FunctionBuilder, src: str, n: int, divisor: int = 7, tag: str = "dvm"
) -> str:
    """``acc += x/d + x%d`` — div-rem-pairs and strength reduction target."""
    acc = b.alloca(I32, hint=f"{tag}.acc")
    b.store(Const(0, I32), acc)

    def body(bb: FunctionBuilder, i: str) -> None:
        x = bb.load(I32, bb.gep(src, i, I32))
        q = bb.sdiv(x, c(divisor, I32), I32)
        r = bb.srem(x, c(divisor, I32), I32)
        cur = bb.load(I32, acc)
        bb.store(bb.add(cur, bb.add(q, r, I32), I32), acc)

    b.counted_loop(c(0, I32), c(n, I32), body, tag=tag)
    return b.load(I32, acc)


def emit_stencil_loop(
    b: FunctionBuilder,
    dst: str,
    src: str,
    n: int,
    elem_ty: Type = I32,
    tag: str = "sten",
) -> None:
    """3-point stencil ``dst[i] = src[i-1] + 2*src[i] + src[i+1]`` over
    1..n-1; neighbour indexing defeats the (strict-legality) loop
    vectoriser, leaving unroll + scalar optimisations to fight over it."""

    def body(bb: FunctionBuilder, i: str) -> None:
        im1 = bb.sub(i, c(1, I32), I32)
        ip1 = bb.add(i, c(1, I32), I32)
        a = bb.load(elem_ty, bb.gep(src, im1, elem_ty))
        m = bb.load(elem_ty, bb.gep(src, i, elem_ty))
        z = bb.load(elem_ty, bb.gep(src, ip1, elem_ty))
        two_m = bb.mul(m, c(2, elem_ty), elem_ty)
        s = bb.add(a, bb.add(two_m, z, elem_ty), elem_ty)
        bb.store(s, bb.gep(dst, i, elem_ty))

    b.counted_loop(c(1, I32), c(n - 1, I32), body, tag=tag)
