"""The :class:`Program` abstraction: a named set of linked source modules.

A program owns its *unoptimised* (front-end style) modules; tuners compile
clones of individual modules with candidate pass sequences and link them
against the remaining originals.  The reference output (computed once from
the unoptimised program) anchors differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.ir import Module
from repro.compiler.opt_tool import CompileResult, run_opt
from repro.compiler.pass_manager import TargetInfo
from repro.machine.interp import ExecutionResult, run_program

__all__ = ["Program"]


@dataclass
class Program:
    """A multi-module benchmark program."""

    name: str
    modules: List[Module]
    suite: str = "misc"
    entry: str = "main"
    #: interpreter fuel needed for one execution (safety margin included)
    fuel: int = 5_000_000
    _ref: Optional[ExecutionResult] = field(default=None, repr=False)

    def module_names(self) -> List[str]:
        """Names of the program's modules, in link order."""
        return [m.name for m in self.modules]

    def get_module(self, name: str) -> Module:
        """Look up a source module by name."""
        for m in self.modules:
            if m.name == name:
                return m
        raise KeyError(f"no module {name!r} in program {self.name!r}")

    def reference_output(self) -> ExecutionResult:
        """Execution result of the unoptimised program (cached)."""
        if self._ref is None:
            self._ref = run_program(self.modules, self.entry, fuel=self.fuel)
        return self._ref

    def compile(
        self,
        sequences: Dict[str, Sequence[str]],
        target: Optional[TargetInfo] = None,
    ) -> Tuple[List[Module], Dict[str, CompileResult]]:
        """Compile each module with its per-module sequence.

        ``sequences`` maps module name -> pass sequence; modules without an
        entry are compiled as-is (``-O0``).  Returns the linked module list
        plus per-module compile results (statistics).
        """
        linked: List[Module] = []
        results: Dict[str, CompileResult] = {}
        for mod in self.modules:
            seq = sequences.get(mod.name)
            if seq is None:
                linked.append(mod)
            else:
                cr = run_opt(mod, seq, target=target)
                results[mod.name] = cr
                linked.append(cr.module)
        return linked, results
