"""cBench-like benchmark programs (Table 5.4, cBench column).

Each factory builds a fresh :class:`Program` whose modules are front-end
style IR.  Names follow the cBench suite the paper evaluates on; the
programs reproduce the *shape* of each benchmark's hot code (the compute
kernels and their pass-interaction profile), not its full functionality.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import (
    F64,
    GlobalVar,
    I8,
    I16,
    I32,
    I64,
    PTR,
    Const,
    Module,
)
from repro.workloads.kernels import (
    add_data_global,
    emit_branchy_abs_loop,
    emit_copy_loop,
    emit_divmod_loop,
    emit_dot_product_unrolled,
    emit_init_loop,
    emit_saxpy_loop,
    emit_shift_mix_loop,
    emit_stencil_loop,
    emit_sum_loop,
    emit_table_mix_loop,
)
from repro.workloads.program import Program

__all__ = ["CBENCH", "cbench_program", "cbench_names"]


def _telecom_gsm() -> Program:
    """GSM long-term predictor: the paper's Fig 5.1 / Table 5.1 program.

    ``long_term`` contributes >50% of runtime via an unrolled widening dot
    product; ``lpc`` adds an autocorrelation loop; ``add`` drives them.
    """
    long_term = Module("long_term")
    b = FunctionBuilder(long_term, "ltp_cut", [("w", PTR), ("d", PTR)], I64)
    dot = emit_dot_product_unrolled(b, "w", "d", lanes=8, elem_ty=I16, mul_ty=I32, acc_ty=I64)
    b.ret(dot)

    lpc = Module("lpc")
    b = FunctionBuilder(lpc, "autocorr", [("s", PTR), ("n", I32)], I64)
    acc = b.alloca(I64, hint="ac")
    b.store(c(0, I64), acc)

    def lag_body(bb: FunctionBuilder, i: str) -> None:
        x = bb.load(I16, bb.gep("s", i, I16))
        xi = bb.sext(x, I64)
        cur = bb.load(I64, acc)
        bb.store(bb.add(cur, bb.mul(xi, xi, I64), I64), acc)

    b.counted_loop(c(0, I32), "n", lag_body, tag="lag")
    b.ret(b.load(I64, acc))

    main = Module("gsm_main")
    add_data_global(main, "wdata", I16, 64, seed=11, lo=-120, hi=120)
    add_data_global(main, "ddata", I16, 64, seed=12, lo=-120, hi=120)
    b = FunctionBuilder(main, "main", [], I64)
    total = b.alloca(I64, hint="total")
    b.store(c(0, I64), total)
    wbase = b.gaddr("wdata")
    dbase = b.gaddr("ddata")

    def frame_body(bb: FunctionBuilder, i: str) -> None:
        off = bb.and_(i, c(55, I32), I32)
        wp = bb.gep(wbase, off, I16)
        dp = bb.gep(dbase, off, I16)
        v = bb.call("ltp_cut", [wp, dp], I64)
        cur = bb.load(I64, total)
        bb.store(bb.add(cur, v, I64), total)

    b.counted_loop(c(0, I32), c(32, I32), frame_body, tag="frame")
    ac1 = b.call("autocorr", [wbase, c(64, I32)], I64)
    ac2 = b.call("autocorr", [dbase, c(64, I32)], I64)
    t = b.load(I64, total)
    out = b.add(t, b.add(ac1, ac2, I64), I64)
    b.output(out)
    b.ret(out)
    return Program("telecom_gsm", [long_term, lpc, main], suite="cbench")


def _automotive_susan_c() -> Program:
    """SUSAN corners: stencil over an image row plus branchy thresholding."""
    susan = Module("susan_c")
    b = FunctionBuilder(susan, "corners", [("img", PTR), ("out", PTR), ("n", I32)], I32)
    emit_stencil_loop(b, "out", "img", 64, tag="st")
    s = emit_branchy_abs_loop(b, "out", 62, tag="thr")
    b.ret(s)

    main = Module("susan_main")
    add_data_global(main, "image", I32, 64, seed=21, lo=-200, hi=200)
    main.add_global(GlobalVar(
        "scratch", I32, [0] * 64))
    b = FunctionBuilder(main, "main", [], I32)
    img = b.gaddr("image")
    scratch = b.gaddr("scratch")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def row(bb: FunctionBuilder, i: str) -> None:
        v = bb.call("corners", [img, scratch, c(64, I32)], I32)
        cur = bb.load(I32, total)
        bb.store(bb.add(cur, bb.xor(v, i, I32), I32), total)

    b.counted_loop(c(0, I32), c(6, I32), row, tag="rows")
    out = b.load(I32, total)
    b.output(out)
    b.ret(out)
    return Program("automotive_susan_c", [susan, main], suite="cbench")


def _security_sha() -> Program:
    """SHA transform: sequentially dependent shift/xor mixing."""
    sha = Module("sha_transform")
    b = FunctionBuilder(sha, "transform", [("w", PTR), ("n", I32)], I32)
    h = emit_shift_mix_loop(b, "w", 64, tag="mix")
    b.ret(h)

    main = Module("sha_main")
    add_data_global(main, "words", I32, 64, seed=31, lo=0, hi=65536)
    b = FunctionBuilder(main, "main", [], I32)
    w = b.gaddr("words")
    acc = b.alloca(I32, hint="digest")
    b.store(c(0, I32), acc)

    def blk(bb: FunctionBuilder, i: str) -> None:
        hv = bb.call("transform", [w, c(64, I32)], I32)
        cur = bb.load(I32, acc)
        bb.store(bb.xor(cur, bb.add(hv, i, I32), I32), acc)

    b.counted_loop(c(0, I32), c(5, I32), blk, tag="blocks")
    out = b.load(I32, acc)
    b.output(out)
    b.ret(out)
    return Program("security_sha", [sha, main], suite="cbench")


def _security_rijndael() -> Program:
    """AES-ish: table lookups and xor mixing; rewards CSE, defeats vectorisers."""
    rij = Module("rijndael")
    b = FunctionBuilder(rij, "encrypt_mix", [("src", PTR), ("table", PTR), ("n", I32)], I32)
    v = emit_table_mix_loop(b, "src", "table", 96, tag="sbox")
    b.ret(v)

    main = Module("rijndael_main")
    add_data_global(main, "plaintext", I32, 96, seed=41, lo=0, hi=4096)
    add_data_global(main, "sbox", I32, 16, seed=42, lo=1, hi=255)
    b = FunctionBuilder(main, "main", [], I32)
    src = b.gaddr("plaintext")
    tbl = b.gaddr("sbox")
    r1 = b.call("encrypt_mix", [src, tbl, c(96, I32)], I32)
    r2 = b.call("encrypt_mix", [src, tbl, c(96, I32)], I32)
    out = b.add(r1, b.mul(r2, c(3, I32), I32), I32)
    b.output(out)
    b.ret(out)
    return Program("security_rijndael_d", [rij, main], suite="cbench")


def _telecom_adpcm() -> Program:
    """ADPCM codec: divisions, remainders and branches in the hot loop."""
    adpcm = Module("adpcm_coder")
    b = FunctionBuilder(adpcm, "coder", [("pcm", PTR), ("n", I32)], I32)
    v1 = emit_divmod_loop(b, "pcm", 80, divisor=7, tag="step")
    v2 = emit_branchy_abs_loop(b, "pcm", 80, tag="delta")
    b.ret(b.add(v1, v2, I32))

    main = Module("adpcm_main")
    add_data_global(main, "pcm", I32, 80, seed=51, lo=-5000, hi=5000)
    b = FunctionBuilder(main, "main", [], I32)
    pcm = b.gaddr("pcm")
    r = b.call("coder", [pcm, c(80, I32)], I32)
    b.output(r)
    b.ret(r)
    return Program("telecom_adpcm_c", [adpcm, main], suite="cbench")


def _consumer_jpeg() -> Program:
    """JPEG forward DCT flavour: unrolled butterflies -> SLP store groups."""
    dct = Module("jdct")
    b = FunctionBuilder(dct, "fdct_row", [("blk", PTR), ("out", PTR)], I32)
    # unrolled butterfly: out[i] = blk[i] + blk[i] * 2 (store-group shape)
    for i in range(8):
        x = b.load(I32, b.gep("blk", c(i, I64), I32))
        y = b.load(I32, b.gep("blk", c(i, I64), I32))
        s = b.add(x, y, I32)
        b.store(s, b.gep("out", c(i, I64), I32))
    chk = emit_sum_loop(b, "out", 8, tag="chk")
    b.ret(chk)

    main = Module("jpeg_main")
    add_data_global(main, "block", I32, 64, seed=61, lo=-128, hi=128)
    main.add_global(GlobalVar(
        "coef", I32, [0] * 64))
    b = FunctionBuilder(main, "main", [], I32)
    blk = b.gaddr("block")
    out = b.gaddr("coef")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def rows(bb: FunctionBuilder, i: str) -> None:
        roff = bb.shl(bb.and_(i, c(7, I32), I32), c(3, I32), I32)
        bp = bb.gep(blk, roff, I32)
        op = bb.gep(out, roff, I32)
        v = bb.call("fdct_row", [bp, op], I32)
        cur = bb.load(I32, total)
        bb.store(bb.add(cur, v, I32), total)

    b.counted_loop(c(0, I32), c(24, I32), rows, tag="rows")
    t = b.load(I32, total)
    b.output(t)
    b.ret(t)
    return Program("consumer_jpeg_c", [dct, main], suite="cbench")


def _automotive_qsort() -> Program:
    """qsort flavour: recursion (tailcallelim/inline) over comparisons."""
    qs = Module("qsort1")
    # internal helper: clamp, inline target
    hb = FunctionBuilder(qs, "clamp", [("x", I32)], I32)
    hb.fn.attrs.add("internal")
    cnd = hb.icmp("sgt", "x", c(100, I32))
    r = hb.select(cnd, c(100, I32), "x", I32)
    hb.ret(r)

    b = FunctionBuilder(qs, "count_below", [("a", PTR), ("lo", I32), ("n", I32), ("acc", I32)], I32)
    # tail-recursive scan: count_below(a, lo+1, n, acc + (a[lo] < pivot))
    done = b.icmp("sge", "lo", "n")

    def base_case(bb: FunctionBuilder) -> None:
        bb.ret("acc")

    b.if_then(done, base_case, None, tag="base")
    x = b.load(I32, b.gep("a", "lo", I32))
    cx = b.call("clamp", [x], I32)
    is_low = b.icmp("slt", cx, c(0, I32))
    inc = b.select(is_low, c(1, I32), c(0, I32), I32)
    nacc = b.add("acc", inc, I32)
    nlo = b.add("lo", c(1, I32), I32)
    res = b.call("count_below", ["a", nlo, "n", nacc], I32)
    b.ret(res)

    main = Module("qsort_main")
    add_data_global(main, "keys", I32, 96, seed=71, lo=-150, hi=150)
    b = FunctionBuilder(main, "main", [], I32)
    keys = b.gaddr("keys")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def passes(bb: FunctionBuilder, i: str) -> None:
        v = bb.call("count_below", [keys, c(0, I32), c(96, I32), c(0, I32)], I32)
        cur = bb.load(I32, total)
        bb.store(bb.add(cur, bb.add(v, i, I32), I32), total)

    b.counted_loop(c(0, I32), c(4, I32), passes, tag="passes")
    t = b.load(I32, total)
    b.output(t)
    b.ret(t)
    return Program("automotive_qsort1", [qs, main], suite="cbench")


def _network_dijkstra() -> Program:
    """Dijkstra flavour: nested loops, comparisons and selects over a matrix."""
    dij = Module("dijkstra")
    b = FunctionBuilder(dij, "relax_all", [("w", PTR), ("dist", PTR), ("n", I32)], I32)

    def outer(bb: FunctionBuilder, i: str) -> None:
        base = bb.mul(i, "n", I32)

        def inner(bi: FunctionBuilder, j: str) -> None:
            idx = bi.add(base, j, I32)
            wij = bi.load(I32, bi.gep("w", idx, I32))
            di = bi.load(I32, bi.gep("dist", i, I32))
            dj = bi.load(I32, bi.gep("dist", j, I32))
            cand = bi.add(di, wij, I32)
            better = bi.icmp("slt", cand, dj)
            nd = bi.select(better, cand, dj, I32)
            bi.store(nd, bi.gep("dist", j, I32))

        bb.counted_loop(c(0, I32), "n", inner, tag="inner")

    b.counted_loop(c(0, I32), "n", outer, tag="outer")
    s = emit_sum_loop(b, "dist", 12, tag="chk")
    b.ret(s)

    main = Module("dijkstra_main")
    add_data_global(main, "weights", I32, 144, seed=81, lo=1, hi=40)
    add_data_global(main, "dist0", I32, 12, seed=82, lo=0, hi=300)
    b = FunctionBuilder(main, "main", [], I32)
    w = b.gaddr("weights")
    d = b.gaddr("dist0")
    r = b.call("relax_all", [w, d, c(12, I32)], I32)
    b.output(r)
    b.ret(r)
    return Program("network_dijkstra", [dij, main], suite="cbench")


def _automotive_bitcount() -> Program:
    """bitcount: bit tricks that instcombine and BDCE love."""
    bc = Module("bitcnt")
    b = FunctionBuilder(bc, "popcount_all", [("src", PTR), ("n", I32)], I32)
    acc = b.alloca(I32, hint="bits")
    b.store(c(0, I32), acc)

    def body(bb: FunctionBuilder, i: str) -> None:
        x = bb.load(I32, bb.gep("src", i, I32))
        # Kernighan-ish: three rounds of x &= x-1 counting
        cnt = bb.alloca(I32, hint="cnt")
        bb.store(c(0, I32), cnt)
        cur_x = bb.and_(x, c(0xFF, I32), I32)
        for _ in range(3):
            nz = bb.icmp("ne", cur_x, c(0, I32))
            dec = bb.sub(cur_x, c(1, I32), I32)
            stripped = bb.and_(cur_x, dec, I32)
            cur_x = bb.select(nz, stripped, cur_x, I32)
            cc = bb.load(I32, cnt)
            inc = bb.select(nz, c(1, I32), c(0, I32), I32)
            bb.store(bb.add(cc, inc, I32), cnt)
        a = bb.load(I32, acc)
        bb.store(bb.add(a, bb.load(I32, cnt), I32), acc)

    b.counted_loop(c(0, I32), c(120, I32), body, tag="pc")
    b.ret(b.load(I32, acc))

    main = Module("bitcount_main")
    add_data_global(main, "samples", I32, 120, seed=91, lo=0, hi=65536)
    b = FunctionBuilder(main, "main", [], I32)
    s = b.gaddr("samples")
    r = b.call("popcount_all", [s, c(120, I32)], I32)
    b.output(r)
    b.ret(r)
    return Program("automotive_bitcount", [bc, main], suite="cbench")


def _consumer_tiff2bw() -> Program:
    """tiff2bw flavour: per-pixel scale + saturate; loop-vectorisable core."""
    tiff = Module("tiff_scale")
    b = FunctionBuilder(tiff, "to_bw", [("r", PTR), ("g", PTR), ("bw", PTR), ("n", I32)], I32)

    def px(bb: FunctionBuilder, i: str) -> None:
        rv = bb.load(I32, bb.gep("r", i, I32))
        gv = bb.load(I32, bb.gep("g", i, I32))
        lum = bb.add(bb.mul(rv, c(5, I32), I32), bb.mul(gv, c(9, I32), I32), I32)
        bb.store(bb.ashr(lum, c(4, I32), I32), bb.gep("bw", i, I32))

    b.counted_loop(c(0, I32), c(64, I32), px, tag="px")
    s = emit_sum_loop(b, "bw", 64, tag="chk")
    b.ret(s)

    main = Module("tiff_main")
    add_data_global(main, "red", I32, 64, seed=101, lo=0, hi=256)
    add_data_global(main, "green", I32, 64, seed=102, lo=0, hi=256)
    main.add_global(GlobalVar(
        "gray", I32, [0] * 64))
    b = FunctionBuilder(main, "main", [], I32)
    r = b.gaddr("red")
    g = b.gaddr("green")
    bw = b.gaddr("gray")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def frames(bb: FunctionBuilder, i: str) -> None:
        v = bb.call("to_bw", [r, g, bw, c(64, I32)], I32)
        cur = bb.load(I32, total)
        bb.store(bb.add(cur, v, I32), total)

    b.counted_loop(c(0, I32), c(6, I32), frames, tag="frames")
    t = b.load(I32, total)
    b.output(t)
    b.ret(t)
    return Program("consumer_tiff2bw", [tiff, main], suite="cbench")


def _office_stringsearch() -> Program:
    """stringsearch flavour: byte scans with data-dependent branches."""
    ss = Module("strsearch")
    b = FunctionBuilder(ss, "count_matches", [("hay", PTR), ("needle0", I32), ("n", I32)], I32)
    acc = b.alloca(I32, hint="hits")
    b.store(c(0, I32), acc)

    def scan(bb: FunctionBuilder, i: str) -> None:
        ch = bb.load(I8, bb.gep("hay", i, I8))
        cw = bb.sext(ch, I32)
        hit = bb.icmp("eq", cw, "needle0")

        def bump(bt: FunctionBuilder) -> None:
            cur = bt.load(I32, acc)
            bt.store(bt.add(cur, c(1, I32), I32), acc)

        bb.if_then(hit, bump, None, tag="hit")

    b.counted_loop(c(0, I32), c(128, I32), scan, tag="scan")
    b.ret(b.load(I32, acc))

    main = Module("strsearch_main")
    add_data_global(main, "haystack", I8, 128, seed=111, lo=32, hi=127)
    b = FunctionBuilder(main, "main", [], I32)
    hay = b.gaddr("haystack")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def needles(bb: FunctionBuilder, i: str) -> None:
        nl = bb.add(c(60, I32), i, I32)
        v = bb.call("count_matches", [hay, nl, c(128, I32)], I32)
        cur = bb.load(I32, total)
        bb.store(bb.add(cur, v, I32), total)

    b.counted_loop(c(0, I32), c(8, I32), needles, tag="needles")
    t = b.load(I32, total)
    b.output(t)
    b.ret(t)
    return Program("office_stringsearch", [ss, main], suite="cbench")


def _telecom_crc32() -> Program:
    """CRC32: byte loop with a table lookup and shift/xor dependence."""
    crc = Module("crc32")
    b = FunctionBuilder(crc, "crc_update", [("buf", PTR), ("tbl", PTR), ("n", I32)], I32)
    acc = b.alloca(I32, hint="crc")
    b.store(c(-1, I32), acc)

    def byte(bb: FunctionBuilder, i: str) -> None:
        cur = bb.load(I32, acc)
        ch = bb.sext(bb.load(I8, bb.gep("buf", i, I8)), I32)
        idx = bb.and_(bb.xor(cur, ch, I32), c(15, I32), I32)
        t = bb.load(I32, bb.gep("tbl", idx, I32))
        nxt = bb.xor(bb.binop("lshr", cur, c(4, I32), I32), t, I32)
        bb.store(nxt, acc)

    b.counted_loop(c(0, I32), c(128, I32), byte, tag="bytes")
    b.ret(b.load(I32, acc))

    main = Module("crc_main")
    add_data_global(main, "message", I8, 128, seed=121, lo=0, hi=127)
    add_data_global(main, "crc_table", I32, 16, seed=122, lo=1, hi=1 << 24)
    b = FunctionBuilder(main, "main", [], I32)
    msg, tbl = b.gaddr("message"), b.gaddr("crc_table")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def blocks(bb: FunctionBuilder, i: str) -> None:
        v = bb.call("crc_update", [msg, tbl, c(128, I32)], I32)
        cur = bb.load(I32, total)
        bb.store(bb.xor(cur, bb.add(v, i, I32), I32), total)

    b.counted_loop(c(0, I32), c(4, I32), blocks, tag="blocks")
    t = b.load(I32, total)
    b.output(t)
    b.ret(t)
    return Program("telecom_CRC32", [crc, main], suite="cbench")


def _security_blowfish() -> Program:
    """Blowfish flavour: Feistel rounds — S-box lookups + xor/add mixing,
    with a small internal round helper (inline target)."""
    bf = Module("blowfish")
    f = FunctionBuilder(bf, "bf_round", [("x", I32), ("sbox", PTR)], I32)
    f.fn.attrs.add("internal")
    a = f.and_(f.binop("lshr", "x", c(8, I32), I32), c(15, I32), I32)
    d = f.and_("x", c(15, I32), I32)
    sa = f.load(I32, f.gep("sbox", a, I32))
    sb = f.load(I32, f.gep("sbox", d, I32))
    f.ret(f.xor(f.add(sa, sb, I32), c(0x5F37, I32), I32))

    b = FunctionBuilder(bf, "encrypt_block", [("data", PTR), ("sbox", PTR), ("n", I32)], I32)
    acc = b.alloca(I32, hint="xl")
    b.store(c(0x2453, I32), acc)

    def rounds(bb: FunctionBuilder, i: str) -> None:
        xl = bb.load(I32, acc)
        dv = bb.load(I32, bb.gep("data", i, I32))
        r = bb.call("bf_round", [bb.xor(xl, dv, I32), "sbox"], I32)
        bb.store(bb.xor(bb.add(xl, r, I32), dv, I32), acc)

    b.counted_loop(c(0, I32), c(96, I32), rounds, tag="feistel")
    b.ret(b.load(I32, acc))

    main = Module("blowfish_main")
    add_data_global(main, "payload", I32, 96, seed=131, lo=0, hi=65536)
    add_data_global(main, "sboxes", I32, 16, seed=132, lo=1, hi=1 << 20)
    b = FunctionBuilder(main, "main", [], I32)
    data, sbox = b.gaddr("payload"), b.gaddr("sboxes")
    r = b.call("encrypt_block", [data, sbox, c(96, I32)], I32)
    b.output(r)
    b.ret(r)
    return Program("security_blowfish_d", [bf, main], suite="cbench")


def _network_patricia() -> Program:
    """Patricia-trie flavour: bit tests and data-dependent branching over a
    packed node table."""
    pat = Module("patricia")
    b = FunctionBuilder(pat, "lookup_all", [("keys", PTR), ("bits", PTR), ("n", I32)], I32)
    acc = b.alloca(I32, hint="hits")
    b.store(c(0, I32), acc)

    def probe(bb: FunctionBuilder, i: str) -> None:
        key = bb.load(I32, bb.gep("keys", i, I32))
        node = bb.alloca(I32, hint="node")
        bb.store(c(0, I32), node)
        for _depth in range(4):  # fixed-depth descent, branch per level
            nv = bb.load(I32, node)
            mask = bb.load(I32, bb.gep("bits", bb.and_(nv, c(7, I32), I32), I32))
            bit = bb.and_(key, mask, I32)
            taken = bb.icmp("ne", bit, c(0, I32))

            def left(bt: FunctionBuilder, _nv=nv) -> None:
                bt.store(bt.add(bt.mul(_nv, c(2, I32), I32), c(1, I32), I32), node)

            def right(bt: FunctionBuilder, _nv=nv) -> None:
                bt.store(bt.add(bt.mul(_nv, c(2, I32), I32), c(2, I32), I32), node)

            bb.if_then(taken, left, right, tag=f"bit{_depth}")
        final = bb.load(I32, node)
        hit = bb.icmp("eq", bb.and_(final, c(1, I32), I32), c(1, I32))
        inc = bb.select(hit, c(1, I32), c(0, I32), I32)
        cur = bb.load(I32, acc)
        bb.store(bb.add(cur, inc, I32), acc)

    b.counted_loop(c(0, I32), c(48, I32), probe, tag="keys")
    b.ret(b.load(I32, acc))

    main = Module("patricia_main")
    add_data_global(main, "addrs", I32, 48, seed=141, lo=0, hi=1 << 20)
    add_data_global(main, "bitmasks", I32, 8, seed=142, lo=1, hi=256)
    b = FunctionBuilder(main, "main", [], I32)
    keys, bits = b.gaddr("addrs"), b.gaddr("bitmasks")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def rounds(bb: FunctionBuilder, i: str) -> None:
        v = bb.call("lookup_all", [keys, bits, c(48, I32)], I32)
        cur = bb.load(I32, total)
        bb.store(bb.add(cur, v, I32), total)

    b.counted_loop(c(0, I32), c(3, I32), rounds, tag="rounds")
    t = b.load(I32, total)
    b.output(t)
    b.ret(t)
    return Program("network_patricia", [pat, main], suite="cbench")


def _consumer_bzip2d() -> Program:
    """bzip2-decode flavour: three modules — RLE expansion (copy/init
    loops), Huffman-ish bit decoding (table + shifts), and the driver."""
    rle = Module("bz_rle")
    b = FunctionBuilder(rle, "rle_expand", [("src", PTR), ("dst", PTR), ("n", I32)], I32)
    emit_copy_loop(b, "dst", "src", 48, tag="expand")
    emit_init_loop(b, "dst", 8, value=0, tag="tail")
    s = emit_sum_loop(b, "dst", 24, tag="chk")
    b.ret(s)

    huff = Module("bz_huff")
    b = FunctionBuilder(huff, "decode_syms", [("bits", PTR), ("tbl", PTR), ("n", I32)], I32)
    acc = b.alloca(I32, hint="sym")
    b.store(c(0, I32), acc)

    def dec(bb: FunctionBuilder, i: str) -> None:
        w = bb.load(I32, bb.gep("bits", i, I32))
        code = bb.and_(bb.binop("lshr", w, c(3, I32), I32), c(15, I32), I32)
        sym = bb.load(I32, bb.gep("tbl", code, I32))
        long_code = bb.icmp("sgt", sym, c(200, I32))

        def escape(bt: FunctionBuilder) -> None:
            cur = bt.load(I32, acc)
            bt.store(bt.add(cur, bt.xor(w, sym, I32), I32), acc)

        def normal(bt: FunctionBuilder) -> None:
            cur = bt.load(I32, acc)
            bt.store(bt.add(cur, sym, I32), acc)

        bb.if_then(long_code, escape, normal, tag="esc")

    b.counted_loop(c(0, I32), c(64, I32), dec, tag="dec")
    b.ret(b.load(I32, acc))

    main = Module("bzip2_main")
    add_data_global(main, "stream", I32, 64, seed=151, lo=0, hi=4096)
    add_data_global(main, "huff_tbl", I32, 16, seed=152, lo=1, hi=255)
    main.add_global(GlobalVar("workbuf", I32, [0] * 56))
    b = FunctionBuilder(main, "main", [], I32)
    stream, tbl, buf = b.gaddr("stream"), b.gaddr("huff_tbl"), b.gaddr("workbuf")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def blocks(bb: FunctionBuilder, i: str) -> None:
        v1 = bb.call("decode_syms", [stream, tbl, c(64, I32)], I32)
        v2 = bb.call("rle_expand", [stream, buf, c(48, I32)], I32)
        cur = bb.load(I32, total)
        bb.store(bb.add(cur, bb.xor(v1, v2, I32), I32), total)

    b.counted_loop(c(0, I32), c(5, I32), blocks, tag="blocks")
    t = b.load(I32, total)
    b.output(t)
    b.ret(t)
    return Program("consumer_bzip2d", [rle, huff, main], suite="cbench")


CBENCH: Dict[str, Callable[[], Program]] = {
    "telecom_gsm": _telecom_gsm,
    "automotive_susan_c": _automotive_susan_c,
    "security_sha": _security_sha,
    "security_rijndael_d": _security_rijndael,
    "telecom_adpcm_c": _telecom_adpcm,
    "consumer_jpeg_c": _consumer_jpeg,
    "automotive_qsort1": _automotive_qsort,
    "network_dijkstra": _network_dijkstra,
    "automotive_bitcount": _automotive_bitcount,
    "consumer_tiff2bw": _consumer_tiff2bw,
    "office_stringsearch": _office_stringsearch,
    "telecom_CRC32": _telecom_crc32,
    "security_blowfish_d": _security_blowfish,
    "network_patricia": _network_patricia,
    "consumer_bzip2d": _consumer_bzip2d,
}


def cbench_names() -> List[str]:
    """Sorted names of the cBench-like programs."""
    return sorted(CBENCH)


def cbench_program(name: str) -> Program:
    """Build a fresh instance of the named program."""
    try:
        return CBENCH[name]()
    except KeyError:
        raise KeyError(f"unknown cBench program {name!r}; have {cbench_names()}") from None
