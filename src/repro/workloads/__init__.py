"""Benchmark programs: cBench-like and SPEC-CPU-like suites (Table 5.4)."""

from repro.workloads.program import Program
from repro.workloads.cbench import CBENCH, cbench_program, cbench_names
from repro.workloads.spec import SPEC, spec_program, spec_names
from repro.workloads.generator import random_program

__all__ = [
    "Program",
    "CBENCH",
    "SPEC",
    "cbench_program",
    "cbench_names",
    "spec_program",
    "spec_names",
    "random_program",
]
