"""SPEC-CPU-2017-like benchmark programs (Table 5.4, SPEC column).

Larger multi-module programs with deliberately skewed per-module hotness,
which is what the adaptive multi-module budget allocator (§5.3/§1.3) needs
to show its 2.5× convergence advantage over round-robin.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import F64, GlobalVar, I16, I32, I64, PTR, Module
from repro.workloads.kernels import (
    add_data_global,
    emit_branchy_abs_loop,
    emit_copy_loop,
    emit_divmod_loop,
    emit_dot_product_unrolled,
    emit_init_loop,
    emit_shift_mix_loop,
    emit_stencil_loop,
    emit_sum_loop,
    emit_table_mix_loop,
)
from repro.workloads.program import Program

__all__ = ["SPEC", "spec_program", "spec_names"]


def _lbm() -> Program:
    """519.lbm flavour: stencil sweeps dominate; a light collision module."""
    stream = Module("lbm_stream")
    b = FunctionBuilder(stream, "stream_row", [("dst", PTR), ("src", PTR)], I32)
    emit_stencil_loop(b, "dst", "src", 96, tag="sweep")
    s = emit_sum_loop(b, "dst", 48, tag="chk")
    b.ret(s)

    collide = Module("lbm_collide")
    b = FunctionBuilder(collide, "collide_row", [("cells", PTR), ("n", I32)], I32)
    v = emit_branchy_abs_loop(b, "cells", 32, tag="relax")
    b.ret(v)

    main = Module("lbm_main")
    add_data_global(main, "grid_a", I32, 96, seed=211, lo=-50, hi=50)
    main.add_global(GlobalVar("grid_b", I32, [0] * 96))
    b = FunctionBuilder(main, "main", [], I32)
    ga = b.gaddr("grid_a")
    gb = b.gaddr("grid_b")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def step(bb: FunctionBuilder, i: str) -> None:
        v1 = bb.call("stream_row", [gb, ga], I32)
        v2 = bb.call("collide_row", [gb, c(32, I32)], I32)
        cur = bb.load(I32, total)
        bb.store(bb.add(cur, bb.add(v1, v2, I32), I32), total)

    b.counted_loop(c(0, I32), c(8, I32), step, tag="steps")
    t = b.load(I32, total)
    b.output(t)
    b.ret(t)
    return Program("519.lbm_r", [stream, collide, main], suite="spec")


def _mcf() -> Program:
    """505.mcf flavour: integer network simplex — pointer-ish scans, branches."""
    pbeampp = Module("mcf_pbeampp")
    b = FunctionBuilder(pbeampp, "price_arcs", [("cost", PTR), ("flow", PTR), ("n", I32)], I32)
    acc = b.alloca(I32, hint="basket")
    b.store(c(0, I32), acc)

    def arc(bb: FunctionBuilder, i: str) -> None:
        cv = bb.load(I32, bb.gep("cost", i, I32))
        fv = bb.load(I32, bb.gep("flow", i, I32))
        red = bb.sub(cv, fv, I32)
        neg = bb.icmp("slt", red, c(0, I32))

        def take(bt: FunctionBuilder) -> None:
            cur = bt.load(I32, acc)
            bt.store(bt.sub(cur, red, I32), acc)

        bb.if_then(neg, take, None, tag="price")

    b.counted_loop(c(0, I32), c(112, I32), arc, tag="arcs")
    b.ret(b.load(I32, acc))

    implicit = Module("mcf_implicit")
    b = FunctionBuilder(implicit, "refresh_potential", [("pot", PTR), ("n", I32)], I32)
    v = emit_divmod_loop(b, "pot", 48, divisor=3, tag="pot")
    b.ret(v)

    main = Module("mcf_main")
    add_data_global(main, "arc_cost", I32, 112, seed=221, lo=-400, hi=400)
    add_data_global(main, "arc_flow", I32, 112, seed=222, lo=-100, hi=100)
    add_data_global(main, "potential", I32, 48, seed=223, lo=1, hi=900)
    b = FunctionBuilder(main, "main", [], I32)
    cost = b.gaddr("arc_cost")
    flow = b.gaddr("arc_flow")
    pot = b.gaddr("potential")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def iteration(bb: FunctionBuilder, i: str) -> None:
        v1 = bb.call("price_arcs", [cost, flow, c(112, I32)], I32)
        v2 = bb.call("refresh_potential", [pot, c(48, I32)], I32)
        cur = bb.load(I32, total)
        bb.store(bb.add(cur, bb.xor(v1, v2, I32), I32), total)

    b.counted_loop(c(0, I32), c(6, I32), iteration, tag="simplex")
    t = b.load(I32, total)
    b.output(t)
    b.ret(t)
    return Program("505.mcf_r", [pbeampp, implicit, main], suite="spec")


def _xz() -> Program:
    """557.xz flavour: match-length scans, range-coder mixing, buffer moves."""
    lzma = Module("xz_lzma")
    b = FunctionBuilder(lzma, "match_len", [("a", PTR), ("bp", PTR), ("n", I32)], I32)
    acc = b.alloca(I32, hint="len")
    b.store(c(0, I32), acc)

    def cmp_body(bb: FunctionBuilder, i: str) -> None:
        x = bb.load(I16, bb.gep("a", i, I16))
        y = bb.load(I16, bb.gep("bp", i, I16))
        same = bb.icmp("eq", x, y)
        inc = bb.select(same, c(1, I32), c(0, I32), I32)
        cur = bb.load(I32, acc)
        bb.store(bb.add(cur, inc, I32), acc)

    b.counted_loop(c(0, I32), c(96, I32), cmp_body, tag="cmp")
    b.ret(b.load(I32, acc))

    rangecoder = Module("xz_rangecoder")
    b = FunctionBuilder(rangecoder, "rc_mix", [("w", PTR), ("n", I32)], I32)
    v = emit_shift_mix_loop(b, "w", 48, tag="rc")
    b.ret(v)

    buffer_mod = Module("xz_buffer")
    b = FunctionBuilder(buffer_mod, "buf_move", [("dst", PTR), ("src", PTR), ("n", I32)], I32)
    emit_copy_loop(b, "dst", "src", 64, tag="mv")
    emit_init_loop(b, "dst", 8, value=0, tag="pad")
    s = emit_sum_loop(b, "dst", 16, tag="chk")
    b.ret(s)

    main = Module("xz_main")
    add_data_global(main, "dict_a", I16, 96, seed=231, lo=0, hi=255)
    add_data_global(main, "dict_b", I16, 96, seed=232, lo=0, hi=255)
    add_data_global(main, "stream", I32, 64, seed=233, lo=0, hi=65536)
    main.add_global(GlobalVar("outbuf", I32, [0] * 72))
    b = FunctionBuilder(main, "main", [], I32)
    da = b.gaddr("dict_a")
    db = b.gaddr("dict_b")
    st = b.gaddr("stream")
    ob = b.gaddr("outbuf")
    total = b.alloca(I32, hint="total")
    b.store(c(0, I32), total)

    def block(bb: FunctionBuilder, i: str) -> None:
        v1 = bb.call("match_len", [da, db, c(96, I32)], I32)
        v2 = bb.call("rc_mix", [st, c(48, I32)], I32)
        v3 = bb.call("buf_move", [ob, st, c(64, I32)], I32)
        cur = bb.load(I32, total)
        mix = bb.add(v1, bb.xor(v2, v3, I32), I32)
        bb.store(bb.add(cur, mix, I32), total)

    b.counted_loop(c(0, I32), c(6, I32), block, tag="blocks")
    t = b.load(I32, total)
    b.output(t)
    b.ret(t)
    return Program("557.xz_r", [lzma, rangecoder, buffer_mod, main], suite="spec")


def _x264() -> Program:
    """525.x264 flavour: SAD over blocks (dominant), DCT rows, CABAC-ish mix."""
    me = Module("x264_me")
    b = FunctionBuilder(me, "sad8", [("cur", PTR), ("ref", PTR)], I32)
    acc = b.alloca(I32, hint="sad")
    b.store(c(0, I32), acc)
    for i in range(8):
        x = b.load(I16, b.gep("cur", c(i, I64), I16))
        y = b.load(I16, b.gep("ref", c(i, I64), I16))
        dx = b.sub(b.sext(x, I32), b.sext(y, I32), I32)
        neg = b.icmp("slt", dx, c(0, I32))
        ad = b.select(neg, b.sub(c(0, I32), dx, I32), dx, I32)
        cur = b.load(I32, acc)
        b.store(b.add(cur, ad, I32), acc)
    b.ret(b.load(I32, acc))

    dct = Module("x264_dct")
    b = FunctionBuilder(dct, "dct_dot", [("w", PTR), ("d", PTR)], I64)
    v = emit_dot_product_unrolled(b, "w", "d", lanes=8, elem_ty=I16, mul_ty=I32, acc_ty=I64)
    b.ret(v)

    cabac = Module("x264_cabac")
    b = FunctionBuilder(cabac, "cabac_mix", [("sym", PTR), ("tbl", PTR), ("n", I32)], I32)
    v = emit_table_mix_loop(b, "sym", "tbl", 40, tag="ctx")
    b.ret(v)

    main = Module("x264_main")
    add_data_global(main, "frame_cur", I16, 64, seed=241, lo=0, hi=255)
    add_data_global(main, "frame_ref", I16, 64, seed=242, lo=0, hi=255)
    add_data_global(main, "symbols", I32, 40, seed=243, lo=0, hi=4096)
    add_data_global(main, "ctx_table", I32, 16, seed=244, lo=1, hi=128)
    b = FunctionBuilder(main, "main", [], I64)
    fc = b.gaddr("frame_cur")
    fr = b.gaddr("frame_ref")
    sym = b.gaddr("symbols")
    tbl = b.gaddr("ctx_table")
    total = b.alloca(I64, hint="total")
    b.store(c(0, I64), total)

    def mb(bb: FunctionBuilder, i: str) -> None:
        off = bb.and_(i, c(55, I32), I32)
        cp = bb.gep(fc, off, I16)
        rp = bb.gep(fr, off, I16)
        sad = bb.call("sad8", [cp, rp], I32)
        dot = bb.call("dct_dot", [cp, rp], I64)
        cur = bb.load(I64, total)
        bb.store(bb.add(cur, bb.add(bb.sext(sad, I64), dot, I64), I64), total)

    b.counted_loop(c(0, I32), c(32, I32), mb, tag="mb")
    cb = b.call("cabac_mix", [sym, tbl, c(40, I32)], I32)
    t = b.load(I64, total)
    out = b.add(t, b.sext(cb, I64), I64)
    b.output(out)
    b.ret(out)
    return Program("525.x264_r", [me, dct, cabac, main], suite="spec")


SPEC: Dict[str, Callable[[], Program]] = {
    "519.lbm_r": _lbm,
    "505.mcf_r": _mcf,
    "557.xz_r": _xz,
    "525.x264_r": _x264,
}


def spec_names() -> List[str]:
    """Sorted names of the SPEC-like programs."""
    return sorted(SPEC)


def spec_program(name: str) -> Program:
    """Build a fresh instance of the named program."""
    try:
        return SPEC[name]()
    except KeyError:
        raise KeyError(f"unknown SPEC program {name!r}; have {spec_names()}") from None
