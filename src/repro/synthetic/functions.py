"""Classic synthetic benchmark functions (Table 4.1).

All functions are exposed on their conventional domains; :func:`make_task`
wraps them as unit-box minimisation tasks (the convention every optimiser
in this library uses), with the domain mapping handled internally.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "ackley",
    "rosenbrock",
    "rastrigin",
    "griewank",
    "SYNTHETIC_FUNCTIONS",
    "make_task",
]


def ackley(x: np.ndarray) -> float:
    """Ackley function; global minimum 0 at the origin."""
    x = np.asarray(x, dtype=float)
    d = len(x)
    return float(
        -20.0 * np.exp(-0.2 * np.sqrt((x**2).sum() / d))
        - np.exp(np.cos(2.0 * np.pi * x).sum() / d)
        + 20.0
        + np.e
    )


def rosenbrock(x: np.ndarray) -> float:
    """Rosenbrock valley; global minimum 0 at (1, ..., 1)."""
    x = np.asarray(x, dtype=float)
    return float((100.0 * (x[1:] - x[:-1] ** 2) ** 2 + (1.0 - x[:-1]) ** 2).sum())


def rastrigin(x: np.ndarray) -> float:
    """Rastrigin; highly multimodal, global minimum 0 at the origin."""
    x = np.asarray(x, dtype=float)
    return float(10.0 * len(x) + (x**2 - 10.0 * np.cos(2.0 * np.pi * x)).sum())


def griewank(x: np.ndarray) -> float:
    """Griewank; global minimum 0 at the origin."""
    x = np.asarray(x, dtype=float)
    idx = np.arange(1, len(x) + 1, dtype=float)
    return float((x**2).sum() / 4000.0 - np.prod(np.cos(x / np.sqrt(idx))) + 1.0)


#: name -> (function, (low, high) search range) as in Table 4.1
SYNTHETIC_FUNCTIONS: Dict[str, Tuple[Callable[[np.ndarray], float], Tuple[float, float]]] = {
    "ackley": (ackley, (-5.0, 10.0)),
    "rosenbrock": (rosenbrock, (-5.0, 10.0)),
    "rastrigin": (rastrigin, (-5.12, 5.12)),
    "griewank": (griewank, (-10.0, 10.0)),
}


def make_task(name: str, dim: int) -> Callable[[np.ndarray], float]:
    """Unit-box wrapper: ``f(u)`` with ``u in [0,1]^dim`` mapped to the
    function's native domain."""
    fn, (lo, hi) = SYNTHETIC_FUNCTIONS[name]

    def task(u: np.ndarray) -> float:
        x = lo + (hi - lo) * np.asarray(u, dtype=float)
        return fn(x)

    task.__name__ = f"{name}{dim}"
    return task
