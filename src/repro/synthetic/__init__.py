"""Synthetic optimisation tasks for the Chapter 4 experiments."""

from repro.synthetic.functions import (
    SYNTHETIC_FUNCTIONS,
    ackley,
    griewank,
    make_task,
    rastrigin,
    rosenbrock,
)
from repro.synthetic.tasks import push_surrogate, rover_surrogate
from repro.synthetic.flags import FlagSelectionTask

__all__ = [
    "SYNTHETIC_FUNCTIONS",
    "FlagSelectionTask",
    "ackley",
    "griewank",
    "make_task",
    "push_surrogate",
    "rastrigin",
    "rosenbrock",
    "rover_surrogate",
]
