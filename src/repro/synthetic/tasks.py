"""Deterministic surrogates for the thesis' real-world Ch. 4 tasks.

The original robot-push / rover-trajectory / MuJoCo tasks need simulators
we cannot ship offline; these surrogates preserve the *optimisation-
relevant* structure the thesis calls out: sparse rewards with a narrow
basin (push), and a smooth but multimodal trajectory score with strong
variable coupling (rover).  Both are minimisation tasks on the unit box
(the paper maximises reward; we negate).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["push_surrogate", "rover_surrogate"]


def push_surrogate(dim: int = 14, seed: int = 7) -> Callable[[np.ndarray], float]:
    """Sparse-reward push task surrogate.

    Reward is near-zero almost everywhere and rises steeply inside a small
    basin around a hidden target configuration, with a weak long-range
    guidance term — the structure that makes over-exploration fatal and
    over-exploitation tempting (used in the Fig 4.11 bench).
    """
    rng = np.random.default_rng(seed)
    target = 0.25 + 0.5 * rng.random(dim)
    widths = 0.08 + 0.12 * rng.random(dim)

    def task(u: np.ndarray) -> float:
        u = np.asarray(u, dtype=float)
        z = (u - target) / widths
        d2 = float((z**2).mean())
        reward = 10.0 * np.exp(-0.5 * d2)  # sharp basin
        reward += 0.5 * np.exp(-0.05 * float(((u - target) ** 2).sum()))  # faint guide
        return -reward

    task.__name__ = f"push{dim}"
    return task


def rover_surrogate(dim: int = 60, seed: int = 9) -> Callable[[np.ndarray], float]:
    """Trajectory-planning surrogate.

    Consecutive coordinates are waypoints; the score combines smoothness
    (coupling between neighbours), obstacle bumps, and goal attraction.
    Best achievable value is about -5, matching the task's stated optimum.
    """
    rng = np.random.default_rng(seed)
    n_obstacles = max(4, dim // 8)
    centres = rng.random((n_obstacles, 2)) * 0.8 + 0.1
    goal = np.array([0.9, 0.9])
    start = np.array([0.1, 0.1])

    def task(u: np.ndarray) -> float:
        pts = np.asarray(u, dtype=float).reshape(-1, 2)
        path = np.vstack([start, pts, goal])
        seg = np.diff(path, axis=0)
        smooth_cost = 10.0 * float((seg**2).sum())
        obstacle_cost = 0.0
        for ctr in centres:
            d2 = ((path - ctr) ** 2).sum(1)
            obstacle_cost += float(np.exp(-d2 / 0.005).sum())
        reward = 5.0 - smooth_cost - 2.0 * obstacle_cost
        return -reward

    task.__name__ = f"rover{dim}"
    return task
