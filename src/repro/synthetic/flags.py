"""Compiler flag-selection task (§4.2.2 / Fig 4.4).

Binary decisions toggle individual passes of the ``-O3`` pipeline on or
off (order fixed), embedded into the continuous unit box with a 0.5
threshold exactly as the paper describes.  The objective is the simulated
runtime of a benchmark program, so this is a *real* compiler task running
on the library's own substrate — the bridge between Chapter 4's generic
method and Chapter 5's phase ordering.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.compiler.pipelines import pipeline
from repro.machine.platforms import Platform, get_platform
from repro.machine.profiler import Profiler
from repro.utils.rng import SeedLike, as_generator
from repro.workloads import Program, cbench_program

__all__ = ["FlagSelectionTask"]


class FlagSelectionTask:
    """Minimise runtime by enabling/disabling -O3 pipeline passes.

    Call the instance with a unit-box vector of dimension ``dim``; values
    >= 0.5 enable the corresponding pass.  Results are cached by the
    decoded bit pattern since many continuous points decode identically.
    """

    def __init__(
        self,
        program: Optional[Program] = None,
        platform: str = "arm-a57",
        seed: SeedLike = None,
        repeats: int = 3,
    ) -> None:
        self.program = program if program is not None else cbench_program("telecom_gsm")
        self.platform: Platform = get_platform(platform)
        self.profiler = Profiler(self.platform, seed=as_generator(seed))
        self.flags: List[str] = pipeline("-O3")
        self.repeats = repeats
        self._cache = {}
        self.n_evaluations = 0

    @property
    def dim(self) -> int:
        return len(self.flags)

    def decode(self, u: np.ndarray) -> List[str]:
        """Threshold the unit-box vector into the enabled-pass list."""
        bits = np.asarray(u, dtype=float) >= 0.5
        return [p for p, b in zip(self.flags, bits) if b]

    def __call__(self, u: np.ndarray) -> float:
        seq = self.decode(u)
        key = tuple(seq)
        if key in self._cache:
            return self._cache[key]
        target = self.platform.target_info()
        linked, _ = self.program.compile(
            {m.name: seq for m in self.program.modules}, target=target
        )
        m = self.profiler.measure(linked, repeats=self.repeats)
        self.n_evaluations += 1
        self._cache[key] = m.seconds
        return m.seconds

    def baseline_o3(self) -> float:
        """Runtime with every flag enabled (the full -O3 pipeline)."""
        return self(np.ones(self.dim))
