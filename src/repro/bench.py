"""The surrogate hot-path benchmark behind ``repro bench``.

Two layers:

* **micro** — :class:`~repro.core.cost_model.CitroenCostModel` timings at
  ``n`` observations (default 64/256/512): full refit, incremental
  ``add_observation`` (extend), batched predict and coverage over a
  candidate population — each against the legacy scalar/full-refit
  baseline;
* **end-to-end** — a seeded CITROEN tune at a fixed measurement budget,
  run twice: once with the incremental/warm-started/vectorized surrogate
  (the default) and once with the pre-optimisation model path
  (``model_opts=dict(incremental=False, warm_start=False,
  vectorized=False)``).  Model-side wall time is the sum of the traced
  ``fit`` + ``featurize`` + ``acquisition`` spans, so the win shows up in
  exactly the spans the overhead analysis (§5.4) talks about.

The payload written to ``BENCH_surrogate.json`` is self-describing
(schema tag, git revision, library versions, per-phase wall/CPU seconds)
and diffable: ``repro diff a.json b.json`` gates on the model-side wall
ratio via :func:`diff_bench`.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

SCHEMA = "bench_surrogate"
SCHEMA_VERSION = 1

#: the spans that constitute "model-side" work in the tuner loop
MODEL_SPANS = ("fit", "featurize", "acquisition")

#: model_opts reproducing the pre-optimisation surrogate path
LEGACY_MODEL_OPTS = {"incremental": False, "warm_start": False, "vectorized": False}


def git_rev() -> str:
    """The repository revision the numbers belong to (or ``unknown``)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip()
    except Exception:
        return "unknown"


class _Stopwatch:
    """Wall + CPU seconds around a block."""

    def __enter__(self) -> "_Stopwatch":
        self._w0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc) -> None:
        self.wall = time.perf_counter() - self._w0
        self.cpu = time.process_time() - self._c0


def synthetic_observations(
    n: int, n_keys: int, seed: int
) -> List[Dict[str, Dict[str, int]]]:
    """Sparse per-module statistics dicts shaped like real compile stats."""
    rng = np.random.default_rng(seed)
    keys = [f"pass{i // 4}.Stat{i % 4}" for i in range(n_keys)]
    out = []
    for _ in range(n):
        active = rng.random(n_keys) < 0.3  # sparse, like real counters
        stats = {
            k: int(v)
            for k, v, a in zip(keys, rng.integers(1, 200, n_keys), active)
            if a
        }
        out.append({"mod": stats})
    return out


def _build_model(observations, runtimes, seed: int, legacy: bool):
    from repro.core.cost_model import CitroenCostModel

    opts = LEGACY_MODEL_OPTS if legacy else {}
    model = CitroenCostModel(seed=seed, **opts)
    for per_module, y in zip(observations, runtimes):
        model.add_observation(per_module, y)
    return model


def bench_micro(
    sizes: Sequence[int] = (64, 256, 512),
    n_keys: int = 60,
    n_candidates: int = 256,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Per-operation timings at each dataset size, fast vs legacy path."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        obs = synthetic_observations(n + 1, n_keys, seed)
        rng = np.random.default_rng(seed + 1)
        runtimes = list(1.0 + rng.random(n + 1))
        cands = [
            {"mod": pm["mod"]}
            for pm in synthetic_observations(n_candidates, n_keys, seed + 2)
        ]
        row: Dict[str, object] = {"n": int(n), "n_candidates": int(n_candidates)}
        for mode, legacy in (("fast", False), ("legacy", True)):
            model = _build_model(obs[:n], runtimes[:n], seed, legacy)
            with _Stopwatch() as t_fit:
                model.fit(force=True)
            # one more observation: extend on the fast path, a full refit
            # marked stale + rebuilt on the legacy path
            with _Stopwatch() as t_add:
                model.add_observation(obs[n], runtimes[n])
                model.fit()
            merged = [model.merge_config_stats(pm) for pm in cands]
            with _Stopwatch() as t_pred:
                model.predict_merged(merged)
            with _Stopwatch() as t_cov:
                model.coverage_many(merged)
            row[mode] = {
                "fit": {"wall": t_fit.wall, "cpu": t_fit.cpu},
                "add_observation": {"wall": t_add.wall, "cpu": t_add.cpu},
                "predict": {"wall": t_pred.wall, "cpu": t_pred.cpu},
                "coverage": {"wall": t_cov.wall, "cpu": t_cov.cpu},
                "n_refits": model.n_refits,
                "n_extends": model.n_extends,
            }
        rows.append(row)
    return rows


def bench_tune(
    program: str = "security_sha",
    budget: int = 100,
    seed: int = 1,
    seq_length: int = 16,
    legacy: bool = False,
    jobs: int = 1,
) -> Dict[str, object]:
    """One traced end-to-end CITROEN tune; spans aggregated per phase."""
    from repro.cli import _load_program
    from repro.core.citroen import Citroen
    from repro.core.task import AutotuningTask
    from repro.obs.trace import Tracer

    tracer = Tracer()
    with _Stopwatch() as total, AutotuningTask(
        _load_program(program),
        platform="arm-a57",
        seed=seed,
        seq_length=seq_length,
        jobs=jobs,
        tracer=tracer,
    ) as task:
        tuner = Citroen(
            task,
            seed=seed,
            model_opts=dict(LEGACY_MODEL_OPTS) if legacy else None,
        )
        result = tuner.tune(budget)

    spans: Dict[str, Dict[str, float]] = {}
    for event in tracer.spans():
        agg = spans.setdefault(
            event["name"], {"wall": 0.0, "cpu": 0.0, "count": 0}
        )
        agg["wall"] += float(event.get("wall", 0.0))
        agg["cpu"] += float(event.get("cpu", 0.0))
        agg["count"] += 1
    model_wall = sum(spans.get(name, {}).get("wall", 0.0) for name in MODEL_SPANS)
    model_cpu = sum(spans.get(name, {}).get("cpu", 0.0) for name in MODEL_SPANS)
    return {
        "program": program,
        "budget": budget,
        "seed": seed,
        "seq_length": seq_length,
        "jobs": jobs,
        "legacy": bool(legacy),
        "spans": spans,
        "model_wall_seconds": model_wall,
        "model_cpu_seconds": model_cpu,
        "model_seconds": tuner.model_seconds,
        "total_wall_seconds": total.wall,
        "total_cpu_seconds": total.cpu,
        "n_measurements": len(result.measurements),
        "best_runtime": result.best_runtime,
        "speedup_vs_o3": result.speedup_over_o3(),
        "gp_refits": tuner.model.n_refits,
        "gp_extends": tuner.model.n_extends,
    }


def run_bench(
    program: str = "security_sha",
    budget: int = 100,
    seed: int = 1,
    seq_length: int = 16,
    sizes: Sequence[int] = (64, 256, 512),
    baseline: bool = True,
) -> Dict[str, object]:
    """The full benchmark payload (micro + end-to-end, fast vs legacy)."""
    payload: Dict[str, object] = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "git_rev": git_rev(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "program": program,
        "budget": budget,
        "seed": seed,
        "micro": bench_micro(sizes=sizes, seed=seed),
        "tune": {"fast": bench_tune(program, budget, seed, seq_length)},
    }
    if baseline:
        tune = payload["tune"]
        tune["legacy"] = bench_tune(program, budget, seed, seq_length, legacy=True)
        fast_wall = tune["fast"]["model_wall_seconds"]
        tune["model_wall_speedup"] = (
            tune["legacy"]["model_wall_seconds"] / fast_wall
            if fast_wall > 0
            else float("inf")
        )
    return payload


def write_bench(payload: Dict[str, object], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, object]:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"{path} is not a {SCHEMA} payload")
    return payload


def diff_bench(
    path_a: str, path_b: str, max_model_ratio: float = 1.5
) -> Dict[str, object]:
    """Compare two bench payloads; ``b`` regresses if its model-side wall
    time exceeds ``max_model_ratio`` x ``a``'s (fast path only — the
    legacy numbers are context, not a gate)."""
    a, b = load_bench(path_a), load_bench(path_b)
    wall_a = a["tune"]["fast"]["model_wall_seconds"]
    wall_b = b["tune"]["fast"]["model_wall_seconds"]
    ratio = wall_b / wall_a if wall_a > 0 else float("inf")
    ok = ratio <= max_model_ratio
    return {
        "kind": "bench",
        "run_a": path_a,
        "run_b": path_b,
        "git_rev": {"a": a.get("git_rev"), "b": b.get("git_rev")},
        "checks": [
            {
                "name": "model_wall_seconds",
                "a": wall_a,
                "b": wall_b,
                "ratio": ratio,
                "threshold": max_model_ratio,
                "kind": "ratio",
                "ok": ok,
                "skipped": False,
            }
        ],
        "regressions": [] if ok else ["model_wall_seconds"],
        "regressed": not ok,
        "ok": ok,
    }


def summary_table(payload: Dict[str, object]) -> str:
    """Human-readable digest of a bench payload."""
    lines = [
        f"surrogate bench @ {str(payload.get('git_rev', '?'))[:12]} "
        f"(program={payload['program']}, budget={payload['budget']}, "
        f"seed={payload['seed']})",
        "",
        f"{'n':>6s} {'op':<16s} {'fast ms':>10s} {'legacy ms':>11s} {'speedup':>8s}",
    ]
    for row in payload["micro"]:
        for op in ("fit", "add_observation", "predict", "coverage"):
            fast = row["fast"][op]["wall"] * 1e3
            legacy = row["legacy"][op]["wall"] * 1e3
            ratio = legacy / fast if fast > 0 else float("inf")
            lines.append(
                f"{row['n']:>6d} {op:<16s} {fast:>10.2f} {legacy:>11.2f} "
                f"{ratio:>7.1f}x"
            )
    tune = payload["tune"]
    fast = tune["fast"]
    lines.append("")
    lines.append(
        f"end-to-end ({fast['n_measurements']} measurements): model wall "
        f"{fast['model_wall_seconds'] * 1e3:.1f} ms "
        f"({fast['gp_refits']} refits, {fast['gp_extends']} extends)"
    )
    if "legacy" in tune:
        legacy = tune["legacy"]
        lines.append(
            f"   legacy path: model wall {legacy['model_wall_seconds'] * 1e3:.1f} ms "
            f"({legacy['gp_refits']} refits) -> "
            f"{tune['model_wall_speedup']:.1f}x model-side speedup"
        )
    return "\n".join(lines)
